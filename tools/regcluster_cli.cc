// regcluster -- command-line interface to the reg-cluster library.
//
// Subcommands:
//   generate   write a synthetic dataset (+ ground truth) to disk
//   mine       mine reg-clusters from a TSV expression matrix
//   evaluate   score a mined cluster file against a ground-truth file
//   enrich     GO-term enrichment of mined clusters from an annotation file
//   summarize  aggregate statistics of a cluster file
//
// Run `regcluster <subcommand> --help` for per-command flags.  All flags
// are --name=value; every run is deterministic given its --seed.
//
// Exit codes (stable contract, also documented in README.md):
//   0  success
//   1  runtime error (I/O failure, invalid data, failed validation)
//   2  usage error (unknown command/flag, missing required flag)
//   3  mining truncated by a budget, deadline or cancellation -- the
//      partial outputs on disk are valid and complete as written

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/coherence.h"
#include "core/miner.h"
#include "core/rwave.h"
#include "core/sweep.h"
#include "eval/annotation_gen.h"
#include "eval/consensus.h"
#include "eval/go_enrichment.h"
#include "eval/match.h"
#include "eval/quality.h"
#include "eval/significance.h"
#include "io/annotation_io.h"
#include "io/checkpoint.h"
#include "io/incremental.h"
#include "io/cluster_io.h"
#include "io/json_export.h"
#include "io/metrics_export.h"
#include "io/sweep_io.h"
#include "matrix/matrix_io.h"
#include "matrix/stats.h"
#include "matrix/store.h"
#include "matrix/transforms.h"
#include "server/daemon.h"
#include "util/simd/dispatch.h"
#include "synth/generator.h"
#include "synth/yeast_surrogate.h"
#include "util/cancellation.h"
#include "util/durable_file.h"
#include "util/string_util.h"

namespace regcluster {
namespace cli {
namespace {

// Exit codes; see the file comment for the contract.
constexpr int kExitOk = 0;
constexpr int kExitRuntimeError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitTruncated = 3;

// ---------------------------------------------------------------------------
// Flag plumbing.
// ---------------------------------------------------------------------------

class Flags {
 public:
  /// Parses `argv[first..argc)` as --name[=value] flags.  Returns
  /// InvalidArgument on a positional argument; only main() exits the
  /// process.
  static util::StatusOr<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return util::Status::InvalidArgument("unexpected argument: " + arg);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.values_[arg] = "true";
      } else {
        flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
    return flags;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback) {
    used_.insert(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int GetInt(const std::string& name, int fallback) {
    const std::string v = GetString(name, "");
    return v.empty() ? fallback : std::atoi(v.c_str());
  }

  int64_t GetInt64(const std::string& name, int64_t fallback) {
    const std::string v = GetString(name, "");
    if (v.empty()) return fallback;
    return static_cast<int64_t>(std::strtoll(v.c_str(), nullptr, 10));
  }

  double GetDouble(const std::string& name, double fallback) {
    const std::string v = GetString(name, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  bool GetBool(const std::string& name, bool fallback = false) {
    const std::string v = GetString(name, "");
    if (v.empty()) return fallback;
    return v == "true" || v == "1" || v == "yes";
  }

  /// Returns InvalidArgument when an unconsumed flag remains (typo
  /// protection).  Call after the last Get*.
  util::Status RejectUnknown() const {
    for (const auto& [name, value] : values_) {
      (void)value;
      if (used_.find(name) == used_.end()) {
        return util::Status::InvalidArgument("unknown flag: --" + name);
      }
    }
    return util::Status::OK();
  }

 private:
  Flags() = default;

  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return kExitRuntimeError;
}

int UsageError(const util::Status& status) {
  std::fprintf(stderr, "%s\n", status.message().c_str());
  return kExitUsage;
}

// ---------------------------------------------------------------------------
// Interrupt plumbing: SIGINT/SIGTERM trip the mining cancellation token so
// a long `mine` run shuts down at the next budget poll, writes whatever
// canonical prefix it completed, and exits with kExitTruncated.
// CancellationToken::Cancel is a single lock-free CAS, so calling it from a
// signal handler through a lock-free atomic pointer is async-signal-safe.
// ---------------------------------------------------------------------------

std::atomic<util::CancellationToken*> g_interrupt_token{nullptr};

extern "C" void HandleInterrupt(int /*signum*/) {
  util::CancellationToken* token =
      g_interrupt_token.load(std::memory_order_acquire);
  if (token != nullptr) token->Cancel(util::StopReason::kCancelled);
}

util::StatusOr<matrix::ExpressionMatrix> LoadMatrixArg(
    const std::string& path) {
  auto m = matrix::LoadMatrix(path);
  if (!m.ok()) {
    return util::Status(m.status().code(),
                        "loading " + path + ": " + m.status().message());
  }
  return m;
}

util::StatusOr<std::vector<core::RegCluster>> LoadClustersArg(
    const std::string& path) {
  auto c = io::LoadClusters(path);
  if (!c.ok()) {
    return util::Status(c.status().code(),
                        "loading " + path + ": " + c.status().message());
  }
  return c;
}

/// Renders a report through `write` into memory and atomically replaces
/// `path` with it.  Every CLI report (archive, JSON, CSV, metrics) goes
/// through here so a crash mid-write can never leave a torn file where a
/// previous complete report existed.
template <typename WriteFn>
util::Status WriteReportAtomic(const std::string& path, WriteFn&& write) {
  std::ostringstream buffer;
  if (util::Status st = write(buffer); !st.ok()) return st;
  return util::AtomicWriteFile(path, buffer.str());
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

int CmdGenerate(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster generate --out-matrix=PATH [--out-truth=PATH]\n"
        "  [--yeast] [--genes=3000] [--conditions=30] [--clusters=30]\n"
        "  [--gene-fraction=0.01] [--dim=6] [--negative-fraction=0.3]\n"
        "  [--noise=0.0] [--seed=42]\n"
        "Writes a synthetic dataset (Section 5 generator; --yeast for the\n"
        "2884x17 surrogate) and optionally its ground-truth clusters.");
    return 0;
  }
  const std::string out_matrix = flags->GetString("out-matrix", "");
  const std::string out_truth = flags->GetString("out-truth", "");
  if (out_matrix.empty()) {
    std::fprintf(stderr, "--out-matrix is required\n");
    return 2;
  }

  synth::SyntheticDataset ds;
  if (flags->GetBool("yeast")) {
    synth::YeastSurrogateConfig cfg;
    cfg.seed = static_cast<uint64_t>(flags->GetInt("seed", 1999));
    cfg.num_modules = flags->GetInt("clusters", 25);
    cfg.noise_fraction = flags->GetDouble("noise", 0.05);
    if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);
    auto made = synth::MakeYeastSurrogate(cfg);
    if (!made.ok()) return Fail(made.status());
    ds = *std::move(made);
  } else {
    synth::SyntheticConfig cfg;
    cfg.num_genes = flags->GetInt("genes", 3000);
    cfg.num_conditions = flags->GetInt("conditions", 30);
    cfg.num_clusters = flags->GetInt("clusters", 30);
    cfg.avg_cluster_genes_fraction = flags->GetDouble("gene-fraction", 0.01);
    cfg.avg_cluster_conditions = flags->GetInt("dim", 6);
    cfg.negative_fraction = flags->GetDouble("negative-fraction", 0.3);
    cfg.noise_fraction = flags->GetDouble("noise", 0.0);
    cfg.seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
    if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);
    auto made = synth::GenerateSynthetic(cfg);
    if (!made.ok()) return Fail(made.status());
    ds = *std::move(made);
  }

  if (auto st = matrix::SaveMatrix(ds.data, out_matrix); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %d x %d matrix to %s\n", ds.data.num_genes(),
              ds.data.num_conditions(), out_matrix.c_str());
  if (!out_truth.empty()) {
    std::vector<core::RegCluster> truth;
    for (const auto& imp : ds.implants) truth.push_back(imp.ToRegCluster());
    if (auto st = io::SaveClusters(truth, out_truth); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %zu ground-truth clusters to %s\n", truth.size(),
                out_truth.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// mine --sweep: batch parameter sweep through core::SweepEngine.
// ---------------------------------------------------------------------------

int RunSweep(const matrix::MatrixStore& data, core::MinerOptions base,
             const std::vector<core::MinerOptions>& points,
             const std::string& json_path, const std::string& csv_path,
             bool share_models, const std::string& metrics_path,
             io::MetricsFormat metrics_format, bool durable,
             const io::CheckpointConfig& ckpt_config,
             const io::SweepCheckpoint* resume, bool deterministic_output) {
  // The budget flags act at sweep level (one budget spanning all points);
  // ParseSweepSpec already copied the budget-free base into every point.
  core::SweepOptions sopts;
  sopts.num_threads = base.num_threads;
  sopts.share_models = share_models;
  sopts.max_nodes = base.max_nodes;
  sopts.max_clusters = base.max_clusters;
  sopts.deadline_ms = base.deadline_ms;
  auto token = std::make_shared<util::CancellationToken>();
  sopts.cancel_token = token;

  g_interrupt_token.store(token.get(), std::memory_order_release);
  auto prev_int = std::signal(SIGINT, HandleInterrupt);
  auto prev_term = std::signal(SIGTERM, HandleInterrupt);
  core::SweepReport report;
  io::CheckpointStats ckpt_stats;
  const io::CheckpointStats* ckpt_for_metrics = nullptr;
  util::Status run_status;
  if (durable) {
    auto result = io::RunCheckpointedSweep(data, points, sopts, ckpt_config,
                                           resume);
    if (result.ok()) {
      report = std::move(result->report);
      ckpt_stats = result->checkpoint;
      ckpt_for_metrics = &ckpt_stats;
      if (!result->checkpoint_status.ok()) {
        std::fprintf(stderr, "warning: checkpoint write failed: %s\n",
                     result->checkpoint_status.ToString().c_str());
      }
    } else {
      run_status = result.status();
    }
  } else {
    core::SweepEngine engine(data, sopts);
    auto report_or = engine.Run(points);
    if (report_or.ok()) {
      report = *std::move(report_or);
    } else {
      run_status = report_or.status();
    }
  }
  std::signal(SIGINT, prev_int == SIG_ERR ? SIG_DFL : prev_int);
  std::signal(SIGTERM, prev_term == SIG_ERR ? SIG_DFL : prev_term);
  g_interrupt_token.store(nullptr, std::memory_order_release);
  if (!run_status.ok()) return Fail(run_status);

  const bool truncated = report.status == core::MineStatus::kTruncated;
  if (truncated) {
    std::fprintf(stderr,
                 "warning: sweep truncated (%s) after %d of %zu runs; re-run\n"
                 "warning: the points from index %d to finish the grid\n",
                 util::StopReasonName(report.stop_reason),
                 report.runs_executed, report.runs.size(),
                 report.first_unfinished);
    if (durable && !ckpt_config.path.empty()) {
      std::fprintf(stderr,
                   "warning: checkpoint saved; re-run the same command with\n"
                   "warning:   --resume-from=%s\n"
                   "warning: to continue from this point\n",
                   ckpt_config.path.c_str());
    }
  }
  for (const core::SweepRun& run : report.runs) {
    if (!run.status.ok()) {
      std::fprintf(stderr, "warning: sweep point skipped: %s\n",
                   run.status.ToString().c_str());
    }
  }
  std::printf(
      "sweep: %d/%zu runs, %lld clusters, %lld nodes, %d shared index "
      "build%s, %.3f s\n",
      report.runs_executed, report.runs.size(),
      static_cast<long long>(report.clusters_total),
      static_cast<long long>(report.nodes_total), report.index_builds,
      report.index_builds == 1 ? "" : "s", report.wall_seconds);

  if (deterministic_output) io::ZeroVolatileSweepFields(&report);

  if (!json_path.empty()) {
    auto st = WriteReportAtomic(json_path, [&](std::ostream& out) {
      return io::WriteSweepJson(report, out);
    });
    if (!st.ok()) return Fail(st);
    std::printf("sweep json: %s\n", json_path.c_str());
  }
  if (!csv_path.empty()) {
    auto st = WriteReportAtomic(csv_path, [&](std::ostream& out) {
      return io::WriteSweepCsv(report, out);
    });
    if (!st.ok()) return Fail(st);
    std::printf("sweep csv: %s\n", csv_path.c_str());
  }
  if (!metrics_path.empty()) {
    auto st = WriteReportAtomic(metrics_path, [&](std::ostream& out) {
      obs::MetricsRegistry registry;
      if (auto rs = io::RegisterSweepMetrics(report, &registry,
                                             ckpt_for_metrics);
          !rs.ok()) {
        return rs;
      }
      return metrics_format == io::MetricsFormat::kPrometheus
                 ? registry.WritePrometheus(out)
                 : registry.WriteJson(out);
    });
    if (!st.ok()) return Fail(st);
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  return truncated ? kExitTruncated : kExitOk;
}

// ---------------------------------------------------------------------------
// mine
// ---------------------------------------------------------------------------

int CmdMine(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster mine --matrix=PATH --out=PATH\n"
        "  [--ming=20] [--minc=6] [--gamma=0.05]\n"
        "  [--gamma-policy=range|stddev|mean|closest-gap|absolute]\n"
        "  [--epsilon=1.0] [--threads=1] [--remove-dominated=true]\n"
        "  [--matrix-format=auto|bin|text] [--model-cache-mb=-1]\n"
        "  [--model-cache-shards=8]\n"
        "  [--impute=rowmean|knn] [--knn-k=10] [--normalize=none|quantile]\n"
        "  [--merge-overlap=0] [--require-gene=NAME_OR_INDEX]\n"
        "  [--report=PATH] [--json=PATH]\n"
        "  [--metrics-out=PATH] [--metrics-format=json|prom]\n"
        "  [--collect-stats=true] [--simd=auto|scalar|avx2|neon]\n"
        "  [--max-clusters=-1] [--max-nodes=-1] [--deadline-ms=-1]\n"
        "  [--checkpoint=PATH] [--checkpoint-every-ms=1000]\n"
        "  [--resume-from=PATH] [--deterministic-output]\n"
        "  [--incremental-out=PATH]\n"
        "  [--append=PATH --prev-outcome=PATH [--matrix-out=PATH]]\n"
        "  [--sweep=SPEC --sweep-out=PATH [--sweep-csv=PATH]\n"
        "   [--share-models=true]]\n"
        "Mines reg-clusters and writes the machine-format archive to --out.\n"
        "--sweep runs a batch parameter sweep instead of a single mine:\n"
        "SPEC is axis=values pairs (gamma|eps|ming|minc; lo:hi:step range or\n"
        "v;v list, cross product) or a JSON list of points, e.g.\n"
        "  --sweep=gamma=0.1:0.5:0.1,eps=0.01;0.02,ming=20\n"
        "Equal-gamma points share one model/index; every point's clusters\n"
        "are byte-identical to a single mine at those options.  The report\n"
        "goes to --sweep-out (JSON) / --sweep-csv (summary); the budget\n"
        "flags bound the sweep as a whole, truncating on a run boundary\n"
        "(exit 3, resume from first_unfinished).\n"
        "--metrics-out writes the run's search counters and phase timings\n"
        "(regcluster_* metrics) as JSON or Prometheus text; --collect-stats\n"
        "=false disables the detailed work counters (they export as 0).\n"
        "--simd pins the kernel set (default auto-detects; every level\n"
        "produces byte-identical output, so this is a perf/debug knob).\n"
        "--matrix-format selects the input reader: text (TSV/CSV), bin (the\n"
        "mmap-backed binary format written by convert --out-format=bin), or\n"
        "auto (sniff the binary magic; the default).  Binary matrices are\n"
        "mapped, not loaded, so genome-scale inputs mine without slurping\n"
        "the matrix into RAM; impute/normalize must happen at convert time.\n"
        "--model-cache-mb >= 0 additionally builds the per-gene RWave\n"
        "models out-of-core through a byte-budgeted LRU cache of that many\n"
        "MiB (split over --model-cache-shards) instead of materializing all\n"
        "of them; the mined output is byte-identical either way.\n"
        "--merge-overlap > 0 runs the consensus merge post-pass.\n"
        "Budgets (--max-clusters/--max-nodes/--deadline-ms) and Ctrl-C stop\n"
        "the search at a deterministic root boundary: the outputs are then a\n"
        "canonical prefix of the full result, the JSON export carries an\n"
        "\"outcome\" block with a resume point, and the exit code is 3.\n"
        "--checkpoint=PATH makes the run durable: progress is snapshotted to\n"
        "PATH.a/PATH.b (atomic-replace, CRC-framed, double-buffered) about\n"
        "every --checkpoint-every-ms, so a SIGKILL at any instant loses at\n"
        "most one interval.  --resume-from=PATH continues from the newest\n"
        "valid snapshot after validating it against the matrix and options;\n"
        "the final output is byte-identical to an uninterrupted run.  A\n"
        "missing snapshot starts fresh (so supervisors can always pass both\n"
        "flags); a corrupt or mismatched one is an error (exit 1).\n"
        "--deterministic-output zeroes the wall-clock and scheduling fields\n"
        "of the JSON/metrics reports so byte comparison across runs works.\n"
        "--incremental-out=PATH records per-root mining state so a later\n"
        "run can append conditions without re-mining the whole matrix:\n"
        "  regcluster mine --matrix=M --out=O --incremental-out=S   # seed\n"
        "  regcluster mine --matrix=M' --append=COLS --prev-outcome=S\n"
        "    --incremental-out=S --out=O                            # extend\n"
        "COLS is a matrix over the same genes, one column per appended\n"
        "condition.  Only roots whose regulation chains can reach a new\n"
        "condition are re-mined; everything else splices from the state,\n"
        "and the output is byte-identical to a from-scratch mine of the\n"
        "widened matrix.  --matrix-out persists the widened matrix (binary\n"
        "format).  Budgets/checkpoints do not combine with this mode.");
    return 0;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  const std::string out_path = flags->GetString("out", "");
  const std::string sweep_spec = flags->GetString("sweep", "");
  const std::string sweep_out = flags->GetString("sweep-out", "");
  const std::string sweep_csv = flags->GetString("sweep-csv", "");
  const bool share_models = flags->GetBool("share-models", true);
  const bool sweeping = !sweep_spec.empty();
  if (matrix_path.empty() || (out_path.empty() && !sweeping)) {
    std::fprintf(stderr, "--matrix and --out are required\n");
    return 2;
  }
  if (sweeping && sweep_out.empty() && sweep_csv.empty()) {
    std::fprintf(stderr, "--sweep needs --sweep-out and/or --sweep-csv\n");
    return 2;
  }
  if (!sweeping && (!sweep_out.empty() || !sweep_csv.empty())) {
    std::fprintf(stderr, "--sweep-out/--sweep-csv need --sweep\n");
    return 2;
  }

  core::MinerOptions opts;
  opts.min_genes = flags->GetInt("ming", 20);
  opts.min_conditions = flags->GetInt("minc", 6);
  opts.gamma = flags->GetDouble("gamma", 0.05);
  opts.epsilon = flags->GetDouble("epsilon", 1.0);
  opts.num_threads = flags->GetInt("threads", 1);
  opts.remove_dominated = flags->GetBool("remove-dominated", true);
  opts.max_clusters = flags->GetInt64("max-clusters", -1);
  opts.max_nodes = flags->GetInt64("max-nodes", -1);
  opts.deadline_ms = flags->GetDouble("deadline-ms", -1.0);
  const std::string policy = flags->GetString("gamma-policy", "range");
  if (!core::ParseGammaPolicy(policy, &opts.gamma_policy)) {
    std::fprintf(stderr, "unknown --gamma-policy=%s\n", policy.c_str());
    return 2;
  }
  opts.collect_stats = flags->GetBool("collect-stats", true);
  const std::string report_path = flags->GetString("report", "");
  const std::string json_path = flags->GetString("json", "");
  const std::string metrics_path = flags->GetString("metrics-out", "");
  const std::string metrics_format_name =
      flags->GetString("metrics-format", "json");
  auto metrics_format = io::ParseMetricsFormat(metrics_format_name);
  if (!metrics_format.ok()) {
    return UsageError(metrics_format.status());
  }
  const std::string impute = flags->GetString("impute", "rowmean");
  const int knn_k = flags->GetInt("knn-k", 10);
  const std::string normalize = flags->GetString("normalize", "none");
  const double merge_overlap = flags->GetDouble("merge-overlap", 0.0);
  const std::string require_gene = flags->GetString("require-gene", "");
  const std::string simd_name = flags->GetString("simd", "auto");
  const std::string matrix_format = flags->GetString("matrix-format", "auto");
  const int64_t model_cache_mb = flags->GetInt64("model-cache-mb", -1);
  opts.model_cache_shards = flags->GetInt("model-cache-shards", 8);
  if (model_cache_mb >= 0) {
    opts.model_cache_bytes = model_cache_mb * (int64_t{1} << 20);
  }
  const std::string checkpoint_path = flags->GetString("checkpoint", "");
  const int checkpoint_every_ms = flags->GetInt("checkpoint-every-ms", 1000);
  const std::string resume_from = flags->GetString("resume-from", "");
  const std::string append_path = flags->GetString("append", "");
  const std::string prev_outcome = flags->GetString("prev-outcome", "");
  const std::string incremental_out = flags->GetString("incremental-out", "");
  const std::string matrix_out = flags->GetString("matrix-out", "");
  const bool deterministic_output =
      flags->GetBool("deterministic-output", false);
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);
  const bool incremental = !append_path.empty() || !incremental_out.empty();
  if (!append_path.empty() && prev_outcome.empty()) {
    std::fprintf(stderr, "--append needs --prev-outcome\n");
    return 2;
  }
  if (append_path.empty() && !prev_outcome.empty()) {
    std::fprintf(stderr, "--prev-outcome needs --append\n");
    return 2;
  }
  if (!matrix_out.empty() && append_path.empty()) {
    std::fprintf(stderr, "--matrix-out needs --append\n");
    return 2;
  }
  if (incremental && sweeping) {
    std::fprintf(stderr,
                 "--append/--incremental-out do not apply with --sweep\n");
    return 2;
  }
  if (incremental &&
      (!checkpoint_path.empty() || !resume_from.empty())) {
    std::fprintf(stderr,
                 "--append/--incremental-out do not combine with "
                 "--checkpoint/--resume-from (the incremental state is the "
                 "durable artifact)\n");
    return 2;
  }
  if (incremental && merge_overlap > 0.0) {
    std::fprintf(stderr,
                 "--merge-overlap does not apply with "
                 "--append/--incremental-out\n");
    return 2;
  }
  if (checkpoint_every_ms <= 0) {
    std::fprintf(stderr, "--checkpoint-every-ms must be positive\n");
    return 2;
  }
  const bool durable = !checkpoint_path.empty() || !resume_from.empty();
  if (auto st = util::simd::ApplySimdFlag(simd_name); !st.ok()) {
    return UsageError(st);
  }

  // Sweep mode: expand the grid before touching the matrix, so a malformed
  // spec is a fast usage error.  The budget flags become sweep-level (the
  // per-point options carry none), and the single-run output flags do not
  // apply.
  std::vector<core::MinerOptions> sweep_points;
  if (sweeping) {
    if (!out_path.empty() || !report_path.empty() || !json_path.empty() ||
        merge_overlap > 0.0 || !require_gene.empty()) {
      std::fprintf(stderr,
                   "--out/--report/--json/--merge-overlap/--require-gene do "
                   "not apply with --sweep\n");
      return 2;
    }
    core::MinerOptions base = opts;
    base.max_nodes = -1;
    base.max_clusters = -1;
    base.deadline_ms = -1.0;
    base.num_threads = 1;
    auto points = io::ParseSweepSpec(sweep_spec, base);
    if (!points.ok()) return UsageError(points.status());
    sweep_points = *std::move(points);
  }

  // Durable-run setup: load the resume snapshot (if any) before touching
  // the matrix so a corrupt or wrong-kind checkpoint fails fast.  A missing
  // snapshot is a fresh start -- supervisors always pass both --checkpoint
  // and --resume-from and get correct behaviour on the first launch too.
  io::CheckpointConfig ckpt_config;
  ckpt_config.path = !checkpoint_path.empty() ? checkpoint_path : resume_from;
  ckpt_config.every_ms = checkpoint_every_ms;
  std::optional<io::Checkpoint> loaded;
  if (!resume_from.empty()) {
    auto l = io::LoadCheckpoint(resume_from);
    if (l.ok()) {
      loaded = *std::move(l);
      ckpt_config.next_generation = loaded->generation + 1;
    } else if (l.status().code() == util::StatusCode::kNotFound) {
      std::fprintf(stderr, "note: no checkpoint at %s yet; starting fresh\n",
                   resume_from.c_str());
    } else {
      return Fail(l.status());
    }
  }
  if (loaded) {
    const auto want =
        sweeping ? io::CheckpointKind::kSweep : io::CheckpointKind::kMine;
    if (loaded->kind != want) {
      return Fail(util::Status::FailedPrecondition(
          std::string("checkpoint at ") + resume_from + " is a " +
          (loaded->kind == io::CheckpointKind::kSweep ? "sweep" : "mine") +
          " snapshot, but this command runs a " +
          (sweeping ? "sweep" : "mine")));
    }
  }

  // Resolve the input reader: explicit --matrix-format, else sniff the
  // binary magic (a text matrix can never start with it).
  bool use_binary = false;
  if (matrix_format == "bin") {
    use_binary = true;
  } else if (matrix_format == "auto") {
    auto is_bin = matrix::IsBinaryMatrixFile(matrix_path);
    use_binary = is_bin.ok() && *is_bin;
  } else if (matrix_format != "text") {
    std::fprintf(stderr, "unknown --matrix-format=%s\n",
                 matrix_format.c_str());
    return 2;
  }

  matrix::ExpressionMatrix data;               // resident (text) storage
  std::optional<matrix::MappedMatrix> mapped;  // mmap-backed (bin) storage
  if (use_binary) {
    if (normalize != "none") {
      std::fprintf(stderr,
                   "--normalize applies at convert time for binary matrices "
                   "(regcluster convert --out-format=bin --normalize=...)\n");
      return 2;
    }
    auto m = matrix::MappedMatrix::Open(matrix_path);
    if (!m.ok()) return Fail(m.status());
    mapped.emplace(*std::move(m));
    if (mapped->HasMissingValues()) {
      return Fail(util::Status::FailedPrecondition(
          "binary matrix contains missing values; impute when converting "
          "(regcluster convert --impute=rowmean --out-format=bin)"));
    }
    std::printf("%s %d x %d binary matrix\n",
                mapped->is_mapped() ? "mapped" : "loaded",
                mapped->num_genes(), mapped->num_conditions());
  } else {
    auto loaded = LoadMatrixArg(matrix_path);
    if (!loaded.ok()) return Fail(loaded.status());
    data = *std::move(loaded);
    if (data.HasMissingValues()) {
      const int64_t missing = matrix::CountMissing(data);
      if (impute == "knn") {
        auto imputed = matrix::ImputeKnn(data, knn_k);
        if (!imputed.ok()) return Fail(imputed.status());
        data = *std::move(imputed);
        std::printf("imputed %lld missing cells with %d-NN\n",
                    static_cast<long long>(missing), knn_k);
      } else if (impute == "rowmean") {
        data = matrix::ImputeRowMean(data);
        std::printf("imputed %lld missing cells with row means\n",
                    static_cast<long long>(missing));
      } else {
        std::fprintf(stderr, "unknown --impute=%s\n", impute.c_str());
        return 2;
      }
    }
    if (normalize == "quantile") {
      auto normalized = matrix::QuantileNormalizeColumns(data);
      if (!normalized.ok()) return Fail(normalized.status());
      data = *std::move(normalized);
      std::printf("quantile-normalized columns\n");
    } else if (normalize != "none") {
      std::fprintf(stderr, "unknown --normalize=%s\n", normalize.c_str());
      return 2;
    }
  }
  const matrix::MatrixStore& store =
      mapped ? static_cast<const matrix::MatrixStore&>(*mapped)
             : static_cast<const matrix::MatrixStore&>(data);

  if (!require_gene.empty()) {
    int gene = store.FindGene(require_gene);
    if (gene < 0) {
      char* end = nullptr;
      gene = static_cast<int>(std::strtol(require_gene.c_str(), &end, 10));
      if (*end != '\0' || gene < 0 || gene >= store.num_genes()) {
        std::fprintf(stderr, "unknown gene: %s\n", require_gene.c_str());
        return 1;
      }
    }
    opts.required_genes = {gene};
    std::printf("targeted mining: clusters must contain %s\n",
                store.gene_name(gene).c_str());
  }

  if (sweeping) {
    return RunSweep(store, opts, sweep_points, sweep_out, sweep_csv,
                    share_models, metrics_path, *metrics_format, durable,
                    ckpt_config, loaded ? &loaded->sweep : nullptr,
                    deterministic_output);
  }

  // Incremental time-course mining: seed a chain (--incremental-out on a
  // plain mine) or extend one (--append + --prev-outcome).  Appends widen
  // the matrix in memory, so binary inputs reload resident here.
  if (incremental) {
    matrix::ExpressionMatrix inc_data;
    if (use_binary) {
      auto m = matrix::ReadBinaryMatrix(matrix_path);
      if (!m.ok()) return Fail(m.status());
      inc_data = *std::move(m);
    } else {
      inc_data = std::move(data);
    }
    util::StatusOr<io::IncrementalMineResult> result =
        util::Status::Internal("unreachable");
    if (append_path.empty()) {
      result = io::MineInitial(inc_data, opts);
    } else {
      auto prev = io::LoadIncrementalState(prev_outcome);
      if (!prev.ok()) return Fail(prev.status());
      // The appended columns arrive as a matrix over the same genes (same
      // order): one column per new condition, labels become the new
      // condition names.
      auto cols = LoadMatrixArg(append_path);
      if (!cols.ok()) return Fail(cols.status());
      if (cols->num_genes() != inc_data.num_genes()) {
        return Fail(util::Status::InvalidArgument(
            "--append matrix has " + std::to_string(cols->num_genes()) +
            " genes; the base matrix has " +
            std::to_string(inc_data.num_genes())));
      }
      const int first_new = inc_data.num_conditions();
      std::vector<std::vector<double>> columns(
          static_cast<size_t>(cols->num_conditions()));
      for (int c = 0; c < cols->num_conditions(); ++c) {
        columns[static_cast<size_t>(c)].resize(
            static_cast<size_t>(cols->num_genes()));
        for (int g = 0; g < cols->num_genes(); ++g) {
          columns[static_cast<size_t>(c)][static_cast<size_t>(g)] =
              (*cols)(g, c);
        }
      }
      if (auto st =
              inc_data.AppendConditions(cols->condition_names(), columns);
          !st.ok()) {
        return Fail(st);
      }
      result = io::MineIncremental(inc_data, first_new, opts, *prev);
    }
    if (!result.ok()) return Fail(result.status());
    std::printf(
        "mined %zu clusters in %.3f s (%d roots re-mined, %d spliced)\n",
        result->clusters.size(), result->stats.mine_seconds,
        result->roots_remined, result->roots_spliced);
    if (!incremental_out.empty()) {
      if (auto st =
              io::WriteIncrementalStateFile(incremental_out, result->state);
          !st.ok()) {
        return Fail(st);
      }
      std::printf("incremental state: %s\n", incremental_out.c_str());
    }
    if (!matrix_out.empty()) {
      if (auto st = matrix::WriteBinaryMatrix(inc_data, matrix_out);
          !st.ok()) {
        return Fail(st);
      }
      std::printf("widened matrix: %s\n", matrix_out.c_str());
    }
    core::MinerStats inc_stats = result->stats;
    core::MineOutcome inc_outcome;
    inc_outcome.status = core::MineStatus::kComplete;
    inc_outcome.roots_total = inc_data.num_conditions();
    inc_outcome.roots_completed = inc_data.num_conditions();
    inc_outcome.simd_level = util::simd::Ops().level;
    if (deterministic_output) {
      io::ZeroVolatileMineFields(&inc_stats, &inc_outcome);
    }
    if (auto st = io::SaveClusters(result->clusters, out_path); !st.ok()) {
      return Fail(st);
    }
    std::printf("archive: %s\n", out_path.c_str());
    if (!report_path.empty()) {
      auto st = WriteReportAtomic(report_path, [&](std::ostream& out) {
        return io::WriteReport(result->clusters, &inc_data, out);
      });
      if (!st.ok()) return Fail(st);
      std::printf("report: %s\n", report_path.c_str());
    }
    if (!json_path.empty()) {
      auto st = WriteReportAtomic(json_path, [&](std::ostream& out) {
        return io::WriteClustersJson(result->clusters, &inc_data,
                                     &inc_outcome, &inc_stats, out);
      });
      if (!st.ok()) return Fail(st);
      std::printf("json: %s\n", json_path.c_str());
    }
    if (!metrics_path.empty()) {
      auto st = WriteReportAtomic(metrics_path, [&](std::ostream& out) {
        return io::WriteMinerMetrics(inc_stats, inc_outcome, *metrics_format,
                                     out, nullptr);
      });
      if (!st.ok()) return Fail(st);
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    return kExitOk;
  }

  // Route SIGINT/SIGTERM into the miner's cancellation token for the
  // duration of the search; a second signal after restoration falls back to
  // the default (immediate) disposition.  In a durable run the cancellation
  // surfaces as a hard stop inside the driver, which writes a final
  // synchronous snapshot before returning -- so Ctrl-C leaves a resumable
  // checkpoint behind.
  auto token = std::make_shared<util::CancellationToken>();
  opts.cancel_token = token;
  g_interrupt_token.store(token.get(), std::memory_order_release);
  auto prev_int = std::signal(SIGINT, HandleInterrupt);
  auto prev_term = std::signal(SIGTERM, HandleInterrupt);
  util::StatusOr<std::vector<core::RegCluster>> clusters;
  core::MinerStats stats;
  core::MineOutcome outcome;
  io::CheckpointStats ckpt_stats;
  const io::CheckpointStats* ckpt_for_metrics = nullptr;
  if (durable) {
    auto result = io::RunCheckpointedMine(store, opts, ckpt_config,
                                          loaded ? &loaded->mine : nullptr);
    if (result.ok()) {
      clusters = std::move(result->clusters);
      stats = result->stats;
      outcome = result->outcome;
      ckpt_stats = result->checkpoint;
      ckpt_for_metrics = &ckpt_stats;
      if (!result->checkpoint_status.ok()) {
        std::fprintf(stderr, "warning: checkpoint write failed: %s\n",
                     result->checkpoint_status.ToString().c_str());
      }
    } else {
      clusters = result.status();
    }
  } else {
    core::RegClusterMiner miner(store, opts);
    clusters = miner.Mine();
    if (clusters.ok()) {
      stats = miner.stats();
      outcome = miner.outcome();
    }
  }
  std::signal(SIGINT, prev_int == SIG_ERR ? SIG_DFL : prev_int);
  std::signal(SIGTERM, prev_term == SIG_ERR ? SIG_DFL : prev_term);
  g_interrupt_token.store(nullptr, std::memory_order_release);
  if (!clusters.ok()) return Fail(clusters.status());

  const bool truncated = outcome.status == core::MineStatus::kTruncated;
  if (truncated) {
    std::fprintf(
        stderr,
        "warning: search truncated (%s) after %d of %d roots; the outputs\n"
        "warning: below are a canonical prefix of the full result"
        " (resume root %d)\n",
        util::StopReasonName(outcome.stop_reason), outcome.roots_completed,
        outcome.roots_total, outcome.resume.next_root);
    if (durable && !ckpt_config.path.empty()) {
      std::fprintf(stderr,
                   "warning: checkpoint saved; re-run the same command with\n"
                   "warning:   --resume-from=%s\n"
                   "warning: to continue from this point\n",
                   ckpt_config.path.c_str());
    }
  }
  if (merge_overlap > 0.0) {
    eval::ConsensusOptions copts;
    copts.min_overlap = merge_overlap;
    copts.gamma_spec = {opts.gamma_policy, opts.gamma};
    copts.epsilon = opts.epsilon;
    const size_t before = clusters->size();
    *clusters = eval::MergeOverlapping(store, *std::move(clusters), copts);
    std::printf("consensus merge at overlap >= %.2f: %zu -> %zu clusters\n",
                merge_overlap, before, clusters->size());
  }
  std::printf(
      "mined %zu clusters in %.3f s (model build %.3f s, %lld nodes, "
      "%lld extensions)\n",
      clusters->size(), stats.mine_seconds, stats.rwave_build_seconds,
      static_cast<long long>(stats.nodes_expanded),
      static_cast<long long>(stats.extensions_tested));

  if (deterministic_output) io::ZeroVolatileMineFields(&stats, &outcome);

  if (auto st = io::SaveClusters(*clusters, out_path); !st.ok()) {
    return Fail(st);
  }
  std::printf("archive: %s\n", out_path.c_str());
  if (!report_path.empty()) {
    auto st = WriteReportAtomic(report_path, [&](std::ostream& out) {
      return io::WriteReport(*clusters, &store, out);
    });
    if (!st.ok()) return Fail(st);
    std::printf("report: %s\n", report_path.c_str());
  }
  if (!json_path.empty()) {
    auto st = WriteReportAtomic(json_path, [&](std::ostream& out) {
      return io::WriteClustersJson(*clusters, &store, &outcome, &stats, out);
    });
    if (!st.ok()) return Fail(st);
    std::printf("json: %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    auto st = WriteReportAtomic(metrics_path, [&](std::ostream& out) {
      return io::WriteMinerMetrics(stats, outcome, *metrics_format, out,
                                   ckpt_for_metrics);
    });
    if (!st.ok()) return Fail(st);
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  return truncated ? kExitTruncated : kExitOk;
}

// ---------------------------------------------------------------------------
// evaluate
// ---------------------------------------------------------------------------

int CmdEvaluate(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster evaluate --found=PATH --truth=PATH [--matrix=PATH]\n"
        "Prints gene/cell relevance & recovery of the found clusters against\n"
        "the truth; with --matrix also validates every found cluster\n"
        "(gamma/epsilon from --gamma=/--epsilon=, defaults 0.05 / 1.0).");
    return 0;
  }
  const std::string found_path = flags->GetString("found", "");
  const std::string truth_path = flags->GetString("truth", "");
  if (found_path.empty() || truth_path.empty()) {
    std::fprintf(stderr, "--found and --truth are required\n");
    return 2;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  const double gamma = flags->GetDouble("gamma", 0.05);
  const double epsilon = flags->GetDouble("epsilon", 1.0);
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);

  auto found_or = LoadClustersArg(found_path);
  if (!found_or.ok()) return Fail(found_or.status());
  auto truth_or = LoadClustersArg(truth_path);
  if (!truth_or.ok()) return Fail(truth_or.status());
  const auto found = *std::move(found_or);
  const auto truth = *std::move(truth_or);
  std::vector<core::Bicluster> found_feet, truth_feet;
  for (const auto& c : found) found_feet.push_back(core::ToBicluster(c));
  for (const auto& c : truth) truth_feet.push_back(core::ToBicluster(c));

  const eval::MatchReport r = eval::ScoreAgainstTruth(found_feet, truth_feet);
  std::printf("found=%zu truth=%zu\n", found.size(), truth.size());
  std::printf("gene  relevance=%.4f recovery=%.4f\n", r.gene_relevance,
              r.gene_recovery);
  std::printf("cell  relevance=%.4f recovery=%.4f\n", r.cell_relevance,
              r.cell_recovery);

  if (!matrix_path.empty()) {
    auto data_or = LoadMatrixArg(matrix_path);
    if (!data_or.ok()) return Fail(data_or.status());
    const matrix::ExpressionMatrix data = *std::move(data_or);
    int invalid = 0;
    std::string why;
    for (const auto& c : found) {
      if (!core::ValidateRegCluster(data, c, gamma, epsilon, &why)) {
        ++invalid;
        std::fprintf(stderr, "invalid cluster: %s\n", why.c_str());
      }
    }
    std::printf("validated %zu clusters, %d invalid (gamma=%.3g eps=%.3g)\n",
                found.size(), invalid, gamma, epsilon);
    if (invalid > 0) return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// enrich
// ---------------------------------------------------------------------------

int CmdEnrich(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster enrich --matrix=PATH --clusters=PATH\n"
        "  [--annotations=PATH] [--max-p=0.05] [--top=3]\n"
        "GO-term enrichment per cluster.  Without --annotations a synthetic\n"
        "database is generated (deterministic, for demos).");
    return 0;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  const std::string clusters_path = flags->GetString("clusters", "");
  if (matrix_path.empty() || clusters_path.empty()) {
    std::fprintf(stderr, "--matrix and --clusters are required\n");
    return 2;
  }
  const std::string annotations_path = flags->GetString("annotations", "");
  eval::EnrichmentOptions eopts;
  eopts.max_p_value = flags->GetDouble("max-p", 0.05);
  const int top = flags->GetInt("top", 3);
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);

  auto data_or = LoadMatrixArg(matrix_path);
  if (!data_or.ok()) return Fail(data_or.status());
  const matrix::ExpressionMatrix data = *std::move(data_or);
  auto clusters_or = LoadClustersArg(clusters_path);
  if (!clusters_or.ok()) return Fail(clusters_or.status());
  const auto clusters = *std::move(clusters_or);

  eval::GoAnnotationDb db{0};
  if (annotations_path.empty()) {
    std::printf("no --annotations; generating a synthetic database\n");
    db = eval::GenerateAnnotations(data.num_genes(), {});
  } else {
    auto loaded = io::LoadAnnotations(annotations_path, data);
    if (!loaded.ok()) return Fail(loaded.status());
    std::printf("loaded %lld annotations (%lld unknown genes skipped)\n",
                static_cast<long long>(loaded->annotations_loaded),
                static_cast<long long>(loaded->unknown_genes_skipped));
    db = std::move(loaded->db);
  }

  for (size_t i = 0; i < clusters.size(); ++i) {
    auto results = eval::FindEnrichedTerms(db, clusters[i].AllGenes(), eopts);
    if (!results.ok()) return Fail(results.status());
    std::printf("cluster %zu (%d genes):", i, clusters[i].num_genes());
    if (results->empty()) {
      std::printf(" no enriched terms\n");
      continue;
    }
    std::printf("\n");
    for (size_t j = 0; j < results->size() && j < static_cast<size_t>(top);
         ++j) {
      const auto& r = (*results)[j];
      std::printf("  %-14s %-32s k=%d/%d p=%.3e (corrected %.3e)\n",
                  db.term(r.term).id.c_str(), db.term(r.term).name.c_str(),
                  r.cluster_count, r.population_count, r.p_value,
                  r.corrected_p_value);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// summarize
// ---------------------------------------------------------------------------

int CmdSummarize(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster summarize --clusters=PATH [--matrix=PATH] [--top=5]\n"
        "Aggregate statistics; with --matrix also intrinsic quality of the\n"
        "top-ranked clusters.");
    return 0;
  }
  const std::string clusters_path = flags->GetString("clusters", "");
  if (clusters_path.empty()) {
    std::fprintf(stderr, "--clusters is required\n");
    return 2;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  const int top = flags->GetInt("top", 5);
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);

  auto clusters_or = LoadClustersArg(clusters_path);
  if (!clusters_or.ok()) return Fail(clusters_or.status());
  const auto clusters = *std::move(clusters_or);
  const eval::ClusterSetSummary s = eval::Summarize(clusters);
  std::printf("clusters: %d\n", s.num_clusters);
  if (s.num_clusters == 0) return 0;
  std::printf("genes per cluster: min=%d mean=%.1f max=%d\n", s.min_genes,
              s.mean_genes, s.max_genes);
  std::printf("conditions per cluster: min=%d mean=%.1f max=%d\n",
              s.min_conditions, s.mean_conditions, s.max_conditions);
  std::printf("with negative members: %.0f%%\n", 100 * s.negative_fraction);
  if (s.num_clusters > 1) {
    std::printf("pairwise cell overlap: %.0f%% .. %.0f%%\n",
                100 * s.min_overlap, 100 * s.max_overlap);
  }

  if (!matrix_path.empty()) {
    auto data_or = LoadMatrixArg(matrix_path);
    if (!data_or.ok()) return Fail(data_or.status());
    const matrix::ExpressionMatrix data = *std::move(data_or);
    const std::vector<int> ranked = eval::RankClusters(data, clusters);
    std::printf("\ntop clusters by size/tightness:\n");
    for (size_t i = 0; i < ranked.size() && i < static_cast<size_t>(top);
         ++i) {
      const auto& c = clusters[static_cast<size_t>(ranked[i])];
      const eval::ClusterQuality q = eval::ScoreCluster(data, c);
      std::printf(
          "  #%d: %dx%d spread=%.4f margin=%.2f fit_residual=%.4f "
          "|corr|=%.3f\n",
          ranked[i], c.num_genes(), c.num_conditions(), q.coherence_spread,
          q.regulation_margin, q.mean_fit_residual, q.mean_abs_correlation);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// convert
// ---------------------------------------------------------------------------

int CmdConvert(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster convert --in=PATH --out=PATH\n"
        "  [--in-format=auto|bin|text] [--out-format=text|bin]\n"
        "  [--in-delimiter=tab|comma] [--out-delimiter=tab|comma]\n"
        "  [--impute=none|rowmean|knn] [--knn-k=10]\n"
        "  [--transform=none|log|exp|zscore] [--normalize=none|quantile]\n"
        "Format conversion plus the preprocessing pipeline, applied in the\n"
        "order impute -> transform -> normalize.\n"
        "--out-format=bin writes the mmap-backed binary matrix format\n"
        "(64-byte header + page-aligned gene-contiguous doubles) that\n"
        "`mine --matrix-format=bin` maps instead of loading; impute here,\n"
        "since the mapped file is read-only at mine time.  --in-format\n"
        "defaults to sniffing the binary magic.");
    return 0;
  }
  const std::string in_path = flags->GetString("in", "");
  const std::string out_path = flags->GetString("out", "");
  if (in_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "--in and --out are required\n");
    return 2;
  }
  auto delim = [](const std::string& name, char fallback) {
    if (name == "tab") return '\t';
    if (name == "comma") return ',';
    return fallback;
  };
  matrix::TextFormat in_fmt;
  in_fmt.delimiter = delim(flags->GetString("in-delimiter", "tab"), '\t');
  matrix::TextFormat out_fmt;
  out_fmt.delimiter = delim(flags->GetString("out-delimiter", "tab"), '\t');
  const std::string impute = flags->GetString("impute", "none");
  const int knn_k = flags->GetInt("knn-k", 10);
  const std::string transform = flags->GetString("transform", "none");
  const std::string normalize = flags->GetString("normalize", "none");
  const std::string in_format = flags->GetString("in-format", "auto");
  const std::string out_format = flags->GetString("out-format", "text");
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);
  if (out_format != "text" && out_format != "bin") {
    std::fprintf(stderr, "unknown --out-format=%s\n", out_format.c_str());
    return 2;
  }

  bool in_binary = false;
  if (in_format == "bin") {
    in_binary = true;
  } else if (in_format == "auto") {
    auto is_bin = matrix::IsBinaryMatrixFile(in_path);
    in_binary = is_bin.ok() && *is_bin;
  } else if (in_format != "text") {
    std::fprintf(stderr, "unknown --in-format=%s\n", in_format.c_str());
    return 2;
  }

  matrix::ExpressionMatrix data;
  if (in_binary) {
    auto loaded = matrix::ReadBinaryMatrix(in_path);
    if (!loaded.ok()) return Fail(loaded.status());
    data = *std::move(loaded);
  } else {
    auto loaded = matrix::LoadMatrix(in_path, in_fmt);
    if (!loaded.ok()) return Fail(loaded.status());
    data = *std::move(loaded);
  }

  if (impute == "rowmean") {
    data = matrix::ImputeRowMean(data);
  } else if (impute == "knn") {
    auto imputed = matrix::ImputeKnn(data, knn_k);
    if (!imputed.ok()) return Fail(imputed.status());
    data = *std::move(imputed);
  } else if (impute != "none") {
    std::fprintf(stderr, "unknown --impute=%s\n", impute.c_str());
    return 2;
  }

  if (transform == "log") {
    auto t = matrix::LogTransform(data);
    if (!t.ok()) return Fail(t.status());
    data = *std::move(t);
  } else if (transform == "exp") {
    auto t = matrix::ExpTransform(data);
    if (!t.ok()) return Fail(t.status());
    data = *std::move(t);
  } else if (transform == "zscore") {
    data = matrix::ZScoreRows(data);
  } else if (transform != "none") {
    std::fprintf(stderr, "unknown --transform=%s\n", transform.c_str());
    return 2;
  }

  if (normalize == "quantile") {
    auto n = matrix::QuantileNormalizeColumns(data);
    if (!n.ok()) return Fail(n.status());
    data = *std::move(n);
  } else if (normalize != "none") {
    std::fprintf(stderr, "unknown --normalize=%s\n", normalize.c_str());
    return 2;
  }

  if (out_format == "bin") {
    if (auto st = matrix::WriteBinaryMatrix(data, out_path); !st.ok()) {
      return Fail(st);
    }
  } else if (auto st = matrix::SaveMatrix(data, out_path, out_fmt);
             !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %d x %d %s matrix to %s\n", data.num_genes(),
              data.num_conditions(), out_format.c_str(), out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

int CmdStats(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster stats --matrix=PATH [--worst=5]\n"
        "Data-QC report: matrix summary, per-condition table, flattest "
        "genes.");
    return 0;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  if (matrix_path.empty()) {
    std::fprintf(stderr, "--matrix is required\n");
    return 2;
  }
  const int worst = flags->GetInt("worst", 5);
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);
  auto data_or = LoadMatrixArg(matrix_path);
  if (!data_or.ok()) return Fail(data_or.status());
  const matrix::ExpressionMatrix data = *std::move(data_or);
  if (auto st = matrix::WriteStatsReport(data, std::cout, worst); !st.ok()) {
    return Fail(st);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// significance
// ---------------------------------------------------------------------------

int CmdSignificance(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster significance --matrix=PATH --clusters=PATH\n"
        "  [--gamma=0.05] [--epsilon=1.0] [--permutations=2000] [--seed=101]\n"
        "Permutation test per cluster: how often does a shuffled gene "
        "profile\nmatch the cluster's chain and coherence?  Reports the "
        "binomial-tail\np-value for the observed member count.");
    return 0;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  const std::string clusters_path = flags->GetString("clusters", "");
  if (matrix_path.empty() || clusters_path.empty()) {
    std::fprintf(stderr, "--matrix and --clusters are required\n");
    return 2;
  }
  eval::SignificanceOptions opts;
  opts.gamma_spec.gamma = flags->GetDouble("gamma", 0.05);
  opts.epsilon = flags->GetDouble("epsilon", 1.0);
  opts.permutations = flags->GetInt("permutations", 2000);
  opts.seed = static_cast<uint64_t>(flags->GetInt("seed", 101));
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);

  auto data_or = LoadMatrixArg(matrix_path);
  if (!data_or.ok()) return Fail(data_or.status());
  matrix::ExpressionMatrix data = *std::move(data_or);
  if (data.HasMissingValues()) data = matrix::ImputeRowMean(data);
  auto clusters_or = LoadClustersArg(clusters_path);
  if (!clusters_or.ok()) return Fail(clusters_or.status());
  const auto clusters = *std::move(clusters_or);

  std::printf("%-10s %8s %8s %14s %14s %12s\n", "cluster", "genes", "conds",
              "null-chain", "null-full", "p-value");
  for (size_t i = 0; i < clusters.size(); ++i) {
    auto result = eval::PermutationSignificance(data, clusters[i], opts);
    if (!result.ok()) return Fail(result.status());
    std::printf("%-10zu %8d %8d %14.5f %14.5f %12.3e\n", i,
                clusters[i].num_genes(), clusters[i].num_conditions(),
                result->null_chain_rate, result->null_full_rate,
                result->p_value);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// rwave (inspection / debugging)
// ---------------------------------------------------------------------------

int CmdRWave(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster rwave --matrix=PATH --gene=NAME_OR_INDEX\n"
        "  [--gamma=0.1] [--gamma-policy=range|stddev|mean|closest-gap|"
        "absolute]\n"
        "Prints the gene's RWave^gamma model: the sorted condition order and "
        "the bordering regulation pointers (paper Figure 3).");
    return 0;
  }
  const std::string matrix_path = flags->GetString("matrix", "");
  const std::string gene_arg = flags->GetString("gene", "");
  if (matrix_path.empty() || gene_arg.empty()) {
    std::fprintf(stderr, "--matrix and --gene are required\n");
    return 2;
  }
  core::GammaSpec spec;
  spec.gamma = flags->GetDouble("gamma", 0.1);
  const std::string policy = flags->GetString("gamma-policy", "range");
  if (!core::ParseGammaPolicy(policy, &spec.policy)) {
    std::fprintf(stderr, "unknown --gamma-policy=%s\n", policy.c_str());
    return 2;
  }
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);

  auto data_or = LoadMatrixArg(matrix_path);
  if (!data_or.ok()) return Fail(data_or.status());
  matrix::ExpressionMatrix data = *std::move(data_or);
  if (data.HasMissingValues()) data = matrix::ImputeRowMean(data);
  int gene = data.FindGene(gene_arg);
  if (gene < 0) {
    char* end = nullptr;
    gene = static_cast<int>(std::strtol(gene_arg.c_str(), &end, 10));
    if (*end != '\0' || gene < 0 || gene >= data.num_genes()) {
      std::fprintf(stderr, "unknown gene: %s\n", gene_arg.c_str());
      return 1;
    }
  }

  const double gamma_abs = core::AbsoluteGamma(data, gene, spec);
  const core::RWaveModel model =
      core::RWaveModel::Build(data.row_data(gene), data.num_conditions(),
                              gamma_abs);
  std::printf("gene %s, policy %s, gamma = %g -> gamma_i = %g\n",
              data.gene_name(gene).c_str(), core::GammaPolicyName(spec.policy),
              spec.gamma, gamma_abs);
  std::printf("sorted order (value):\n");
  for (int p = 0; p < model.num_conditions(); ++p) {
    std::printf("  [%2d] %-12s %10.4f  up-chain %d  down-chain %d\n", p,
                data.condition_name(model.condition_at(p)).c_str(),
                model.value_at(p), model.MaxChainUp(p), model.MaxChainDown(p));
  }
  std::printf("bordering regulation pointers (tail <- head):\n");
  for (const auto& ptr : model.pointers()) {
    std::printf("  %s <- %s  (%.4f <- %.4f)\n",
                data.condition_name(model.condition_at(ptr.tail_pos)).c_str(),
                data.condition_name(model.condition_at(ptr.head_pos)).c_str(),
                model.value_at(ptr.tail_pos), model.value_at(ptr.head_pos));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

std::atomic<server::ServerDaemon*> g_serve_daemon{nullptr};

extern "C" void HandleServeSignal(int /*signum*/) {
  // RequestShutdown is one write() to a self-pipe: async-signal-safe.
  server::ServerDaemon* daemon =
      g_serve_daemon.load(std::memory_order_acquire);
  if (daemon != nullptr) daemon->RequestShutdown();
}

int CmdServe(Flags* flags) {
  if (flags->GetBool("help")) {
    std::puts(
        "regcluster serve [--port=N] [--socket=PATH]\n"
        "  [--threads=1] [--max-active=2] [--max-queued=8]\n"
        "  [--memory-budget-mb=512] [--cache-mb=256] [--retry-after-s=1]\n"
        "  [--ming=20] [--minc=6] [--gamma=0.05] [--gamma-policy=range]\n"
        "  [--epsilon=1.0] [--simd=auto]\n"
        "Long-lived mining daemon.  --port binds 127.0.0.1:N over TCP (0\n"
        "picks an ephemeral port, printed on the 'listening' line);\n"
        "--socket binds a unix socket; at least one is required.  Both\n"
        "speak HTTP/1.1 (POST /mine, POST /sweep, GET /metrics,\n"
        "GET /healthz) and the length-prefixed binary framing -- the first\n"
        "byte of each connection picks the transport.  Loaded matrices and\n"
        "gamma models are cached across requests in an LRU bounded by\n"
        "--cache-mb; admission sheds (503 + Retry-After) beyond\n"
        "--max-active/--max-queued sessions or --memory-budget-mb.  The\n"
        "--ming/--minc/... flags are the request defaults; request bodies\n"
        "override them per call.  SIGTERM/SIGINT drain: in-flight requests\n"
        "complete, then the daemon exits 0.");
    return 0;
  }
  server::ServerDaemon::Options opts;
  opts.port = flags->GetInt("port", -1);
  opts.unix_socket = flags->GetString("socket", "");
  opts.service.num_threads = flags->GetInt("threads", 1);
  opts.service.max_active = flags->GetInt("max-active", 2);
  opts.service.max_queued = flags->GetInt("max-queued", 8);
  opts.service.memory_budget_bytes =
      flags->GetInt64("memory-budget-mb", 512) * (int64_t{1} << 20);
  opts.service.cache_bytes =
      flags->GetInt64("cache-mb", 256) * (int64_t{1} << 20);
  opts.service.retry_after_s = flags->GetInt("retry-after-s", 1);
  core::MinerOptions& defaults = opts.service.defaults;
  defaults.min_genes = flags->GetInt("ming", 20);
  defaults.min_conditions = flags->GetInt("minc", 6);
  defaults.gamma = flags->GetDouble("gamma", 0.05);
  defaults.epsilon = flags->GetDouble("epsilon", 1.0);
  defaults.collect_stats = true;
  const std::string policy = flags->GetString("gamma-policy", "range");
  if (!core::ParseGammaPolicy(policy, &defaults.gamma_policy)) {
    std::fprintf(stderr, "unknown --gamma-policy=%s\n", policy.c_str());
    return 2;
  }
  const std::string simd_name = flags->GetString("simd", "auto");
  if (auto st = flags->RejectUnknown(); !st.ok()) return UsageError(st);
  if (auto st = util::simd::ApplySimdFlag(simd_name); !st.ok()) {
    return UsageError(st);
  }
  if (opts.service.num_threads < 1 || opts.service.max_active < 1 ||
      opts.service.max_queued < 0) {
    std::fprintf(stderr,
                 "--threads/--max-active must be >= 1, --max-queued >= 0\n");
    return 2;
  }

  server::ServerDaemon daemon(opts);
  if (auto st = daemon.Start(); !st.ok()) {
    return st.code() == util::StatusCode::kInvalidArgument ? UsageError(st)
                                                           : Fail(st);
  }
  // Machine-readable readiness line -- the lifecycle test waits for it.
  std::printf("listening port=%d socket=%s\n", daemon.bound_port(),
              opts.unix_socket.empty() ? "-" : opts.unix_socket.c_str());
  std::fflush(stdout);

  g_serve_daemon.store(&daemon, std::memory_order_release);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  daemon.Run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_daemon.store(nullptr, std::memory_order_release);
  std::printf("drained, exiting\n");
  return 0;
}

int Usage() {
  std::puts(
      "regcluster <command> [--flags]\n"
      "commands: generate, mine, evaluate, enrich, summarize, rwave, "
      "significance, stats, convert, serve\n"
      "run `regcluster <command> --help` for details\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage, 3 truncated by budget");
  return kExitUsage;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  auto flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) return UsageError(flags.status());
  if (cmd == "generate") return CmdGenerate(&*flags);
  if (cmd == "mine") return CmdMine(&*flags);
  if (cmd == "evaluate") return CmdEvaluate(&*flags);
  if (cmd == "enrich") return CmdEnrich(&*flags);
  if (cmd == "summarize") return CmdSummarize(&*flags);
  if (cmd == "rwave") return CmdRWave(&*flags);
  if (cmd == "significance") return CmdSignificance(&*flags);
  if (cmd == "stats") return CmdStats(&*flags);
  if (cmd == "convert") return CmdConvert(&*flags);
  if (cmd == "serve") return CmdServe(&*flags);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace regcluster

int main(int argc, char** argv) { return regcluster::cli::Main(argc, argv); }
