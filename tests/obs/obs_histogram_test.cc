// Property tests for the obs metrics primitives.
//
// The histogram invariants hold for *any* sample stream:
//   * sum over all buckets == count()
//   * cumulative bucket counts are monotone non-decreasing
//   * min()/max() bound every recorded sample, and every sample lands in
//     the bucket whose range [2^(i-1), 2^i - 1] contains it
// They are exercised under PRNG streams spanning several magnitude regimes
// (small ints, full 62-bit range, constant, zero-heavy) rather than
// hand-picked examples.  The registry half checks the Status-based name
// contract: duplicates and malformed names are rejected, never asserted.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/prng.h"

namespace regcluster {
namespace obs {
namespace {

/// Feeds `n` samples drawn by `draw` into a histogram and checks every
/// structural invariant against an independently computed reference.
template <typename DrawFn>
void CheckHistogramInvariants(uint64_t seed, int n, DrawFn draw) {
  util::Prng prng(seed);
  Histogram h;
  int64_t ref_count = 0;
  int64_t ref_sum = 0;
  int64_t ref_min = std::numeric_limits<int64_t>::max();
  int64_t ref_max = std::numeric_limits<int64_t>::min();
  std::vector<int64_t> ref_buckets(Histogram::kNumBuckets, 0);
  for (int i = 0; i < n; ++i) {
    const int64_t v = draw(&prng);
    ASSERT_GE(v, 0) << "test draws must be non-negative";
    h.Record(v);
    ++ref_count;
    ref_sum += v;
    ref_min = std::min(ref_min, v);
    ref_max = std::max(ref_max, v);
    ++ref_buckets[static_cast<size_t>(
        std::bit_width(static_cast<uint64_t>(v)))];
  }

  EXPECT_EQ(h.count(), ref_count);
  EXPECT_EQ(h.sum(), ref_sum);
  EXPECT_EQ(h.min(), ref_count > 0 ? ref_min : 0);
  EXPECT_EQ(h.max(), ref_count > 0 ? ref_max : 0);

  // Bucket identity: per-bucket counts match the reference exactly, their
  // total is count(), and every sample respects its bucket's bounds.
  int64_t total = 0;
  int64_t cumulative = 0;
  int64_t prev_cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const int64_t b = h.bucket_count(i);
    EXPECT_EQ(b, ref_buckets[static_cast<size_t>(i)]) << "bucket " << i;
    total += b;
    prev_cumulative = cumulative;
    cumulative += b;
    EXPECT_GE(cumulative, prev_cumulative) << "bucket " << i;
    if (b > 0) {
      // Non-empty bucket i implies the recorded range intersects
      // [lower bound of i, upper bound of i].
      const int64_t hi = Histogram::BucketUpperBound(i);
      const int64_t lo = i == 0 ? 0 : Histogram::BucketUpperBound(i - 1) + 1;
      EXPECT_LE(lo, h.max());
      EXPECT_GE(hi, h.min());
    }
  }
  EXPECT_EQ(total, h.count());

  // HighestBucket agrees with max(): the max sample's bucket is the
  // highest non-empty one.
  if (ref_count > 0) {
    EXPECT_EQ(h.HighestBucket(),
              std::bit_width(static_cast<uint64_t>(h.max())));
  } else {
    EXPECT_EQ(h.HighestBucket(), -1);
  }
}

TEST(ObsHistogramTest, InvariantsUnderSmallUniformStream) {
  CheckHistogramInvariants(17, 5000, [](util::Prng* p) {
    return p->UniformInt(0, 1000);
  });
}

TEST(ObsHistogramTest, InvariantsUnderFullRangeStream) {
  CheckHistogramInvariants(23, 5000, [](util::Prng* p) {
    return p->UniformInt(0, int64_t{1} << 62);
  });
}

TEST(ObsHistogramTest, InvariantsUnderZeroHeavyStream) {
  CheckHistogramInvariants(31, 5000, [](util::Prng* p) {
    return p->Bernoulli(0.8) ? int64_t{0} : p->UniformInt(1, 7);
  });
}

TEST(ObsHistogramTest, InvariantsUnderConstantStream) {
  CheckHistogramInvariants(41, 100, [](util::Prng*) { return int64_t{42}; });
}

TEST(ObsHistogramTest, EmptyHistogram) {
  CheckHistogramInvariants(0, 0, [](util::Prng*) { return int64_t{0}; });
}

TEST(ObsHistogramTest, BucketBoundsArePowersOfTwoMinusOne) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
  // Boundary samples land on the correct side.
  Histogram h;
  h.Record(7);   // bucket 3 (bit_width 3)
  h.Record(8);   // bucket 4 (bit_width 4)
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
}

TEST(ObsRegistryTest, RejectsDuplicateNames) {
  MetricsRegistry reg;
  ASSERT_TRUE(reg.AddCounter("regcluster_demo_total", "first").ok());
  // Same name again -- same kind or any other -- is InvalidArgument.
  auto dup_counter = reg.AddCounter("regcluster_demo_total", "again");
  ASSERT_FALSE(dup_counter.ok());
  EXPECT_EQ(dup_counter.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(dup_counter.status().message().find("duplicate"),
            std::string::npos);
  EXPECT_FALSE(reg.AddGauge("regcluster_demo_total", "as gauge").ok());
  EXPECT_FALSE(reg.AddHistogram("regcluster_demo_total", "as histo").ok());
  // The registry is not poisoned: fresh names still register.
  EXPECT_TRUE(reg.AddGauge("regcluster_demo_seconds", "ok").ok());
  EXPECT_EQ(reg.num_metrics(), 2);
}

TEST(ObsRegistryTest, RejectsMalformedNames) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.AddCounter("", "empty").ok());
  EXPECT_FALSE(reg.AddCounter("9starts_with_digit", "bad").ok());
  EXPECT_FALSE(reg.AddCounter("has space", "bad").ok());
  EXPECT_FALSE(reg.AddCounter("has-dash", "bad").ok());
  EXPECT_TRUE(reg.AddCounter("_ok:name123", "good").ok());
  EXPECT_EQ(reg.num_metrics(), 1);
}

TEST(ObsRegistryTest, FindReturnsRegisteredMetricOrNull) {
  MetricsRegistry reg;
  auto c = reg.AddCounter("regcluster_x_total", "x");
  auto g = reg.AddGauge("regcluster_y_seconds", "y");
  auto h = reg.AddHistogram("regcluster_z", "z");
  ASSERT_TRUE(c.ok() && g.ok() && h.ok());
  (*c)->Increment();
  EXPECT_EQ(reg.FindCounter("regcluster_x_total"), *c);
  EXPECT_EQ(reg.FindGauge("regcluster_y_seconds"), *g);
  EXPECT_EQ(reg.FindHistogram("regcluster_z"), *h);
  // Wrong kind and unknown names come back null, never a different entry.
  EXPECT_EQ(reg.FindGauge("regcluster_x_total"), nullptr);
  EXPECT_EQ(reg.FindCounter("regcluster_z"), nullptr);
  EXPECT_EQ(reg.FindHistogram("no_such"), nullptr);
}

TEST(ObsMetricsTest, GaugeAddAccumulates) {
  Gauge g;
  g.Set(1.5);
  g.Add(2.0);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(ObsMetricsTest, PhaseSpanAddsToEveryTargetKind) {
  Gauge gauge;
  Counter ns_counter;
  double accum = 0.0;
  {
    PhaseSpan a(&gauge);
    PhaseSpan b(&ns_counter);
    PhaseSpan c(&accum);
    // Explicit Stop is idempotent; the destructor must not double-add.
    const double first = c.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(c.Stop(), 0.0);
  }
  EXPECT_GE(gauge.value(), 0.0);
  EXPECT_GE(ns_counter.value(), 0);
  EXPECT_GE(accum, 0.0);
  // A null target is a no-op span.
  PhaseSpan null_span(static_cast<Gauge*>(nullptr));
  EXPECT_GE(null_span.Stop(), 0.0);
}

TEST(ObsMetricsTest, MetricKindNamesAreStable) {
  EXPECT_STREQ(MetricKindName(MetricKind::kCounter), "counter");
  EXPECT_STREQ(MetricKindName(MetricKind::kGauge), "gauge");
  EXPECT_STREQ(MetricKindName(MetricKind::kHistogram), "histogram");
}

TEST(ObsRegistryTest, ExportsAreByteStableAcrossIdenticalRuns) {
  auto build = [](std::string* json, std::string* prom) {
    MetricsRegistry reg;
    auto c = reg.AddCounter("regcluster_a_total", "a");
    auto g = reg.AddGauge("regcluster_b_seconds", "b");
    auto h = reg.AddHistogram("regcluster_c", "c");
    ASSERT_TRUE(c.ok() && g.ok() && h.ok());
    (*c)->Add(12);
    (*g)->Set(3.5);
    for (int64_t v : {0, 1, 5, 900, 900}) (*h)->Record(v);
    std::ostringstream js, ps;
    ASSERT_TRUE(reg.WriteJson(js).ok());
    ASSERT_TRUE(reg.WritePrometheus(ps).ok());
    *json = js.str();
    *prom = ps.str();
  };
  std::string json1, prom1, json2, prom2;
  build(&json1, &prom1);
  build(&json2, &prom2);
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(prom1, prom2);
  EXPECT_NE(json1.find("\"regcluster_a_total\""), std::string::npos);
  EXPECT_NE(prom1.find("# TYPE regcluster_c histogram"), std::string::npos);
  EXPECT_NE(prom1.find("regcluster_c_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace regcluster
