#include "io/annotation_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "eval/annotation_gen.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace io {
namespace {

matrix::ExpressionMatrix NamedMatrix() {
  matrix::ExpressionMatrix m(3, 2);
  (void)m.SetGeneNames({"YAL001C", "YAL002W", "YAL003W"});
  return m;
}

TEST(AnnotationIoTest, ParsesBasicFile) {
  const std::string text =
      "# comment\n"
      "YAL001C\tGO:0006260\tDNA replication\tprocess\n"
      "YAL002W\tGO:0006260\tDNA replication\tprocess\n"
      "YAL001C\tGO:0003887\tDNA polymerase\tfunction\n";
  std::istringstream in(text);
  auto result = ReadAnnotations(in, NamedMatrix());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->annotations_loaded, 3);
  EXPECT_EQ(result->unknown_genes_skipped, 0);
  EXPECT_EQ(result->db.num_terms(), 2);
  EXPECT_EQ(result->db.TermPopulationCount(0), 2);
  EXPECT_EQ(result->db.term(0).name, "DNA replication");
  EXPECT_EQ(result->db.term(1).category,
            eval::GoCategory::kMolecularFunction);
}

TEST(AnnotationIoTest, SkipsUnknownGenes) {
  std::istringstream in("NOPE\tGO:1\tterm\tprocess\n");
  auto result = ReadAnnotations(in, NamedMatrix());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->annotations_loaded, 0);
  EXPECT_EQ(result->unknown_genes_skipped, 1);
}

TEST(AnnotationIoTest, RejectsBadCategory) {
  std::istringstream in("YAL001C\tGO:1\tterm\tbogus\n");
  EXPECT_FALSE(ReadAnnotations(in, NamedMatrix()).ok());
}

TEST(AnnotationIoTest, RejectsWrongFieldCount) {
  std::istringstream in("YAL001C\tGO:1\tprocess\n");
  EXPECT_FALSE(ReadAnnotations(in, NamedMatrix()).ok());
}

TEST(AnnotationIoTest, RoundTripThroughWriter) {
  const auto data = NamedMatrix();
  eval::GoAnnotationDb db(3);
  db.AddTerm({"GO:1", "alpha", eval::GoCategory::kBiologicalProcess});
  db.AddTerm({"GO:2", "beta", eval::GoCategory::kCellularComponent});
  ASSERT_TRUE(db.Annotate(0, 0).ok());
  ASSERT_TRUE(db.Annotate(2, 0).ok());
  ASSERT_TRUE(db.Annotate(1, 1).ok());

  std::ostringstream out;
  ASSERT_TRUE(WriteAnnotations(db, data, out).ok());
  std::istringstream in(out.str());
  auto back = ReadAnnotations(in, data);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->annotations_loaded, 3);
  EXPECT_EQ(back->db.num_terms(), 2);
  // Population counts preserved (term order may renumber; check by id).
  int alpha = -1;
  for (int t = 0; t < back->db.num_terms(); ++t) {
    if (back->db.term(t).id == "GO:1") alpha = t;
  }
  ASSERT_GE(alpha, 0);
  EXPECT_EQ(back->db.TermPopulationCount(alpha), 2);
}

TEST(AnnotationIoTest, WriterRejectsPopulationMismatch) {
  eval::GoAnnotationDb db(5);
  std::ostringstream out;
  EXPECT_FALSE(WriteAnnotations(db, NamedMatrix(), out).ok());
}

TEST(AnnotationIoTest, SyntheticDatabaseRoundTrips) {
  matrix::ExpressionMatrix m(50, 2);
  const eval::GoAnnotationDb db = eval::GenerateAnnotations(50, {{1, 2, 3}});
  std::ostringstream out;
  ASSERT_TRUE(WriteAnnotations(db, m, out).ok());
  std::istringstream in(out.str());
  auto back = ReadAnnotations(in, m);
  ASSERT_TRUE(back.ok());
  int64_t total = 0;
  for (int g = 0; g < 50; ++g) {
    total += static_cast<int64_t>(db.GeneTerms(g).size());
  }
  EXPECT_EQ(back->annotations_loaded, total);
}

TEST(AnnotationIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadAnnotations("/no/such/file", NamedMatrix()).ok());
}

}  // namespace
}  // namespace io
}  // namespace regcluster
