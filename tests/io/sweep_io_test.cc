// Unit tests for the sweep spec grammar and the report writers
// (io/sweep_io.h).  The CLI e2e (cli_sweep.cmake) covers the same surface
// end-to-end but cannot pass literal semicolons through CMake argument
// lists, so the `v;v` list form is pinned here.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/sweep.h"
#include "io/sweep_io.h"
#include "obs/metrics.h"

namespace regcluster {
namespace io {
namespace {

core::MinerOptions Base() {
  core::MinerOptions base;
  base.min_genes = 7;
  base.min_conditions = 4;
  base.gamma = 0.3;
  base.epsilon = 0.7;
  base.gamma_policy = core::GammaPolicy::kStdDevFraction;
  return base;
}

TEST(ParseSweepSpecTest, RangeAxisExpandsInclusiveEndpoints) {
  auto points = ParseSweepSpec("gamma=0.1:0.5:0.1", Base());
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 5u);
  for (size_t i = 0; i < points->size(); ++i) {
    EXPECT_NEAR((*points)[i].gamma, 0.1 + 0.1 * static_cast<double>(i), 1e-12);
    // Unswept options come from the base.
    EXPECT_EQ((*points)[i].min_genes, 7);
    EXPECT_EQ((*points)[i].epsilon, 0.7);
    EXPECT_EQ((*points)[i].gamma_policy, core::GammaPolicy::kStdDevFraction);
  }
}

TEST(ParseSweepSpecTest, SemicolonListAndCrossProductOrder) {
  // Later axes vary fastest.
  auto points = ParseSweepSpec("gamma=0.1;0.2,minc=3;4", Base());
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 4u);
  EXPECT_EQ((*points)[0].gamma, 0.1);
  EXPECT_EQ((*points)[0].min_conditions, 3);
  EXPECT_EQ((*points)[1].gamma, 0.1);
  EXPECT_EQ((*points)[1].min_conditions, 4);
  EXPECT_EQ((*points)[2].gamma, 0.2);
  EXPECT_EQ((*points)[2].min_conditions, 3);
  EXPECT_EQ((*points)[3].gamma, 0.2);
  EXPECT_EQ((*points)[3].min_conditions, 4);
}

TEST(ParseSweepSpecTest, EpsilonAliasesAndSingleValues) {
  auto a = ParseSweepSpec("eps=0.05,ming=3", Base());
  auto b = ParseSweepSpec("epsilon=0.05,ming=3", Base());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), 1u);
  EXPECT_EQ((*a)[0].epsilon, 0.05);
  EXPECT_EQ((*a)[0].min_genes, 3);
  EXPECT_EQ((*b)[0].epsilon, (*a)[0].epsilon);
}

TEST(ParseSweepSpecTest, JsonListForm) {
  auto points = ParseSweepSpec(
      "  [ {\"gamma\": 0.1, \"minc\": 3}, {\"eps\": 0.2}, {} ] ", Base());
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[0].gamma, 0.1);
  EXPECT_EQ((*points)[0].min_conditions, 3);
  EXPECT_EQ((*points)[1].epsilon, 0.2);
  EXPECT_EQ((*points)[1].gamma, 0.3);   // base
  EXPECT_EQ((*points)[2].gamma, 0.3);   // bare {} is pure base
}

TEST(ParseSweepSpecTest, MalformedSpecsAreInvalidArgument) {
  const char* bad[] = {
      "",                      // empty
      "   ",                   // blank
      "delta=0.1",             // unknown axis
      "gamma",                 // no '='
      "gamma=",                // no values
      "gamma=a",               // not a number
      "gamma=0.5:0.1:0.1",     // descending range
      "gamma=0.1:0.5:0",       // zero step
      "gamma=0.1:0.5:-0.1",    // negative step
      "gamma=0.1:0.5",         // two-part range
      "ming=2.5",              // non-integer int axis
      "gamma=0.1,gamma=0.2",   // duplicate axis
      "[",                     // unterminated JSON
      "[]",                    // empty JSON list
      "[{\"gamma\": }]",       // missing value
      "[{\"delta\": 1}]",      // unknown JSON key
      "[{\"gamma\": 0.1}] x",  // trailing bytes
  };
  for (const char* spec : bad) {
    auto points = ParseSweepSpec(spec, Base());
    EXPECT_FALSE(points.ok()) << "spec accepted: '" << spec << "'";
  }
}

core::SweepReport TinyReport() {
  core::SweepReport report;
  report.runs.resize(2);
  report.runs[0].options = Base();
  report.runs[0].executed = true;
  report.runs[0].used_shared_model = true;
  report.runs[0].clusters.push_back(core::RegCluster{{1, 2, 3}, {0, 4}, {5}});
  report.runs[0].stats.nodes_expanded = 42;
  report.runs[0].stats.clusters_emitted = 1;
  report.runs[1].options = Base();
  report.runs[1].status = util::Status::InvalidArgument("bad gamma");
  report.runs_executed = 1;
  report.index_builds = 1;
  report.nodes_total = 42;
  report.clusters_total = 1;
  return report;
}

TEST(WriteSweepCsvTest, ColumnContractAndRowStates) {
  std::ostringstream out;
  ASSERT_TRUE(WriteSweepCsv(TinyReport(), out).ok());
  const std::string csv = out.str();
  EXPECT_EQ(csv.find("run,gamma,gamma_policy,epsilon,min_genes,"
                     "min_conditions,executed,shared_model,status,"
                     "stop_reason,clusters,nodes_expanded,extensions_tested,"
                     "mine_seconds,wall_seconds\n"),
            0u);
  EXPECT_NE(csv.find("\n0,0.3,stddev,0.7,7,4,1,1,complete,none,1,42,"),
            std::string::npos);
  EXPECT_NE(csv.find("\n1,0.3,stddev,0.7,7,4,0,0,error,none,0,0,"),
            std::string::npos);
}

TEST(WriteSweepJsonTest, CarriesSchemaKeysAndClusters) {
  std::ostringstream out;
  ASSERT_TRUE(WriteSweepJson(TinyReport(), out).ok());
  const std::string json = out.str();
  for (const char* key :
       {"\"sweep\"", "\"runs_total\": 2", "\"runs_executed\": 1",
        "\"first_unfinished\": -1", "\"index_builds\": 1",
        "\"chain\": [1,2,3]", "\"p_genes\": [0,4]", "\"n_genes\": [5]",
        "\"error\": ", "\"executed\": false"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(RegisterSweepMetricsTest, StableNamesWithValues) {
  obs::MetricsRegistry registry;
  ASSERT_TRUE(RegisterSweepMetrics(TinyReport(), &registry).ok());
  ASSERT_NE(registry.FindCounter("regcluster_sweep_runs_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("regcluster_sweep_runs_total")->value(), 2);
  EXPECT_EQ(registry.FindCounter("regcluster_sweep_runs_executed")->value(),
            1);
  EXPECT_EQ(registry.FindCounter("regcluster_sweep_nodes_total")->value(),
            42);
  EXPECT_EQ(registry.FindCounter("regcluster_sweep_truncated")->value(), 0);
  ASSERT_NE(registry.FindGauge("regcluster_sweep_wall_seconds"), nullptr);
  // Double registration is a conflict, not a silent overwrite.
  EXPECT_FALSE(RegisterSweepMetrics(TinyReport(), &registry).ok());
}

}  // namespace
}  // namespace io
}  // namespace regcluster
