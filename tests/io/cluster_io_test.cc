#include "io/cluster_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "testing/paper_data.h"
#include "util/string_util.h"

namespace regcluster {
namespace io {
namespace {

std::vector<core::RegCluster> SampleClusters() {
  core::RegCluster a;
  a.chain = {6, 8, 4, 0, 2};
  a.p_genes = {0, 2};
  a.n_genes = {1};
  core::RegCluster b;
  b.chain = {1, 9};
  b.p_genes = {0, 1};
  return {a, b};
}

TEST(ClusterIoTest, MachineRoundTripThroughStream) {
  const auto clusters = SampleClusters();
  std::ostringstream out;
  ASSERT_TRUE(WriteClusters(clusters, out).ok());
  std::istringstream in(out.str());
  auto back = ReadClusters(in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    EXPECT_EQ((*back)[i], clusters[i]);
  }
}

TEST(ClusterIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/regcluster_clusters.txt";
  ASSERT_TRUE(SaveClusters(SampleClusters(), path).ok());
  auto back = LoadClusters(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].chain, (std::vector<int>{6, 8, 4, 0, 2}));
  std::remove(path.c_str());
}

TEST(ClusterIoTest, EmptySetRoundTrips) {
  std::ostringstream out;
  ASSERT_TRUE(WriteClusters({}, out).ok());
  std::istringstream in(out.str());
  auto back = ReadClusters(in);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(ClusterIoTest, EmptyMemberListsPreserved) {
  core::RegCluster c;
  c.chain = {0, 1};
  c.p_genes = {7};
  // no n-members
  std::ostringstream out;
  ASSERT_TRUE(WriteClusters({c}, out).ok());
  std::istringstream in(out.str());
  auto back = ReadClusters(in);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_TRUE((*back)[0].n_genes.empty());
}

TEST(ClusterIoTest, ParserSkipsCommentsAndBlanks) {
  std::istringstream in(
      "# archive\n\ncluster 0\nchain 1 2\np 0\nn\n\n# end\n");
  auto back = ReadClusters(in);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
}

TEST(ClusterIoTest, ParserRejectsTagBeforeCluster) {
  std::istringstream in("chain 1 2\n");
  EXPECT_FALSE(ReadClusters(in).ok());
}

TEST(ClusterIoTest, ParserRejectsUnknownTag) {
  std::istringstream in("cluster 0\nbogus 1\n");
  EXPECT_FALSE(ReadClusters(in).ok());
}

TEST(ClusterIoTest, ParserRejectsNonInteger) {
  std::istringstream in("cluster 0\nchain 1 x\n");
  EXPECT_FALSE(ReadClusters(in).ok());
}

TEST(ClusterIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadClusters("/no/such/file.txt").ok());
}

TEST(ClusterIoTest, ReportContainsNamesAndProfiles) {
  const auto data = regcluster::testing::RunningDataset();
  std::ostringstream out;
  ASSERT_TRUE(WriteReport(SampleClusters(), &data, out).ok());
  const std::string text = out.str();
  EXPECT_NE(text.find("2 reg-cluster(s)"), std::string::npos);
  EXPECT_NE(text.find("chain: c6 c8 c4 c0 c2"), std::string::npos);
  EXPECT_NE(text.find("(+)"), std::string::npos);
  EXPECT_NE(text.find("(-)"), std::string::npos);
}

TEST(ClusterIoTest, ReportRejectsOutOfRangeIds) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster bad;
  bad.chain = {0, 1};
  bad.p_genes = {99};
  std::ostringstream out;
  EXPECT_FALSE(WriteReport({bad}, &data, out).ok());
  bad.p_genes = {0};
  bad.chain = {0, 42};
  EXPECT_FALSE(WriteReport({bad}, &data, out).ok());
}

TEST(ClusterIoTest, ProfileCsvShape) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster c;
  c.chain = {6, 8, 4, 0, 2};
  c.p_genes = {0, 2};
  c.n_genes = {1};
  std::ostringstream out;
  ASSERT_TRUE(WriteProfileCsv(c, data, out).ok());
  const auto lines = util::Split(out.str(), '\n');
  // header + 3 genes + trailing empty.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "gene,member,c6,c8,c4,c0,c2");
  EXPECT_EQ(lines[1], "g0,p,-15,-5,0,10,15");
  EXPECT_EQ(lines[3], "g1,n,45,35,30,20,15");
}

TEST(ClusterIoTest, ProfileCsvRejectsBadIds) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster c;
  c.chain = {0};
  c.p_genes = {42};
  std::ostringstream out;
  EXPECT_FALSE(WriteProfileCsv(c, data, out).ok());
}

TEST(ClusterIoTest, ReportWithoutDataUsesIndices) {
  std::ostringstream out;
  ASSERT_TRUE(WriteReport(SampleClusters(), nullptr, out).ok());
  EXPECT_NE(out.str().find("c6"), std::string::npos);
  EXPECT_NE(out.str().find("g0"), std::string::npos);
}

}  // namespace
}  // namespace io
}  // namespace regcluster
