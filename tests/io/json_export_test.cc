#include "io/json_export.h"

#include <sstream>

#include <gtest/gtest.h>

#include "testing/paper_data.h"

namespace regcluster {
namespace io {
namespace {

core::RegCluster Sample() {
  core::RegCluster c;
  c.chain = {6, 8, 4};
  c.p_genes = {0, 2};
  c.n_genes = {1};
  return c;
}

TEST(JsonEscapeTest, PassThrough) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(JsonEscapeTest, SpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonExportTest, StructureWithoutMatrix) {
  std::ostringstream out;
  ASSERT_TRUE(WriteClustersJson({Sample()}, nullptr, out).ok());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"num_clusters\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"chain\": [6,8,4]"), std::string::npos);
  EXPECT_NE(json.find("\"p_genes\": [0,2]"), std::string::npos);
  EXPECT_NE(json.find("\"n_genes\": [1]"), std::string::npos);
  EXPECT_EQ(json.find("chain_names"), std::string::npos);
}

TEST(JsonExportTest, NamesWithMatrix) {
  const auto data = regcluster::testing::RunningDataset();
  std::ostringstream out;
  ASSERT_TRUE(WriteClustersJson({Sample()}, &data, out).ok());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"chain_names\": [\"c6\",\"c8\",\"c4\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"p_gene_names\": [\"g0\",\"g2\"]"),
            std::string::npos);
}

TEST(JsonExportTest, EmptySet) {
  std::ostringstream out;
  ASSERT_TRUE(WriteClustersJson({}, nullptr, out).ok());
  EXPECT_NE(out.str().find("\"num_clusters\": 0"), std::string::npos);
}

TEST(JsonExportTest, RejectsOutOfRangeIds) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster bad = Sample();
  bad.p_genes = {99};
  std::ostringstream out;
  EXPECT_FALSE(WriteClustersJson({bad}, &data, out).ok());
}

TEST(JsonExportTest, BalancedBracesAndQuotes) {
  const auto data = regcluster::testing::RunningDataset();
  std::ostringstream out;
  ASSERT_TRUE(WriteClustersJson({Sample(), Sample()}, &data, out).ok());
  const std::string json = out.str();
  int depth = 0;
  int quotes = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (c == '"') ++quotes;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
}

}  // namespace
}  // namespace io
}  // namespace regcluster
