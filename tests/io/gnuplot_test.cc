#include "io/gnuplot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace regcluster {
namespace io {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<DataSeries> SampleSeries() {
  DataSeries a;
  a.name = "reg-cluster";
  a.points = {{1000, 0.1}, {2000, 0.2}, {3000, 0.33}};
  DataSeries b;
  b.name = "baseline";
  b.points = {{1000, 0.5}, {3000, 1.5}};  // missing x=2000
  return {a, b};
}

TEST(GnuplotTest, DatFileLayout) {
  const std::string path = ::testing::TempDir() + "/fig_test.dat";
  ASSERT_TRUE(WriteDatFile(SampleSeries(), path).ok());
  const std::string text = Slurp(path);
  const auto lines = util::Split(text, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# x\treg-cluster\tbaseline");
  EXPECT_EQ(lines[1], "1000\t0.1\t0.5");
  EXPECT_EQ(lines[2], "2000\t0.2\t?");  // missing value marker
  EXPECT_EQ(lines[3], "3000\t0.33\t1.5");
  std::remove(path.c_str());
}

TEST(GnuplotTest, ScriptReferencesDataAndSeries) {
  const std::string path = ::testing::TempDir() + "/fig_test.gp";
  PlotSpec spec;
  spec.title = "Figure 7(a)";
  spec.xlabel = "genes";
  spec.ylabel = "seconds";
  ASSERT_TRUE(
      WriteGnuplotScript(spec, "fig_test.dat", SampleSeries(), path).ok());
  const std::string text = Slurp(path);
  EXPECT_NE(text.find("set output 'fig_test.png'"), std::string::npos);
  EXPECT_NE(text.find("set title 'Figure 7(a)'"), std::string::npos);
  EXPECT_NE(text.find("'fig_test.dat' using 1:2"), std::string::npos);
  EXPECT_NE(text.find("using 1:3"), std::string::npos);
  EXPECT_NE(text.find("title 'baseline'"), std::string::npos);
  EXPECT_EQ(text.find("logscale"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GnuplotTest, LogscaleOption) {
  const std::string path = ::testing::TempDir() + "/fig_log.gp";
  PlotSpec spec;
  spec.logscale_y = true;
  ASSERT_TRUE(WriteGnuplotScript(spec, "d.dat", SampleSeries(), path).ok());
  EXPECT_NE(Slurp(path).find("set logscale y"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GnuplotTest, WriteFigurePair) {
  const std::string dir = ::testing::TempDir();
  PlotSpec spec;
  spec.title = "t";
  ASSERT_TRUE(WriteFigure(spec, SampleSeries(), dir, "figpair").ok());
  EXPECT_FALSE(Slurp(dir + "/figpair.dat").empty());
  const std::string gp = Slurp(dir + "/figpair.gp");
  EXPECT_NE(gp.find("'figpair.dat'"), std::string::npos);  // relocatable
  std::remove((dir + "/figpair.dat").c_str());
  std::remove((dir + "/figpair.gp").c_str());
}

TEST(GnuplotTest, BadPathFails) {
  EXPECT_FALSE(WriteDatFile(SampleSeries(), "/no/such/dir/x.dat").ok());
  EXPECT_FALSE(
      WriteGnuplotScript({}, "d.dat", SampleSeries(), "/no/such/dir/x.gp")
          .ok());
}

}  // namespace
}  // namespace io
}  // namespace regcluster
