// Export-stability contract for the miner metrics surface: dashboards key
// on metric names, so every published name must appear in both the JSON and
// Prometheus renderings, including the out-of-core cache telemetry added
// alongside the mmap-backed mining path.

#include <sstream>
#include <string>
#include <vector>

#include "gmock/gmock.h"
#include "gtest/gtest.h"
#include "core/miner.h"
#include "io/metrics_export.h"

namespace regcluster {
namespace io {
namespace {

using ::testing::HasSubstr;

core::MineOutcome FilledOutcome() {
  core::MineOutcome outcome;
  outcome.model_cache_hits = 11;
  outcome.model_cache_misses = 7;
  outcome.model_cache_evictions = 3;
  outcome.model_cache_resident_bytes = 4096;
  outcome.model_bytes = 8192;
  outcome.mapped_bytes = 1 << 20;
  return outcome;
}

const std::vector<std::string>& CacheMetricNames() {
  static const std::vector<std::string> names = {
      "regcluster_model_cache_hits_total",
      "regcluster_model_cache_misses_total",
      "regcluster_model_cache_evictions_total",
      "regcluster_model_cache_resident_bytes",
      "regcluster_model_bytes",
      "regcluster_mapped_bytes",
  };
  return names;
}

TEST(MetricsExportTest, JsonContainsOutOfCoreNames) {
  std::ostringstream out;
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, FilledOutcome(),
                                MetricsFormat::kJson, out)
                  .ok());
  for (const std::string& name : CacheMetricNames()) {
    EXPECT_THAT(out.str(), HasSubstr("\"" + name + "\"")) << name;
  }
}

TEST(MetricsExportTest, PrometheusContainsOutOfCoreNames) {
  std::ostringstream out;
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, FilledOutcome(),
                                MetricsFormat::kPrometheus, out)
                  .ok());
  const std::string text = out.str();
  for (const std::string& name : CacheMetricNames()) {
    EXPECT_THAT(text, HasSubstr("\n" + name + " ")) << name;
    EXPECT_THAT(text, HasSubstr("# HELP " + name)) << name;
  }
}

TEST(MetricsExportTest, ValuesSurviveBothRenderings) {
  std::ostringstream json;
  std::ostringstream prom;
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, FilledOutcome(),
                                MetricsFormat::kJson, json)
                  .ok());
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, FilledOutcome(),
                                MetricsFormat::kPrometheus, prom)
                  .ok());
  EXPECT_THAT(json.str(), HasSubstr("11"));  // hits
  EXPECT_THAT(prom.str(), HasSubstr("regcluster_model_cache_hits_total 11"));
  EXPECT_THAT(prom.str(),
              HasSubstr("regcluster_model_cache_misses_total 7"));
  EXPECT_THAT(prom.str(),
              HasSubstr("regcluster_model_cache_evictions_total 3"));
}

TEST(MetricsExportTest, EagerRunExportsZerosNotAbsence) {
  // The names must exist even on the resident path so dashboards never see
  // a series vanish when a run switches execution modes.
  std::ostringstream out;
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, core::MineOutcome{},
                                MetricsFormat::kPrometheus, out)
                  .ok());
  EXPECT_THAT(out.str(), HasSubstr("regcluster_model_cache_hits_total 0"));
  EXPECT_THAT(out.str(), HasSubstr("regcluster_mapped_bytes 0"));
}

TEST(MetricsExportTest, CheckpointMetricsExportZerosWhenDisabled) {
  // Durability off (null CheckpointStats) still publishes the names, as
  // zeros -- same contract as the cache telemetry above.
  std::ostringstream out;
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, core::MineOutcome{},
                                MetricsFormat::kPrometheus, out)
                  .ok());
  EXPECT_THAT(out.str(), HasSubstr("regcluster_checkpoint_writes_total 0"));
  EXPECT_THAT(out.str(), HasSubstr("regcluster_checkpoint_bytes_total 0"));
  EXPECT_THAT(out.str(), HasSubstr("regcluster_checkpoint_last_write_ns 0"));
  EXPECT_THAT(out.str(), HasSubstr("regcluster_checkpoint_resumes_total 0"));
}

TEST(MetricsExportTest, CheckpointMetricsCarryValues) {
  CheckpointStats ckpt;
  ckpt.writes = 5;
  ckpt.bytes = 12345;
  ckpt.last_write_ns = 678;
  ckpt.resumes = 2;
  std::ostringstream out;
  ASSERT_TRUE(WriteMinerMetrics(core::MinerStats{}, core::MineOutcome{},
                                MetricsFormat::kPrometheus, out, &ckpt)
                  .ok());
  EXPECT_THAT(out.str(), HasSubstr("regcluster_checkpoint_writes_total 5"));
  EXPECT_THAT(out.str(),
              HasSubstr("regcluster_checkpoint_bytes_total 12345"));
  EXPECT_THAT(out.str(), HasSubstr("regcluster_checkpoint_resumes_total 2"));
}

TEST(MetricsExportTest, RegisterCheckpointMetricsStandsAlone) {
  // The sweep export path registers only the checkpoint block; the four
  // names must come through a bare registry too.
  obs::MetricsRegistry registry;
  ASSERT_TRUE(RegisterCheckpointMetrics(nullptr, &registry).ok());
  std::ostringstream out;
  ASSERT_TRUE(registry.WriteJson(out).ok());
  EXPECT_THAT(out.str(), HasSubstr("\"regcluster_checkpoint_writes_total\""));
  EXPECT_THAT(out.str(),
              HasSubstr("\"regcluster_checkpoint_resumes_total\""));
}

TEST(MetricsExportTest, ParseFormatRoundTrips) {
  auto json = ParseMetricsFormat("json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(*json, MetricsFormat::kJson);
  auto prom = ParseMetricsFormat("prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_EQ(*prom, MetricsFormat::kPrometheus);
  EXPECT_FALSE(ParseMetricsFormat("xml").ok());
}

}  // namespace
}  // namespace io
}  // namespace regcluster
