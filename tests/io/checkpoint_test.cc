// io::checkpoint contract tests:
//
//  * the RGCXCKP1 wire format round-trips both snapshot kinds and rejects
//    every malformed shape with a distinct kCorruption (short preamble, bad
//    magic/version/endianness/kind, torn records, missing records, count
//    mismatch, trailing bytes) -- a corrupt snapshot must never decode into
//    a plausible-but-wrong resume point;
//  * LoadCheckpoint picks the newest valid double-buffer and falls back to
//    the other buffer when the newest is torn;
//  * validators reject a snapshot against the wrong options / matrix /
//    grid with a distinct kFailedPrecondition each;
//  * RunCheckpointedMine / RunCheckpointedSweep are byte-identical to the
//    plain miner / sweep engine, both fresh and when resumed from a real
//    mid-run snapshot (the crash harness kills real processes; here the
//    mid-run snapshot is the penultimate buffer of a completed run).

#include "io/checkpoint.h"

#include <string>
#include <string_view>
#include <vector>

#include "gmock/gmock.h"
#include "gtest/gtest.h"
#include "core/miner.h"
#include "core/sweep.h"
#include "matrix/expression_matrix.h"
#include "matrix/store.h"
#include "synth/generator.h"
#include "util/durable_file.h"
#include "util/status.h"

namespace regcluster {
namespace io {
namespace {

using ::testing::HasSubstr;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

matrix::ExpressionMatrix TestMatrix() {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 120;
  cfg.num_conditions = 12;
  cfg.num_clusters = 3;
  cfg.avg_cluster_genes_fraction = 0.08;
  cfg.seed = 808;
  auto ds = synth::GenerateSynthetic(cfg);
  EXPECT_TRUE(ds.ok());
  return ds->data;
}

core::MinerOptions TestOptions() {
  core::MinerOptions opts;
  opts.min_genes = 5;
  opts.min_conditions = 4;
  opts.gamma = 0.15;
  opts.epsilon = 0.1;
  return opts;
}

core::RegCluster MakeCluster(int seed) {
  core::RegCluster c;
  c.chain = {seed, seed + 3, seed + 1};
  c.p_genes = {seed * 2, seed * 2 + 4};
  c.n_genes = {seed * 2 + 1};
  return c;
}

Checkpoint MineFixture() {
  Checkpoint ckpt;
  ckpt.generation = 42;
  ckpt.kind = CheckpointKind::kMine;
  MineCheckpoint& m = ckpt.mine;
  m.semantic_options_hash = 0x1234567890ABCDEFull;
  m.matrix_hash = {0xDEAD, 0xBEEF};
  m.num_genes = 120;
  m.num_conditions = 12;
  m.flags = kCheckpointFlagRemoveDominated;
  m.next_root = 7;
  m.roots_completed = 6;
  m.nodes_visited = 99999;
  m.wall_seconds = 1.25;
  m.peak_scratch_bytes = 1 << 20;
  m.stats.nodes_expanded = 1111;
  m.stats.extensions_tested = 2222;
  m.stats.pruned_min_genes = 33;
  m.stats.pruned_p_majority = 44;
  m.stats.pruned_duplicate = 55;
  m.stats.pruned_coherence = 66;
  m.stats.genes_dropped_min_conds = 77;
  m.stats.clusters_emitted = 88;
  m.stats.index_builds = 1;
  m.stats.index_word_ops = 1010;
  m.stats.coherence_divide_calls = 2020;
  m.stats.coherence_scores = 3030;
  m.stats.dedup_probes = 4040;
  m.stats.rwave_build_seconds = 0.5;
  m.stats.index_build_seconds = 0.25;
  m.stats.mine_seconds = 2.5;
  m.clusters = {MakeCluster(1), MakeCluster(5)};
  return ckpt;
}

Checkpoint SweepFixture() {
  Checkpoint ckpt;
  ckpt.generation = 9;
  ckpt.kind = CheckpointKind::kSweep;
  SweepCheckpoint& s = ckpt.sweep;
  s.grid_hash = 0xFEEDFACE12345678ull;
  s.matrix_hash = {0xAB, 0xCD};
  s.num_genes = 120;
  s.num_conditions = 12;
  s.first_unfinished = 2;
  s.runs_total = 4;
  s.truncated = 0;
  s.stop_reason = 0;
  s.index_builds = 1;
  s.shared_model_bytes = 65536;
  s.wall_seconds = 3.5;
  SweepRunSnapshot ok_run;
  ok_run.index = 0;
  ok_run.executed = true;
  ok_run.used_shared_model = true;
  ok_run.stats.nodes_expanded = 500;
  ok_run.stats.clusters_emitted = 3;
  ok_run.outcome.status = core::MineStatus::kComplete;
  ok_run.outcome.nodes_visited = 512;
  ok_run.outcome.roots_completed = 12;
  ok_run.outcome.roots_total = 12;
  ok_run.clusters = {MakeCluster(2)};
  SweepRunSnapshot failed_run;
  failed_run.index = 1;
  failed_run.executed = false;
  failed_run.status = util::Status::InvalidArgument("gamma out of range");
  s.runs = {ok_run, failed_run};
  return ckpt;
}

// ---------------------------------------------------------------------------
// Wire-format round trips.

TEST(CheckpointWireTest, MineRoundTripPreservesEveryField) {
  const Checkpoint want = MineFixture();
  auto got = DecodeCheckpoint(EncodeCheckpoint(want));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->generation, want.generation);
  EXPECT_EQ(got->kind, CheckpointKind::kMine);
  const MineCheckpoint& m = got->mine;
  const MineCheckpoint& w = want.mine;
  EXPECT_EQ(m.semantic_options_hash, w.semantic_options_hash);
  EXPECT_EQ(m.matrix_hash, w.matrix_hash);
  EXPECT_EQ(m.num_genes, w.num_genes);
  EXPECT_EQ(m.num_conditions, w.num_conditions);
  EXPECT_EQ(m.flags, w.flags);
  EXPECT_EQ(m.next_root, w.next_root);
  EXPECT_EQ(m.roots_completed, w.roots_completed);
  EXPECT_EQ(m.nodes_visited, w.nodes_visited);
  EXPECT_EQ(m.wall_seconds, w.wall_seconds);
  EXPECT_EQ(m.peak_scratch_bytes, w.peak_scratch_bytes);
  EXPECT_EQ(m.stats.nodes_expanded, w.stats.nodes_expanded);
  EXPECT_EQ(m.stats.extensions_tested, w.stats.extensions_tested);
  EXPECT_EQ(m.stats.pruned_min_genes, w.stats.pruned_min_genes);
  EXPECT_EQ(m.stats.pruned_p_majority, w.stats.pruned_p_majority);
  EXPECT_EQ(m.stats.pruned_duplicate, w.stats.pruned_duplicate);
  EXPECT_EQ(m.stats.pruned_coherence, w.stats.pruned_coherence);
  EXPECT_EQ(m.stats.genes_dropped_min_conds,
            w.stats.genes_dropped_min_conds);
  EXPECT_EQ(m.stats.clusters_emitted, w.stats.clusters_emitted);
  EXPECT_EQ(m.stats.index_builds, w.stats.index_builds);
  EXPECT_EQ(m.stats.index_word_ops, w.stats.index_word_ops);
  EXPECT_EQ(m.stats.coherence_divide_calls, w.stats.coherence_divide_calls);
  EXPECT_EQ(m.stats.coherence_scores, w.stats.coherence_scores);
  EXPECT_EQ(m.stats.dedup_probes, w.stats.dedup_probes);
  EXPECT_EQ(m.stats.rwave_build_seconds, w.stats.rwave_build_seconds);
  EXPECT_EQ(m.stats.index_build_seconds, w.stats.index_build_seconds);
  EXPECT_EQ(m.stats.mine_seconds, w.stats.mine_seconds);
  ASSERT_EQ(m.clusters.size(), w.clusters.size());
  for (size_t i = 0; i < w.clusters.size(); ++i) {
    EXPECT_EQ(m.clusters[i], w.clusters[i]) << "cluster " << i;
  }
  EXPECT_FALSE(m.complete());
}

TEST(CheckpointWireTest, SweepRoundTripPreservesRunsAndStatuses) {
  const Checkpoint want = SweepFixture();
  auto got = DecodeCheckpoint(EncodeCheckpoint(want));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->generation, want.generation);
  EXPECT_EQ(got->kind, CheckpointKind::kSweep);
  const SweepCheckpoint& s = got->sweep;
  const SweepCheckpoint& w = want.sweep;
  EXPECT_EQ(s.grid_hash, w.grid_hash);
  EXPECT_EQ(s.matrix_hash, w.matrix_hash);
  EXPECT_EQ(s.first_unfinished, w.first_unfinished);
  EXPECT_EQ(s.runs_total, w.runs_total);
  EXPECT_EQ(s.index_builds, w.index_builds);
  EXPECT_EQ(s.shared_model_bytes, w.shared_model_bytes);
  EXPECT_EQ(s.wall_seconds, w.wall_seconds);
  ASSERT_EQ(s.runs.size(), 2u);
  EXPECT_EQ(s.runs[0].index, 0);
  EXPECT_TRUE(s.runs[0].executed);
  EXPECT_TRUE(s.runs[0].used_shared_model);
  EXPECT_EQ(s.runs[0].stats.nodes_expanded, 500);
  EXPECT_EQ(s.runs[0].outcome.nodes_visited, 512);
  EXPECT_EQ(s.runs[0].outcome.roots_completed, 12);
  ASSERT_EQ(s.runs[0].clusters.size(), 1u);
  EXPECT_EQ(s.runs[0].clusters[0], w.runs[0].clusters[0]);
  EXPECT_EQ(s.runs[1].index, 1);
  EXPECT_FALSE(s.runs[1].executed);
  EXPECT_EQ(s.runs[1].status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_THAT(s.runs[1].status.message(), HasSubstr("gamma out of range"));
}

TEST(CheckpointWireTest, BufferPathAlternatesByGenerationParity) {
  EXPECT_EQ(CheckpointBufferPath("ck", 2), "ck.a");
  EXPECT_EQ(CheckpointBufferPath("ck", 3), "ck.b");
  EXPECT_EQ(CheckpointBufferPath("ck", 4), "ck.a");
}

// ---------------------------------------------------------------------------
// Malformed snapshots: a distinct kCorruption per shape.

void ExpectCorruption(std::string_view bytes, const std::string& substr) {
  auto got = DecodeCheckpoint(bytes);
  ASSERT_FALSE(got.ok()) << "decoded despite: " << substr;
  EXPECT_EQ(got.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(got.status().message(), HasSubstr(substr));
}

TEST(CheckpointCorruptionTest, ShortPreamble) {
  ExpectCorruption("RGCX", "shorter than preamble");
  ExpectCorruption("", "shorter than preamble");
}

TEST(CheckpointCorruptionTest, BadMagic) {
  std::string bytes = EncodeCheckpoint(MineFixture());
  bytes[0] = 'X';
  ExpectCorruption(bytes, "bad checkpoint magic");
}

TEST(CheckpointCorruptionTest, UnsupportedVersion) {
  std::string bytes = EncodeCheckpoint(MineFixture());
  bytes[8] = 99;  // version u32 follows the 8-byte magic
  ExpectCorruption(bytes, "unsupported checkpoint version 99");
}

TEST(CheckpointCorruptionTest, EndiannessMismatch) {
  std::string bytes = EncodeCheckpoint(MineFixture());
  std::swap(bytes[12], bytes[15]);  // byte-swap the endian tag
  ExpectCorruption(bytes, "endianness mismatch");
}

TEST(CheckpointCorruptionTest, UnknownKind) {
  std::string bytes = EncodeCheckpoint(MineFixture());
  bytes[16] = 7;  // kind u32: neither kMine=1 nor kSweep=2
  ExpectCorruption(bytes, "unknown checkpoint kind 7");
}

TEST(CheckpointCorruptionTest, BitFlippedRecordPayload) {
  std::string bytes = EncodeCheckpoint(MineFixture());
  bytes[28 + 8] ^= 0x20;  // first payload byte of the first framed record
  ExpectCorruption(bytes, "record checksum mismatch");
}

TEST(CheckpointCorruptionTest, MissingTrailingRecords) {
  // Cut the stream at each interior record boundary: the decoder must
  // report a *missing* record, never return a partial checkpoint.
  const std::string bytes = EncodeCheckpoint(MineFixture());
  const std::string_view body = std::string_view(bytes).substr(28);
  util::RecordReader reader(body);
  std::vector<size_t> boundaries;
  while (!reader.AtEnd()) {
    ASSERT_TRUE(reader.Next().ok());
    boundaries.push_back(28 + reader.position());
  }
  ASSERT_GE(boundaries.size(), 2u);
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    ExpectCorruption(bytes.substr(0, boundaries[i]),
                     "missing checkpoint record");
  }
}

TEST(CheckpointCorruptionTest, TrailingBytesAfterFooter) {
  std::string bytes = EncodeCheckpoint(MineFixture());
  util::AppendRecord(&bytes, "one record too many");
  ExpectCorruption(bytes, "trailing bytes after checkpoint footer");
}

TEST(CheckpointCorruptionTest, EveryTruncationPointIsRejected) {
  // A torn write can stop at any byte; no prefix may decode.
  const std::string bytes = EncodeCheckpoint(SweepFixture());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto got = DecodeCheckpoint(bytes.substr(0, cut));
    ASSERT_FALSE(got.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(got.status().code(), util::StatusCode::kCorruption);
  }
}

TEST(CheckpointCorruptionTest, EveryFramedByteFlipIsRejected) {
  // Flip each byte past the preamble (the CRC-framed region): every flip
  // must be caught.  (The preamble's generation field is intentionally
  // outside the framing -- the loader cross-checks it against the buffer
  // name and min_generation instead.)
  const std::string bytes = EncodeCheckpoint(MineFixture());
  for (size_t i = 28; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x01;
    auto got = DecodeCheckpoint(flipped);
    EXPECT_FALSE(got.ok()) << "flip at byte " << i << " decoded";
  }
}

// ---------------------------------------------------------------------------
// LoadCheckpoint buffer selection.

TEST(LoadCheckpointTest, MissingFilesAreNotFound) {
  auto got = LoadCheckpoint(TempPath("ck_never_written"));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kNotFound);
}

TEST(LoadCheckpointTest, PicksNewestValidBuffer) {
  const std::string base = TempPath("ck_newest");
  Checkpoint older = MineFixture();
  older.generation = 4;
  Checkpoint newer = MineFixture();
  newer.generation = 5;
  newer.mine.next_root = 9;
  ASSERT_TRUE(WriteCheckpointFile(base, older).ok());  // -> base.a
  ASSERT_TRUE(WriteCheckpointFile(base, newer).ok());  // -> base.b
  auto got = LoadCheckpoint(base);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->generation, 5u);
  EXPECT_EQ(got->mine.next_root, 9);
}

TEST(LoadCheckpointTest, FallsBackWhenNewestBufferIsTorn) {
  const std::string base = TempPath("ck_torn");
  Checkpoint older = MineFixture();
  older.generation = 4;
  Checkpoint newer = MineFixture();
  newer.generation = 5;
  ASSERT_TRUE(WriteCheckpointFile(base, older).ok());
  ASSERT_TRUE(WriteCheckpointFile(base, newer).ok());
  // Tear the newer buffer the way a crash mid-write would.
  auto torn = util::ReadFileToString(base + ".b");
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(
      util::AtomicWriteFile(base + ".b", torn->substr(0, torn->size() / 2))
          .ok());
  auto got = LoadCheckpoint(base);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->generation, 4u);
}

TEST(LoadCheckpointTest, AllBuffersCorruptReportsFirstError) {
  const std::string base = TempPath("ck_allbad");
  ASSERT_TRUE(util::AtomicWriteFile(base + ".a", "garbage").ok());
  auto got = LoadCheckpoint(base);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kCorruption);
}

TEST(LoadCheckpointTest, BaseItselfMayBeALiteralSnapshot) {
  const std::string path = TempPath("ck_literal.snap");
  Checkpoint ckpt = MineFixture();
  ckpt.generation = 17;
  ASSERT_TRUE(util::AtomicWriteFile(path, EncodeCheckpoint(ckpt)).ok());
  auto got = LoadCheckpoint(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->generation, 17u);
}

TEST(LoadCheckpointTest, StaleGenerationIsFailedPrecondition) {
  const std::string base = TempPath("ck_stale");
  Checkpoint ckpt = MineFixture();
  ckpt.generation = 4;
  ASSERT_TRUE(WriteCheckpointFile(base, ckpt).ok());
  auto got = LoadCheckpoint(base, /*min_generation=*/10);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_THAT(got.status().message(),
              HasSubstr("stale checkpoint generation"));
}

// ---------------------------------------------------------------------------
// Content hashes and validators.

TEST(CheckpointHashTest, MatrixHashIdenticalAcrossResidentAndMappedPaths) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const util::Hash128 resident = HashMatrixContent(data);
  const std::string bin = TempPath("ckpt_hash_matrix.bin");
  ASSERT_TRUE(matrix::WriteBinaryMatrix(data, bin).ok());
  auto mapped = matrix::MappedMatrix::Open(bin);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(HashMatrixContent(*mapped), resident);
}

TEST(CheckpointHashTest, MatrixHashSensitiveToContent) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 30;
  cfg.num_conditions = 8;
  cfg.num_clusters = 2;
  cfg.avg_cluster_conditions = 4;
  cfg.avg_cluster_genes_fraction = 0.2;
  cfg.seed = 1;
  auto a = synth::GenerateSynthetic(cfg);
  cfg.seed = 2;
  auto b = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(HashMatrixContent(a->data), HashMatrixContent(b->data));
}

TEST(CheckpointHashTest, SweepGridHashIsOrderSensitive) {
  core::MinerOptions p1 = TestOptions();
  core::MinerOptions p2 = TestOptions();
  p2.gamma = 0.2;
  EXPECT_NE(HashSweepGrid({p1, p2}), HashSweepGrid({p2, p1}));
  EXPECT_NE(HashSweepGrid({p1, p2}), HashSweepGrid({p1}));
  EXPECT_EQ(HashSweepGrid({p1, p2}), HashSweepGrid({p1, p2}));
}

class CheckpointValidateTest : public ::testing::Test {
 protected:
  CheckpointValidateTest() : data_(TestMatrix()), options_(TestOptions()) {
    ckpt_.semantic_options_hash =
        core::RegClusterMiner::SemanticOptionsHash(options_);
    ckpt_.matrix_hash = HashMatrixContent(data_);
    ckpt_.num_genes = data_.num_genes();
    ckpt_.num_conditions = data_.num_conditions();
    ckpt_.flags = 0;
  }

  void ExpectRejected(const MineCheckpoint& ckpt, const std::string& substr) {
    util::Status st = ValidateMineCheckpoint(ckpt, data_, options_);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
    EXPECT_THAT(st.message(), HasSubstr(substr));
  }

  matrix::ExpressionMatrix data_;
  core::MinerOptions options_;  // remove_dominated defaults to false
  MineCheckpoint ckpt_;
};

TEST_F(CheckpointValidateTest, MatchingCheckpointPasses) {
  EXPECT_TRUE(ValidateMineCheckpoint(ckpt_, data_, options_).ok());
}

TEST_F(CheckpointValidateTest, DominanceFlagMismatch) {
  MineCheckpoint bad = ckpt_;
  bad.flags = kCheckpointFlagRemoveDominated;
  ExpectRejected(bad, "dominance-pass setting differs");
}

TEST_F(CheckpointValidateTest, OptionsHashMismatch) {
  MineCheckpoint bad = ckpt_;
  bad.semantic_options_hash ^= 1;
  ExpectRejected(bad, "different mining options");
}

TEST_F(CheckpointValidateTest, DimensionMismatch) {
  MineCheckpoint bad = ckpt_;
  bad.num_genes += 1;
  ExpectRejected(bad, "matrix dimensions differ");
}

TEST_F(CheckpointValidateTest, MatrixContentMismatch) {
  MineCheckpoint bad = ckpt_;
  bad.matrix_hash.lo ^= 1;
  ExpectRejected(bad, "different matrix");
}

TEST(ValidateSweepCheckpointTest, DistinctFailures) {
  const matrix::ExpressionMatrix data = TestMatrix();
  std::vector<core::MinerOptions> points = {TestOptions(), TestOptions()};
  points[1].gamma = 0.2;

  SweepCheckpoint good;
  good.grid_hash = HashSweepGrid(points);
  good.matrix_hash = HashMatrixContent(data);
  good.num_genes = data.num_genes();
  good.num_conditions = data.num_conditions();
  good.runs_total = 2;
  EXPECT_TRUE(ValidateSweepCheckpoint(good, data, points).ok());

  SweepCheckpoint wrong_count = good;
  wrong_count.runs_total = 3;
  util::Status st = ValidateSweepCheckpoint(wrong_count, data, points);
  ASSERT_FALSE(st.ok());
  EXPECT_THAT(st.message(), HasSubstr("grid size differs"));

  SweepCheckpoint wrong_grid = good;
  wrong_grid.grid_hash ^= 1;
  st = ValidateSweepCheckpoint(wrong_grid, data, points);
  ASSERT_FALSE(st.ok());
  EXPECT_THAT(st.message(), HasSubstr("different sweep grid"));

  SweepCheckpoint wrong_matrix = good;
  wrong_matrix.matrix_hash.hi ^= 1;
  st = ValidateSweepCheckpoint(wrong_matrix, data, points);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_THAT(st.message(), HasSubstr("different matrix"));
}

// ---------------------------------------------------------------------------
// CheckpointWriter.

TEST(CheckpointWriterTest, SynchronousWritesAlternateBuffersAndCount) {
  const std::string base = TempPath("ckw_sync");
  CheckpointWriter writer(base, /*next_generation=*/1, /*synchronous=*/true);
  writer.Submit(MineFixture());  // generation 1 -> .b
  writer.Submit(MineFixture());  // generation 2 -> .a
  EXPECT_TRUE(writer.last_error().ok());
  const CheckpointStats stats = writer.stats();
  EXPECT_EQ(stats.writes, 2);
  EXPECT_GT(stats.bytes, 0);
  auto b = LoadCheckpoint(base + ".b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->generation, 1u);
  auto a = LoadCheckpoint(base + ".a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->generation, 2u);
}

TEST(CheckpointWriterTest, EmptyPathDisablesWriting) {
  CheckpointWriter writer("", 1, /*synchronous=*/true);
  writer.Submit(MineFixture());
  EXPECT_TRUE(writer.WriteNow(MineFixture()).ok());
  EXPECT_EQ(writer.stats().writes, 0);
  EXPECT_TRUE(writer.last_error().ok());
}

TEST(CheckpointWriterTest, WriteFailureIsSticky) {
  const std::string base = TempPath("no_such_dir") + "/ckw";
  CheckpointWriter writer(base, 1, /*synchronous=*/true);
  writer.Submit(MineFixture());
  EXPECT_FALSE(writer.last_error().ok());
  EXPECT_EQ(writer.stats().writes, 0);
}

TEST(CheckpointWriterTest, NoteResumeCounts) {
  CheckpointWriter writer("", 1, true);
  writer.NoteResume();
  EXPECT_EQ(writer.stats().resumes, 1);
}

// ---------------------------------------------------------------------------
// Durable mine driver: byte identity with the plain miner.

void ExpectSameDeterministicStats(const core::MinerStats& a,
                                  const core::MinerStats& b) {
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.extensions_tested, b.extensions_tested);
  EXPECT_EQ(a.pruned_min_genes, b.pruned_min_genes);
  EXPECT_EQ(a.pruned_p_majority, b.pruned_p_majority);
  EXPECT_EQ(a.pruned_duplicate, b.pruned_duplicate);
  EXPECT_EQ(a.pruned_coherence, b.pruned_coherence);
  EXPECT_EQ(a.genes_dropped_min_conds, b.genes_dropped_min_conds);
  EXPECT_EQ(a.clusters_emitted, b.clusters_emitted);
  EXPECT_EQ(a.index_builds, b.index_builds);
}

void ExpectSameClusters(const std::vector<core::RegCluster>& a,
                        const std::vector<core::RegCluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "cluster " << i;
  }
}

struct PlainMineResult {
  std::vector<core::RegCluster> clusters;
  core::MinerStats stats;
};

PlainMineResult PlainMine(const matrix::MatrixStore& data,
                          const core::MinerOptions& options) {
  core::RegClusterMiner miner(data, options);
  auto clusters = miner.Mine();
  EXPECT_TRUE(clusters.ok()) << clusters.status().ToString();
  return {*std::move(clusters), miner.stats()};
}

TEST(RunCheckpointedMineTest, FreshRunMatchesPlainMineAndSnapshotsComplete) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const core::MinerOptions options = TestOptions();
  const PlainMineResult want = PlainMine(data, options);

  CheckpointConfig config;
  config.path = TempPath("ckm_fresh");
  config.synchronous = true;
  config.initial_chunk_nodes = 64;  // force several chunks
  config.every_ms = 1;
  auto got = RunCheckpointedMine(data, options, config, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameClusters(got->clusters, want.clusters);
  ExpectSameDeterministicStats(got->stats, want.stats);
  EXPECT_EQ(got->outcome.status, core::MineStatus::kComplete);
  EXPECT_TRUE(got->checkpoint_status.ok());
  EXPECT_GE(got->checkpoint.writes, 1);

  // The final snapshot on disk says complete and holds the raw clusters.
  auto final_ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(final_ckpt.ok()) << final_ckpt.status().ToString();
  EXPECT_TRUE(final_ckpt->mine.complete());
  ExpectSameClusters(final_ckpt->mine.clusters, want.clusters);
}

TEST(RunCheckpointedMineTest, ResumeFromMidRunSnapshotIsByteIdentical) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const core::MinerOptions options = TestOptions();
  const PlainMineResult want = PlainMine(data, options);

  // A synchronous tiny-chunk run leaves its penultimate (mid-run) snapshot
  // in the buffer the final write did not target -- a real crash-surviving
  // artifact, not a hand-crafted one.
  CheckpointConfig config;
  config.path = TempPath("ckm_midrun");
  config.synchronous = true;
  config.initial_chunk_nodes = 64;
  config.every_ms = 1;
  auto full = RunCheckpointedMine(data, options, config, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_GE(full->checkpoint.writes, 2)
      << "mine finished in one chunk; shrink the chunk size";

  auto final_ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(final_ckpt.ok());
  const std::string other =
      CheckpointBufferPath(config.path, final_ckpt->generation + 1);
  auto midrun = LoadCheckpoint(other);
  ASSERT_TRUE(midrun.ok()) << midrun.status().ToString();
  ASSERT_FALSE(midrun->mine.complete());
  ASSERT_GT(midrun->mine.next_root, 0);

  CheckpointConfig resume_config;  // no snapshot writing on the resume leg
  resume_config.next_generation = midrun->generation + 1;
  auto resumed =
      RunCheckpointedMine(data, options, resume_config, &midrun->mine);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameClusters(resumed->clusters, want.clusters);
  ExpectSameDeterministicStats(resumed->stats, want.stats);
  EXPECT_EQ(resumed->checkpoint.resumes, 1);
}

TEST(RunCheckpointedMineTest, CompleteSnapshotShortCircuits) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const core::MinerOptions options = TestOptions();

  CheckpointConfig config;
  config.path = TempPath("ckm_complete");
  config.synchronous = true;
  auto first = RunCheckpointedMine(data, options, config, nullptr);
  ASSERT_TRUE(first.ok());

  auto final_ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(final_ckpt.ok());
  ASSERT_TRUE(final_ckpt->mine.complete());

  CheckpointConfig replay_config;
  auto replayed =
      RunCheckpointedMine(data, options, replay_config, &final_ckpt->mine);
  ASSERT_TRUE(replayed.ok());
  ExpectSameClusters(replayed->clusters, first->clusters);
  ExpectSameDeterministicStats(replayed->stats, first->stats);
}

TEST(RunCheckpointedMineTest, RemoveDominatedAppliesOnceAtCompletion) {
  const matrix::ExpressionMatrix data = TestMatrix();
  core::MinerOptions options = TestOptions();
  options.remove_dominated = true;
  const PlainMineResult want = PlainMine(data, options);

  CheckpointConfig config;
  config.path = TempPath("ckm_domin");
  config.synchronous = true;
  config.initial_chunk_nodes = 64;
  config.every_ms = 1;
  auto got = RunCheckpointedMine(data, options, config, nullptr);
  ASSERT_TRUE(got.ok());
  ExpectSameClusters(got->clusters, want.clusters);

  // The snapshot stores the *raw* prefix (flagged), so a resumed run can
  // re-apply the global pass on the full output.
  auto final_ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(final_ckpt.ok());
  EXPECT_EQ(final_ckpt->mine.flags & kCheckpointFlagRemoveDominated,
            kCheckpointFlagRemoveDominated);
  EXPECT_GE(final_ckpt->mine.clusters.size(), got->clusters.size());
}

TEST(RunCheckpointedMineTest, RejectsSnapshotFromDifferentOptions) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const core::MinerOptions options = TestOptions();

  CheckpointConfig config;
  config.path = TempPath("ckm_reject");
  config.synchronous = true;
  auto first = RunCheckpointedMine(data, options, config, nullptr);
  ASSERT_TRUE(first.ok());
  auto ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(ckpt.ok());

  core::MinerOptions different = options;
  different.epsilon = 0.2;
  auto resumed =
      RunCheckpointedMine(data, different, CheckpointConfig{}, &ckpt->mine);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Durable sweep driver.

std::vector<core::MinerOptions> TestGrid() {
  core::MinerOptions base = TestOptions();
  std::vector<core::MinerOptions> points;
  for (double gamma : {0.12, 0.18}) {  // two gamma groups of two points
    for (double eps : {0.08, 0.12}) {
      core::MinerOptions p = base;
      p.gamma = gamma;
      p.epsilon = eps;
      points.push_back(p);
    }
  }
  return points;
}

void ExpectSameReports(const core::SweepReport& a,
                       const core::SweepReport& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.first_unfinished, b.first_unfinished);
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.index_builds, b.index_builds);
  EXPECT_EQ(a.nodes_total, b.nodes_total);
  EXPECT_EQ(a.clusters_total, b.clusters_total);
  for (size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].executed, b.runs[i].executed) << "run " << i;
    EXPECT_EQ(a.runs[i].used_shared_model, b.runs[i].used_shared_model)
        << "run " << i;
    ExpectSameDeterministicStats(a.runs[i].stats, b.runs[i].stats);
    ExpectSameClusters(a.runs[i].clusters, b.runs[i].clusters);
  }
}

TEST(RunCheckpointedSweepTest, FreshRunMatchesSweepEngine) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<core::MinerOptions> points = TestGrid();
  core::SweepOptions sopts;
  auto want = core::SweepEngine(data, sopts).Run(points);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  CheckpointConfig config;
  config.path = TempPath("cks_fresh");
  config.synchronous = true;
  auto got = RunCheckpointedSweep(data, points, sopts, config, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameReports(got->report, *want);
  EXPECT_TRUE(got->checkpoint_status.ok());
  // One group-boundary snapshot + the final one.
  EXPECT_EQ(got->checkpoint.writes, 2);
}

TEST(RunCheckpointedSweepTest, ResumeFromGroupBoundaryIsByteIdentical) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<core::MinerOptions> points = TestGrid();
  core::SweepOptions sopts;
  auto want = core::SweepEngine(data, sopts).Run(points);
  ASSERT_TRUE(want.ok());

  CheckpointConfig config;
  config.path = TempPath("cks_midrun");
  config.synchronous = true;
  auto full = RunCheckpointedSweep(data, points, sopts, config, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_GE(full->checkpoint.writes, 2);

  auto final_ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(final_ckpt.ok());
  const std::string other =
      CheckpointBufferPath(config.path, final_ckpt->generation + 1);
  auto midrun = LoadCheckpoint(other);
  ASSERT_TRUE(midrun.ok()) << midrun.status().ToString();
  ASSERT_FALSE(midrun->sweep.complete());
  ASSERT_EQ(midrun->sweep.first_unfinished, 2);  // after the first group

  CheckpointConfig resume_config;
  resume_config.next_generation = midrun->generation + 1;
  auto resumed =
      RunCheckpointedSweep(data, points, sopts, resume_config, &midrun->sweep);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameReports(resumed->report, *want);
  EXPECT_EQ(resumed->checkpoint.resumes, 1);
}

TEST(RunCheckpointedSweepTest, CompleteSnapshotShortCircuits) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<core::MinerOptions> points = TestGrid();
  core::SweepOptions sopts;

  CheckpointConfig config;
  config.path = TempPath("cks_complete");
  config.synchronous = true;
  auto first = RunCheckpointedSweep(data, points, sopts, config, nullptr);
  ASSERT_TRUE(first.ok());

  auto final_ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(final_ckpt.ok());
  ASSERT_TRUE(final_ckpt->sweep.complete());

  auto replayed = RunCheckpointedSweep(data, points, sopts,
                                       CheckpointConfig{}, &final_ckpt->sweep);
  ASSERT_TRUE(replayed.ok());
  ExpectSameReports(replayed->report, first->report);
}

TEST(RunCheckpointedSweepTest, RejectsSnapshotFromDifferentGrid) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<core::MinerOptions> points = TestGrid();
  core::SweepOptions sopts;

  CheckpointConfig config;
  config.path = TempPath("cks_reject");
  config.synchronous = true;
  auto first = RunCheckpointedSweep(data, points, sopts, config, nullptr);
  ASSERT_TRUE(first.ok());
  auto ckpt = LoadCheckpoint(config.path);
  ASSERT_TRUE(ckpt.ok());

  std::vector<core::MinerOptions> other_grid = points;
  other_grid[0].gamma = 0.33;
  auto resumed = RunCheckpointedSweep(data, other_grid, sopts,
                                      CheckpointConfig{}, &ckpt->sweep);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Volatile-field sanitization (--deterministic-output).

TEST(ZeroVolatileTest, MineFieldsZeroedDeterministicKept) {
  core::MinerStats stats;
  stats.nodes_expanded = 123;
  stats.rwave_build_seconds = 1.0;
  stats.index_build_seconds = 2.0;
  stats.mine_seconds = 3.0;
  core::MineOutcome outcome;
  outcome.nodes_visited = 456;
  outcome.wall_seconds = 4.0;
  outcome.peak_scratch_bytes = 789;
  outcome.roots_completed = 10;
  ZeroVolatileMineFields(&stats, &outcome);
  EXPECT_EQ(stats.nodes_expanded, 123);  // deterministic: preserved
  EXPECT_EQ(stats.rwave_build_seconds, 0.0);
  EXPECT_EQ(stats.index_build_seconds, 0.0);
  EXPECT_EQ(stats.mine_seconds, 0.0);
  EXPECT_EQ(outcome.nodes_visited, 0);
  EXPECT_EQ(outcome.wall_seconds, 0.0);
  EXPECT_EQ(outcome.peak_scratch_bytes, 0);
  EXPECT_EQ(outcome.roots_completed, 10);  // deterministic: preserved
}

TEST(ZeroVolatileTest, SweepFieldsZeroedPerRun) {
  core::SweepReport report;
  report.wall_seconds = 9.0;
  report.runs.resize(1);
  report.runs[0].executed = true;
  report.runs[0].stats.mine_seconds = 1.5;
  report.runs[0].outcome.wall_seconds = 2.5;
  report.runs[0].stats.clusters_emitted = 7;
  ZeroVolatileSweepFields(&report);
  EXPECT_EQ(report.wall_seconds, 0.0);
  EXPECT_EQ(report.runs[0].stats.mine_seconds, 0.0);
  EXPECT_EQ(report.runs[0].outcome.wall_seconds, 0.0);
  EXPECT_EQ(report.runs[0].stats.clusters_emitted, 7);
}

}  // namespace
}  // namespace io
}  // namespace regcluster
