// Property sweeps over the evaluation stack: metric axioms for the match
// scores, consensus-merge invariants, and significance-test monotonicity.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "eval/consensus.h"
#include "eval/match.h"
#include "eval/significance.h"
#include "synth/generator.h"
#include "util/prng.h"

namespace regcluster {
namespace eval {
namespace {

core::Bicluster RandomBicluster(util::Prng* prng, int genes, int conds) {
  core::Bicluster b;
  b.genes = prng->SampleWithoutReplacement(
      genes, 1 + static_cast<int>(prng->UniformInt(0, genes - 1)));
  b.conditions = prng->SampleWithoutReplacement(
      conds, 1 + static_cast<int>(prng->UniformInt(0, conds - 1)));
  return b;
}

class MatchMetricAxioms : public ::testing::TestWithParam<int> {};

TEST_P(MatchMetricAxioms, JaccardAxioms) {
  util::Prng prng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const core::Bicluster a = RandomBicluster(&prng, 20, 8);
    const core::Bicluster b = RandomBicluster(&prng, 20, 8);
    // Range.
    const double gj = GeneJaccard(a, b);
    const double cj = CellJaccard(a, b);
    ASSERT_GE(gj, 0.0);
    ASSERT_LE(gj, 1.0);
    ASSERT_GE(cj, 0.0);
    ASSERT_LE(cj, 1.0);
    // Symmetry.
    ASSERT_DOUBLE_EQ(gj, GeneJaccard(b, a));
    ASSERT_DOUBLE_EQ(cj, CellJaccard(b, a));
    // Identity.
    ASSERT_DOUBLE_EQ(GeneJaccard(a, a), 1.0);
    ASSERT_DOUBLE_EQ(CellJaccard(a, a), 1.0);
    // Cell <= min(gene overlap exists): if gene sets are disjoint, cells
    // share nothing.
    std::vector<int> inter;
    std::set_intersection(a.genes.begin(), a.genes.end(), b.genes.begin(),
                          b.genes.end(), std::back_inserter(inter));
    if (inter.empty()) {
      ASSERT_DOUBLE_EQ(cj, 0.0);
    }
  }
}

TEST_P(MatchMetricAxioms, MatchScoreMonotoneInFoundSet) {
  // Adding clusters to `found` cannot lower recovery of the truth.
  util::Prng prng(50 + GetParam());
  std::vector<core::Bicluster> truth, found;
  for (int i = 0; i < 3; ++i) truth.push_back(RandomBicluster(&prng, 20, 8));
  double prev = CellMatchScore(truth, found);
  for (int i = 0; i < 6; ++i) {
    found.push_back(RandomBicluster(&prng, 20, 8));
    const double now = CellMatchScore(truth, found);
    ASSERT_GE(now + 1e-12, prev);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchMetricAxioms, ::testing::Range(1, 7));

class ConsensusSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConsensusSweep, MergeNeverInvalidatesAndNeverGrowsCount) {
  const double threshold = GetParam();
  synth::SyntheticConfig cfg;
  cfg.num_genes = 120;
  cfg.num_conditions = 14;
  cfg.num_clusters = 3;
  cfg.avg_cluster_genes_fraction = 0.07;
  cfg.seed = 900 + static_cast<uint64_t>(threshold * 100);
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());

  core::MinerOptions o;
  o.min_genes = 5;
  o.min_conditions = 4;
  o.gamma = 0.1;
  o.epsilon = 0.05;
  auto raw = core::RegClusterMiner(ds->data, o).Mine();
  ASSERT_TRUE(raw.ok());

  ConsensusOptions copts;
  copts.min_overlap = threshold;
  copts.gamma_spec = {core::GammaPolicy::kRangeFraction, o.gamma};
  copts.epsilon = o.epsilon;
  const auto merged = MergeOverlapping(ds->data, *raw, copts);
  EXPECT_LE(merged.size(), raw->size());
  std::string why;
  for (const auto& c : merged) {
    ASSERT_TRUE(
        core::ValidateRegCluster(ds->data, c, o.gamma, o.epsilon, &why))
        << why;
  }
  // Gene coverage never shrinks: every gene clustered before is clustered
  // after (merging only unions gene sets).
  std::set<int> before, after;
  for (const auto& c : *raw) {
    for (int g : c.AllGenes()) before.insert(g);
  }
  for (const auto& c : merged) {
    for (int g : c.AllGenes()) after.insert(g);
  }
  for (int g : before) ASSERT_TRUE(after.count(g)) << g;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ConsensusSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 0.95));

TEST(SignificanceMonotonicity, MorePermutationsStabilizeTheNullRate) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 200;
  cfg.num_conditions = 16;
  cfg.num_clusters = 1;
  cfg.avg_cluster_genes_fraction = 0.06;
  cfg.seed = 61;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  const core::RegCluster cluster = ds->implants[0].ToRegCluster();

  SignificanceOptions a;
  a.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.1};
  a.epsilon = 0.05;
  a.permutations = 500;
  SignificanceOptions b = a;
  b.permutations = 5000;
  auto ra = PermutationSignificance(ds->data, cluster, a);
  auto rb = PermutationSignificance(ds->data, cluster, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Both runs agree the cluster is overwhelmingly significant.
  EXPECT_LT(ra->p_value, 1e-6);
  EXPECT_LT(rb->p_value, 1e-6);
}

TEST(SignificanceMonotonicity, LooserEpsilonRaisesNullRate) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 150;
  cfg.num_conditions = 12;
  cfg.num_clusters = 1;
  cfg.avg_cluster_genes_fraction = 0.08;
  cfg.avg_cluster_conditions = 4;
  cfg.seed = 62;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  const core::RegCluster cluster = ds->implants[0].ToRegCluster();

  SignificanceOptions tight;
  tight.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.0};
  tight.epsilon = 0.05;
  tight.permutations = 3000;
  SignificanceOptions loose = tight;
  loose.epsilon = 10.0;
  auto rt = PermutationSignificance(ds->data, cluster, tight);
  auto rl = PermutationSignificance(ds->data, cluster, loose);
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_LE(rt->null_full_rate, rl->null_full_rate);
  EXPECT_DOUBLE_EQ(rt->null_chain_rate, rl->null_chain_rate);
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
