#include "eval/go_enrichment.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace eval {
namespace {

GoAnnotationDb MakeSmallDb() {
  // Population of 100 genes; term 0 annotates genes 0..9, term 1 annotates
  // evens, term 2 annotates 0..49.
  GoAnnotationDb db(100);
  db.AddTerm({"GO:0000001", "dna replication", GoCategory::kBiologicalProcess});
  db.AddTerm({"GO:0000002", "kinase activity", GoCategory::kMolecularFunction});
  db.AddTerm({"GO:0000003", "cytoplasm", GoCategory::kCellularComponent});
  for (int g = 0; g < 10; ++g) EXPECT_TRUE(db.Annotate(g, 0).ok());
  for (int g = 0; g < 100; g += 2) EXPECT_TRUE(db.Annotate(g, 1).ok());
  for (int g = 0; g < 50; ++g) EXPECT_TRUE(db.Annotate(g, 2).ok());
  return db;
}

TEST(GoAnnotationDbTest, CountsAndLookups) {
  GoAnnotationDb db = MakeSmallDb();
  EXPECT_EQ(db.population_size(), 100);
  EXPECT_EQ(db.num_terms(), 3);
  EXPECT_EQ(db.TermPopulationCount(0), 10);
  EXPECT_EQ(db.TermPopulationCount(1), 50);
  EXPECT_EQ(db.GeneTerms(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(db.GeneTerms(99), (std::vector<int>{}));
  EXPECT_EQ(db.GeneTerms(98), (std::vector<int>{1}));
}

TEST(GoAnnotationDbTest, DuplicateAnnotationIgnored) {
  GoAnnotationDb db(10);
  db.AddTerm({"GO:1", "t", GoCategory::kBiologicalProcess});
  EXPECT_TRUE(db.Annotate(3, 0).ok());
  EXPECT_TRUE(db.Annotate(3, 0).ok());
  EXPECT_EQ(db.TermPopulationCount(0), 1);
}

TEST(GoAnnotationDbTest, RangeChecks) {
  GoAnnotationDb db(10);
  db.AddTerm({"GO:1", "t", GoCategory::kBiologicalProcess});
  EXPECT_FALSE(db.Annotate(-1, 0).ok());
  EXPECT_FALSE(db.Annotate(10, 0).ok());
  EXPECT_FALSE(db.Annotate(0, 5).ok());
}

TEST(EnrichmentTest, EnrichedTermDetected) {
  GoAnnotationDb db = MakeSmallDb();
  // Cluster = exactly the 10 genes of term 0: maximally enriched.
  std::vector<int> cluster;
  for (int g = 0; g < 10; ++g) cluster.push_back(g);
  auto results = FindEnrichedTerms(db, cluster);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ((*results)[0].term, 0);
  EXPECT_EQ((*results)[0].cluster_count, 10);
  EXPECT_LT((*results)[0].p_value, 1e-10);
  EXPECT_LE((*results)[0].p_value, (*results)[0].corrected_p_value);
}

TEST(EnrichmentTest, RandomSpreadTermNotReported) {
  GoAnnotationDb db = MakeSmallDb();
  // Genes 50..59 carry only term 1 at its background rate.
  std::vector<int> cluster;
  for (int g = 50; g < 60; ++g) cluster.push_back(g);
  EnrichmentOptions opts;
  opts.max_p_value = 0.01;
  auto results = FindEnrichedTerms(db, cluster, opts);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(EnrichmentTest, MinClusterCountFilters) {
  GoAnnotationDb db = MakeSmallDb();
  EnrichmentOptions opts;
  opts.max_p_value = 1.0;
  opts.min_cluster_count = 3;
  auto results = FindEnrichedTerms(db, {0, 60}, opts);  // term0 hit once
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) EXPECT_GE(r.cluster_count, 3);
}

TEST(EnrichmentTest, BonferroniInflatesPValue) {
  GoAnnotationDb db = MakeSmallDb();
  std::vector<int> cluster{0, 1, 2, 3, 4};
  EnrichmentOptions with;
  with.max_p_value = 1.0;
  EnrichmentOptions without = with;
  without.bonferroni = false;
  auto a = FindEnrichedTerms(db, cluster, with);
  auto b = FindEnrichedTerms(db, cluster, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->empty());
  ASSERT_FALSE(b->empty());
  EXPECT_GE((*a)[0].corrected_p_value, (*b)[0].corrected_p_value);
}

TEST(EnrichmentTest, ResultsSortedByPValue) {
  GoAnnotationDb db = MakeSmallDb();
  std::vector<int> cluster;
  for (int g = 0; g < 10; ++g) cluster.push_back(g);
  EnrichmentOptions opts;
  opts.max_p_value = 1.0;
  auto results = FindEnrichedTerms(db, cluster, opts);
  ASSERT_TRUE(results.ok());
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LE((*results)[i - 1].p_value, (*results)[i].p_value);
  }
}

TEST(EnrichmentTest, RejectsOutOfPopulationGene) {
  GoAnnotationDb db = MakeSmallDb();
  EXPECT_FALSE(FindEnrichedTerms(db, {0, 200}).ok());
}

TEST(TopTermTest, PicksMostSignificantPerCategory) {
  GoAnnotationDb db = MakeSmallDb();
  std::vector<int> cluster;
  for (int g = 0; g < 10; ++g) cluster.push_back(g);
  EnrichmentOptions opts;
  opts.max_p_value = 1.0;
  auto results = FindEnrichedTerms(db, cluster, opts);
  ASSERT_TRUE(results.ok());
  const auto proc =
      TopTermOfCategory(db, *results, GoCategory::kBiologicalProcess);
  EXPECT_EQ(proc.term, 0);
  const auto func =
      TopTermOfCategory(db, *results, GoCategory::kMolecularFunction);
  EXPECT_EQ(func.term, 1);
}

TEST(TopTermTest, MissingCategoryReturnsSentinel) {
  GoAnnotationDb db(10);
  const auto r = TopTermOfCategory(db, {}, GoCategory::kCellularComponent);
  EXPECT_EQ(r.term, -1);
}

TEST(GoCategoryTest, Names) {
  EXPECT_STREQ(GoCategoryName(GoCategory::kBiologicalProcess), "Process");
  EXPECT_STREQ(GoCategoryName(GoCategory::kMolecularFunction), "Function");
  EXPECT_STREQ(GoCategoryName(GoCategory::kCellularComponent),
               "Cellular Component");
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
