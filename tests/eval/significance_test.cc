#include "eval/significance.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "synth/generator.h"
#include "testing/paper_data.h"
#include "util/prng.h"

namespace regcluster {
namespace eval {
namespace {

TEST(SignificanceTest, ImplantedClusterIsSignificant) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 300;
  cfg.num_conditions = 20;
  cfg.num_clusters = 2;
  cfg.avg_cluster_genes_fraction = 0.05;
  cfg.seed = 63;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());

  SignificanceOptions opts;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.1};
  opts.epsilon = 0.05;
  auto result =
      PermutationSignificance(ds->data, ds->implants[0].ToRegCluster(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->p_value, 1e-6);
  EXPECT_LE(result->null_full_rate, result->null_chain_rate);
}

TEST(SignificanceTest, FakeClusterOnNoiseIsNotSignificant) {
  // A "cluster" assembled from random noise genes on a 2-condition chain:
  // half of all shuffled profiles follow a 2-chain at gamma=0, so the
  // binomial tail must be large.
  util::Prng prng(8);
  matrix::ExpressionMatrix data(100, 8);
  for (int g = 0; g < 100; ++g) {
    for (int c = 0; c < 8; ++c) data(g, c) = prng.Uniform(0, 10);
  }
  core::RegCluster c;
  c.chain = {0, 1};
  c.p_genes = {1, 2, 3};
  SignificanceOptions opts;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.0};
  opts.epsilon = 10.0;  // no coherence constraint to speak of
  auto result = PermutationSignificance(data, c, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->null_chain_rate, 0.3);
  EXPECT_GT(result->p_value, 0.5);
}

TEST(SignificanceTest, LongerChainsLowerNullRate) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster short_chain;
  short_chain.chain = {regcluster::testing::C(7), regcluster::testing::C(9)};
  short_chain.p_genes = {0, 2};
  core::RegCluster long_chain;
  long_chain.chain = regcluster::testing::ExpectedChain();
  long_chain.p_genes = {0, 2};
  long_chain.n_genes = {1};

  SignificanceOptions opts;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.15};
  opts.epsilon = 0.1;
  opts.permutations = 4000;
  auto s = PermutationSignificance(data, short_chain, opts);
  auto l = PermutationSignificance(data, long_chain, opts);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(l.ok());
  EXPECT_LE(l->null_chain_rate, s->null_chain_rate);
}

TEST(SignificanceTest, DeterministicForSeed) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster c;
  c.chain = regcluster::testing::ExpectedChain();
  c.p_genes = {0, 2};
  c.n_genes = {1};
  SignificanceOptions opts;
  opts.permutations = 500;
  auto a = PermutationSignificance(data, c, opts);
  auto b = PermutationSignificance(data, c, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->p_value, b->p_value);
  EXPECT_DOUBLE_EQ(a->null_full_rate, b->null_full_rate);
}

TEST(SignificanceTest, RejectsDegenerateInputs) {
  const auto data = regcluster::testing::RunningDataset();
  core::RegCluster c;
  c.chain = {0};  // too short
  c.p_genes = {0};
  EXPECT_FALSE(PermutationSignificance(data, c).ok());
  c.chain = {0, 1};
  c.p_genes = {};
  c.n_genes = {};
  EXPECT_FALSE(PermutationSignificance(data, c).ok());
  c.p_genes = {99};
  EXPECT_FALSE(PermutationSignificance(data, c).ok());
  c.p_genes = {0};
  c.chain = {0, 42};
  EXPECT_FALSE(PermutationSignificance(data, c).ok());
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
