#include "eval/annotation_gen.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace eval {
namespace {

std::vector<std::vector<int>> TwoModules() {
  std::vector<int> m0, m1;
  for (int g = 0; g < 20; ++g) m0.push_back(g);
  for (int g = 100; g < 125; ++g) m1.push_back(g);
  return {m0, m1};
}

TEST(AnnotationGenTest, TermCountStructure) {
  AnnotationGenConfig cfg;
  GoAnnotationDb db = GenerateAnnotations(1000, TwoModules(), cfg);
  // 3 categories x background + 3 per module.
  EXPECT_EQ(db.num_terms(), 3 * cfg.background_terms_per_category + 3 * 2);
  EXPECT_EQ(db.population_size(), 1000);
}

TEST(AnnotationGenTest, ModuleTermIndexPointsAtModuleTerm) {
  AnnotationGenConfig cfg;
  GoAnnotationDb db = GenerateAnnotations(1000, TwoModules(), cfg);
  const int t = ModuleTermIndex(cfg, 1, GoCategory::kMolecularFunction);
  EXPECT_EQ(db.term(t).name, "module1 function");
  EXPECT_EQ(db.term(t).category, GoCategory::kMolecularFunction);
}

TEST(AnnotationGenTest, ModuleMembersCarryTheirTerm) {
  AnnotationGenConfig cfg;
  const auto modules = TwoModules();
  GoAnnotationDb db = GenerateAnnotations(1000, modules, cfg);
  const int t = ModuleTermIndex(cfg, 0, GoCategory::kBiologicalProcess);
  int carriers = 0;
  for (int g : modules[0]) {
    for (int term : db.GeneTerms(g)) carriers += (term == t);
  }
  // coverage = 0.85 over 20 genes: expect clearly more than half.
  EXPECT_GE(carriers, 12);
}

TEST(AnnotationGenTest, ModuleTermIsRareOutsideModule) {
  AnnotationGenConfig cfg;
  const auto modules = TwoModules();
  GoAnnotationDb db = GenerateAnnotations(1000, modules, cfg);
  const int t = ModuleTermIndex(cfg, 0, GoCategory::kBiologicalProcess);
  // Population count ~ module hits + 0.5% of 1000 = ~22.
  EXPECT_LT(db.TermPopulationCount(t), 40);
}

TEST(AnnotationGenTest, ModuleGenesAreEnriched) {
  AnnotationGenConfig cfg;
  const auto modules = TwoModules();
  GoAnnotationDb db = GenerateAnnotations(2000, modules, cfg);
  auto results = FindEnrichedTerms(db, modules[0]);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // Top hit must be one of module 0's characteristic terms with a tiny p.
  const int top = (*results)[0].term;
  bool is_module0_term = false;
  for (int cat = 0; cat < 3; ++cat) {
    if (top == ModuleTermIndex(cfg, 0, static_cast<GoCategory>(cat))) {
      is_module0_term = true;
    }
  }
  EXPECT_TRUE(is_module0_term);
  EXPECT_LT((*results)[0].p_value, 1e-10);
}

TEST(AnnotationGenTest, RandomGeneSetNotEnrichedInModuleTerms) {
  AnnotationGenConfig cfg;
  const auto modules = TwoModules();
  GoAnnotationDb db = GenerateAnnotations(2000, modules, cfg);
  std::vector<int> random_set;
  for (int g = 500; g < 520; ++g) random_set.push_back(g);
  EnrichmentOptions opts;
  opts.max_p_value = 1e-6;
  auto results = FindEnrichedTerms(db, random_set, opts);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(AnnotationGenTest, BackgroundAnnotationRateRoughlyAsConfigured) {
  AnnotationGenConfig cfg;
  cfg.avg_annotations_per_gene = 3.0;
  GoAnnotationDb db = GenerateAnnotations(2000, {}, cfg);
  int64_t total = 0;
  for (int g = 0; g < 2000; ++g) {
    total += static_cast<int64_t>(db.GeneTerms(g).size());
  }
  const double avg = static_cast<double>(total) / 2000.0;
  EXPECT_NEAR(avg, 3.0, 0.5);
}

TEST(AnnotationGenTest, Deterministic) {
  AnnotationGenConfig cfg;
  GoAnnotationDb a = GenerateAnnotations(500, TwoModules(), cfg);
  GoAnnotationDb b = GenerateAnnotations(500, TwoModules(), cfg);
  for (int g = 0; g < 500; ++g) {
    ASSERT_EQ(a.GeneTerms(g), b.GeneTerms(g));
  }
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
