#include "eval/cluster_index.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace eval {
namespace {

std::vector<core::RegCluster> SampleClusters() {
  core::RegCluster a;  // genes {0,1,2}, conds {0,1,2}
  a.chain = {2, 0, 1};
  a.p_genes = {0, 1};
  a.n_genes = {2};
  core::RegCluster b;  // genes {1,3}, conds {1,3}
  b.chain = {3, 1};
  b.p_genes = {1, 3};
  core::RegCluster c;  // genes {4}, conds {4}
  c.chain = {4, 0};
  c.p_genes = {4};
  return {a, b, c};
}

TEST(ClusterIndexTest, GeneLookups) {
  const ClusterIndex index(SampleClusters(), 6, 6);
  EXPECT_EQ(index.num_clusters(), 3);
  EXPECT_EQ(index.ClustersWithGene(0), (std::vector<int>{0}));
  EXPECT_EQ(index.ClustersWithGene(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(index.ClustersWithGene(4), (std::vector<int>{2}));
  EXPECT_TRUE(index.ClustersWithGene(5).empty());
}

TEST(ClusterIndexTest, OutOfRangeIsEmpty) {
  const ClusterIndex index(SampleClusters(), 6, 6);
  EXPECT_TRUE(index.ClustersWithGene(-1).empty());
  EXPECT_TRUE(index.ClustersWithGene(100).empty());
  EXPECT_TRUE(index.ClustersWithCondition(-1).empty());
  EXPECT_TRUE(index.ClustersWithCondition(100).empty());
}

TEST(ClusterIndexTest, ConditionLookups) {
  const ClusterIndex index(SampleClusters(), 6, 6);
  EXPECT_EQ(index.ClustersWithCondition(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(index.ClustersWithCondition(4), (std::vector<int>{2}));
  EXPECT_EQ(index.ClustersWithCondition(0), (std::vector<int>{0, 2}));
}

TEST(ClusterIndexTest, CoClusterCount) {
  const ClusterIndex index(SampleClusters(), 6, 6);
  EXPECT_EQ(index.CoClusterCount(0, 1), 1);
  EXPECT_EQ(index.CoClusterCount(1, 3), 1);
  EXPECT_EQ(index.CoClusterCount(0, 3), 0);
  EXPECT_EQ(index.CoClusterCount(0, 4), 0);
}

TEST(ClusterIndexTest, CoClusteredGenes) {
  const ClusterIndex index(SampleClusters(), 6, 6);
  EXPECT_EQ(index.CoClusteredGenes(1), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(index.CoClusteredGenes(4), (std::vector<int>{}));
  EXPECT_EQ(index.CoClusteredGenes(5), (std::vector<int>{}));
}

TEST(ClusterIndexTest, MembershipDegree) {
  const ClusterIndex index(SampleClusters(), 6, 6);
  EXPECT_EQ(index.MembershipDegree(1), 2);  // the overlap property
  EXPECT_EQ(index.MembershipDegree(0), 1);
  EXPECT_EQ(index.MembershipDegree(5), 0);
}

TEST(ClusterIndexTest, EmptyClusterSet) {
  const ClusterIndex index({}, 4, 4);
  EXPECT_EQ(index.num_clusters(), 0);
  EXPECT_TRUE(index.ClustersWithGene(0).empty());
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
