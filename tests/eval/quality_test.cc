#include "eval/quality.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace eval {
namespace {

using regcluster::testing::RunningDataset;

core::RegCluster PaperCluster() {
  core::RegCluster c;
  c.chain = regcluster::testing::ExpectedChain();
  c.p_genes = regcluster::testing::ExpectedPMembers();
  c.n_genes = regcluster::testing::ExpectedNMembers();
  return c;
}

TEST(ScoreClusterTest, PerfectPatternScoresPerfectly) {
  const auto data = RunningDataset();
  const ClusterQuality q = ScoreCluster(data, PaperCluster());
  // The running example's cluster is a perfect shifting-and-scaling pattern.
  EXPECT_NEAR(q.coherence_spread, 0.0, 1e-12);
  EXPECT_NEAR(q.mean_fit_residual, 0.0, 1e-12);
  EXPECT_NEAR(q.mean_abs_correlation, 1.0, 1e-12);
}

TEST(ScoreClusterTest, RegulationMarginMatchesHandComputation) {
  const auto data = RunningDataset();
  core::GammaSpec spec{core::GammaPolicy::kRangeFraction, 0.15};
  const ClusterQuality q = ScoreCluster(data, PaperCluster(), spec);
  // Smallest step relative to gamma_i: g3 has steps {4,2,4,2}, gamma_3=1.8
  // -> margin 2/1.8; g1 steps {10,5,10,5} over 4.5 -> 5/4.5; g2 the same.
  EXPECT_NEAR(q.regulation_margin, 2.0 / 1.8, 1e-12);
}

TEST(ScoreClusterTest, IncoherentClusterHasLargeSpread) {
  const auto data = RunningDataset();
  core::RegCluster c;
  c.chain = {regcluster::testing::C(2), regcluster::testing::C(10),
             regcluster::testing::C(8), regcluster::testing::C(4)};
  c.p_genes = {0, 1, 2};  // Figure 4's outlier situation
  const ClusterQuality q = ScoreCluster(data, c);
  EXPECT_GT(q.coherence_spread, 4.0);  // 4.6 - 0.5263
  EXPECT_GT(q.mean_fit_residual, 0.0);
}

TEST(ScoreClusterTest, DegenerateInputs) {
  const auto data = RunningDataset();
  core::RegCluster tiny;
  tiny.chain = {0};
  tiny.p_genes = {0};
  const ClusterQuality q = ScoreCluster(data, tiny);
  EXPECT_DOUBLE_EQ(q.coherence_spread, 0.0);
  EXPECT_DOUBLE_EQ(q.regulation_margin, 0.0);
}

TEST(SummarizeTest, EmptySet) {
  const ClusterSetSummary s = Summarize({});
  EXPECT_EQ(s.num_clusters, 0);
}

TEST(SummarizeTest, CountsAndExtremes) {
  core::RegCluster a;
  a.chain = {0, 1, 2};
  a.p_genes = {0, 1};
  core::RegCluster b;
  b.chain = {0, 1, 2, 3, 4};
  b.p_genes = {0, 1, 2};
  b.n_genes = {3};
  const ClusterSetSummary s = Summarize({a, b});
  EXPECT_EQ(s.num_clusters, 2);
  EXPECT_EQ(s.min_genes, 2);
  EXPECT_EQ(s.max_genes, 4);
  EXPECT_DOUBLE_EQ(s.mean_genes, 3.0);
  EXPECT_EQ(s.min_conditions, 3);
  EXPECT_EQ(s.max_conditions, 5);
  EXPECT_DOUBLE_EQ(s.negative_fraction, 0.5);
  // a's cells {0,1}x{0,1,2} fully inside b's {0..3}x{0..4}: overlap 1.0.
  EXPECT_DOUBLE_EQ(s.max_overlap, 1.0);
  EXPECT_DOUBLE_EQ(s.min_overlap, 1.0);
}

TEST(RankClustersTest, BiggerThenTighterFirst) {
  const auto data = RunningDataset();
  core::RegCluster big = PaperCluster();                 // 3 x 5 perfect
  core::RegCluster small;                                // 2 x 5 perfect
  small.chain = regcluster::testing::ExpectedChain();
  small.p_genes = {0, 2};
  const std::vector<int> order = RankClusters(data, {small, big});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // big first
  EXPECT_EQ(order[1], 0);
}

TEST(RankClustersTest, DeterministicOnTies) {
  const auto data = RunningDataset();
  const core::RegCluster c = PaperCluster();
  const std::vector<int> order = RankClusters(data, {c, c, c});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
