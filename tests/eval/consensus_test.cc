#include "eval/consensus.h"

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "matrix/expression_matrix.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace eval {
namespace {

using regcluster::testing::RunningDataset;

/// Matrix with 4 genes all perfectly affine on the full condition set.
matrix::ExpressionMatrix AffineFour() {
  return *matrix::ExpressionMatrix::FromRows({
      {0, 10, 20, 30, 40},
      {5, 25, 45, 65, 85},    // 2x + 5
      {100, 80, 60, 40, 20},  // -2x + 100
      {1, 11, 21, 31, 41},    // x + 1
  });
}

TEST(TryMergeTest, FoldsCompatibleGenes) {
  const auto data = AffineFour();
  core::RegCluster a;
  a.chain = {0, 1, 2, 3, 4};
  a.p_genes = {0, 1};
  core::RegCluster b;
  b.chain = {0, 1, 2, 3};
  b.p_genes = {3};
  b.n_genes = {2};
  core::RegCluster merged;
  ASSERT_TRUE(TryMerge(data, a, b,
                       {core::GammaPolicy::kRangeFraction, 0.2}, 1e-9,
                       &merged));
  EXPECT_EQ(merged.chain, a.chain);
  EXPECT_EQ(merged.p_genes, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(merged.n_genes, (std::vector<int>{2}));
}

TEST(TryMergeTest, RefusesNonCompliantGene) {
  // g2 of the running dataset cannot follow the Figure 4 chain at gamma.15.
  const auto data = RunningDataset();
  core::RegCluster a;
  a.chain = regcluster::testing::ExpectedChain();
  a.p_genes = {0, 2};
  core::RegCluster b;
  b.chain = {regcluster::testing::C(2), regcluster::testing::C(10)};
  b.p_genes = {1};
  core::RegCluster merged;
  // g2 follows a's chain inverted, so the merge succeeds as an n-member.
  ASSERT_TRUE(TryMerge(data, a, b,
                       {core::GammaPolicy::kRangeFraction, 0.15}, 0.1,
                       &merged));
  EXPECT_EQ(merged.n_genes, (std::vector<int>{1}));
  // Refusal case: perturb the data so g2 no longer complies with the chain.
  matrix::ExpressionMatrix noisy = data;
  noisy(1, regcluster::testing::C(5)) = 60;  // breaks g2's chain compliance
  EXPECT_FALSE(TryMerge(noisy, a, b,
                        {core::GammaPolicy::kRangeFraction, 0.15}, 0.1,
                        &merged));
}

TEST(MergeOverlappingTest, MergesNestedOutput) {
  const auto data = AffineFour();
  core::RegCluster big;
  big.chain = {0, 1, 2, 3, 4};
  big.p_genes = {0, 1, 3};
  big.n_genes = {2};
  core::RegCluster prefix;
  prefix.chain = {0, 1, 2, 3};
  prefix.p_genes = {0, 1};
  ConsensusOptions opts;
  opts.min_overlap = 0.5;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.2};
  opts.epsilon = 1e-9;
  const auto merged = MergeOverlapping(data, {big, prefix}, opts);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].AllGenes(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(MergeOverlappingTest, KeepsDisjointClusters) {
  const auto data = AffineFour();
  core::RegCluster a;
  a.chain = {0, 1, 2};
  a.p_genes = {0, 1};
  core::RegCluster b;
  b.chain = {3, 4};
  b.p_genes = {2, 3};
  ConsensusOptions opts;
  opts.min_overlap = 0.5;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.0};
  opts.epsilon = 10.0;
  // b's genes/conditions overlap a's only partially (genes disjoint):
  // overlap 0 -> no merge.
  const auto merged = MergeOverlapping(data, {a, b}, opts);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeOverlappingTest, ReducesMinedYeastStyleOutput) {
  // End-to-end: overlapping raw miner output shrinks, and every survivor
  // still validates.
  const auto data = RunningDataset();
  core::MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  auto mined = core::RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(mined.ok());
  ASSERT_GT(mined->size(), 1u);

  ConsensusOptions opts;
  opts.min_overlap = 0.4;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, 0.15};
  opts.epsilon = 0.1;
  const auto merged = MergeOverlapping(data, *mined, opts);
  EXPECT_LT(merged.size(), mined->size());
  for (const auto& c : merged) {
    std::string why;
    EXPECT_TRUE(core::ValidateRegCluster(data, c, 0.15, 0.1, &why)) << why;
  }
}

TEST(MergeOverlappingTest, EmptyInput) {
  const auto data = AffineFour();
  EXPECT_TRUE(MergeOverlapping(data, {}, {}).empty());
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
