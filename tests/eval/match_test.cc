#include "eval/match.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace eval {
namespace {

using core::Bicluster;

TEST(JaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(Jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({}, {1}), 0.0);
}

TEST(GeneJaccardTest, IgnoresConditions) {
  Bicluster a{{1, 2}, {0, 1}};
  Bicluster b{{1, 2}, {7, 8, 9}};
  EXPECT_DOUBLE_EQ(GeneJaccard(a, b), 1.0);
}

TEST(CellJaccardTest, Basics) {
  Bicluster a{{0, 1}, {0, 1}};       // 4 cells
  Bicluster b{{1, 2}, {1, 2}};       // 4 cells, shares cell (1,1)
  EXPECT_DOUBLE_EQ(CellJaccard(a, b), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(CellJaccard(a, a), 1.0);
}

TEST(MatchScoreTest, PerfectRecovery) {
  std::vector<Bicluster> truth{{{0, 1, 2}, {0, 1}}, {{5, 6}, {2, 3}}};
  EXPECT_DOUBLE_EQ(GeneMatchScore(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(CellMatchScore(truth, truth), 1.0);
}

TEST(MatchScoreTest, EmptySidesAreVacuous) {
  std::vector<Bicluster> some{{{0, 1}, {0, 1}}};
  EXPECT_DOUBLE_EQ(GeneMatchScore({}, some), 1.0);
  EXPECT_DOUBLE_EQ(GeneMatchScore(some, {}), 0.0);
}

TEST(MatchScoreTest, PartialOverlapScoresBetween) {
  std::vector<Bicluster> found{{{0, 1, 2, 3}, {0, 1}}};
  std::vector<Bicluster> truth{{{2, 3, 4, 5}, {0, 1}}};
  const double s = GeneMatchScore(found, truth);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  EXPECT_DOUBLE_EQ(s, 2.0 / 6.0);
}

TEST(MatchScoreTest, BestMatchIsChosen) {
  std::vector<Bicluster> found{{{0, 1}, {0, 1}}};
  std::vector<Bicluster> truth{
      {{8, 9}, {0, 1}},     // no overlap
      {{0, 1, 2}, {0, 1}},  // good overlap
  };
  EXPECT_DOUBLE_EQ(GeneMatchScore(found, truth), 2.0 / 3.0);
}

TEST(ScoreAgainstTruthTest, AsymmetryDetectsOverAndUnderReporting) {
  // One truth cluster, found twice plus one junk cluster: relevance drops,
  // recovery stays perfect.
  std::vector<Bicluster> truth{{{0, 1, 2}, {0, 1, 2}}};
  std::vector<Bicluster> found{
      {{0, 1, 2}, {0, 1, 2}},
      {{0, 1, 2}, {0, 1, 2}},
      {{7, 8, 9}, {3, 4}},
  };
  const MatchReport r = ScoreAgainstTruth(found, truth);
  EXPECT_DOUBLE_EQ(r.gene_recovery, 1.0);
  EXPECT_LT(r.gene_relevance, 1.0);
  EXPECT_NEAR(r.gene_relevance, 2.0 / 3.0, 1e-12);
}

TEST(ScoreAgainstTruthTest, CellScoresUseConditionsToo) {
  std::vector<Bicluster> truth{{{0, 1}, {0, 1}}};
  std::vector<Bicluster> right_genes_wrong_conds{{{0, 1}, {5, 6}}};
  const MatchReport r = ScoreAgainstTruth(right_genes_wrong_conds, truth);
  EXPECT_DOUBLE_EQ(r.gene_relevance, 1.0);
  EXPECT_DOUBLE_EQ(r.cell_relevance, 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace regcluster
