// Differential test: the optimized miner vs the brute-force oracle.
//
// The oracle (tests/testing/oracle_miner.*) enumerates every ordered
// condition subset and checks Definition 3.3 directly on the raw values; it
// shares none of the search machinery under test.  Agreement over ~100
// PRNG-seeded tiny matrices crossed with a gamma/epsilon/MinG/MinC grid
// checks soundness and completeness of the whole optimized stack (RWave
// pointer certificates, bitmap index, prunings 1/2/3a/3b/4, incremental
// coherence windows, parallel phase A) at once.  Runs under ASan and TSan
// in CI; thread counts alternate so the parallel engine is exercised too.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "matrix/expression_matrix.h"
#include "synth/generator.h"
#include "testing/oracle_miner.h"
#include "util/prng.h"
#include "util/simd/dispatch.h"

namespace regcluster {
namespace core {
namespace {

struct GridPoint {
  double gamma;
  double epsilon;
  int min_genes;
  int min_conditions;
};

// Loose-to-strict coverage on every axis; every point runs on every matrix.
constexpr GridPoint kGrid[] = {
    {0.00, 0.50, 2, 3},
    {0.05, 0.20, 2, 3},
    {0.10, 1.00, 2, 2},
    {0.15, 0.05, 3, 3},
    {0.25, 0.30, 4, 4},
};

matrix::ExpressionMatrix RandomTinyMatrix(uint64_t seed, int* genes_out,
                                          int* conds_out) {
  util::Prng prng(seed);
  // <= 12 genes x <= 8 conditions; 8-condition matrices are rare because the
  // oracle's enumeration is exponential in conditions.
  const int genes = 6 + static_cast<int>(prng.UniformInt(0, 6));
  int conds = 4 + static_cast<int>(prng.UniformInt(0, 3));
  if (prng.UniformInt(0, 15) == 0) conds = 8;
  matrix::ExpressionMatrix data(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) {
      // Mix smooth values with a coarse integer lattice so exact ties (the
      // tie-broken score sort, zero deltas at the gamma boundary) occur.
      data(g, c) = prng.Bernoulli(0.25)
                       ? static_cast<double>(prng.UniformInt(0, 5))
                       : prng.Uniform(0.0, 10.0);
    }
  }
  *genes_out = genes;
  *conds_out = conds;
  return data;
}

TEST(OracleDifferential, MinerMatchesBruteForceOverPrngGrid) {
  constexpr int kMatrices = 100;
  int64_t oracle_clusters_total = 0;
  for (int m = 0; m < kMatrices; ++m) {
    int genes = 0, conds = 0;
    const matrix::ExpressionMatrix data =
        RandomTinyMatrix(/*seed=*/9000 + m, &genes, &conds);
    for (size_t p = 0; p < std::size(kGrid); ++p) {
      const GridPoint& point = kGrid[p];

      testing::OracleOptions oracle_opts;
      oracle_opts.gamma = {GammaPolicy::kRangeFraction, point.gamma};
      oracle_opts.epsilon = point.epsilon;
      oracle_opts.min_genes = point.min_genes;
      oracle_opts.min_conditions = point.min_conditions;
      const std::vector<RegCluster> expected =
          testing::OracleMine(data, oracle_opts);
      oracle_clusters_total += static_cast<int64_t>(expected.size());

      MinerOptions opts;
      opts.gamma = point.gamma;
      opts.epsilon = point.epsilon;
      opts.min_genes = point.min_genes;
      opts.min_conditions = point.min_conditions;
      // Alternate serial and parallel so the sanitizer jobs also cover the
      // phase-A task engine; the output contract is thread-count-invariant.
      opts.num_threads = 1 + (m + static_cast<int>(p)) % 3;
      RegClusterMiner miner(data, opts);
      auto mined = miner.Mine();
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      const std::vector<RegCluster> actual =
          testing::Canonicalize(*std::move(mined));

      const std::string label =
          (::testing::Message()
           << "matrix " << m << " (" << genes << "x" << conds << ") gamma="
           << point.gamma << " eps=" << point.epsilon << " ming="
           << point.min_genes << " minc=" << point.min_conditions)
              .GetString();
      ASSERT_EQ(actual.size(), expected.size()) << label;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i].chain, expected[i].chain) << label << " [" << i
                                                      << "]";
        ASSERT_EQ(actual[i].p_genes, expected[i].p_genes)
            << label << " [" << i << "]";
        ASSERT_EQ(actual[i].n_genes, expected[i].n_genes)
            << label << " [" << i << "]";
      }
    }
  }
  // The sweep must exercise real output, not vacuous empty-vs-empty matches.
  EXPECT_GT(oracle_clusters_total, 1000);
}

// Forced-scalar differential: the entire mined output must be identical
// under the scalar kernel set and the best level this machine supports, at
// serial and parallel thread counts.  This is the SIMD layer's whole-system
// gate -- the comparator std::sort vs the radix pipeline, the vector
// divide/gather/bitset kernels vs their scalar references -- on top of the
// per-kernel property tests (tests/util/simd_kernels_test.cc).  On a host
// that only supports scalar the comparison degenerates to scalar-vs-scalar
// (vacuously true); real cross-level coverage needs an AVX2 or NEON
// machine, which every CI runner provides.  The test pins levels
// explicitly, so it keeps comparing scalar against the best level even
// inside the forced-scalar CI job; the entry level is restored on exit so
// that job's pin still covers the rest of this binary.
TEST(OracleDifferential, ForcedScalarMatchesBestLevelWholeOutput) {
  const util::simd::Level entry_level = util::simd::CurrentLevel();
  synth::SyntheticConfig cfg;
  cfg.num_genes = 400;
  cfg.num_conditions = 24;
  cfg.num_clusters = 8;
  cfg.seed = 777;
  const auto ds = synth::GenerateSynthetic(cfg);

  MinerOptions opts;
  opts.min_genes = 8;
  opts.min_conditions = 5;
  opts.gamma = 0.1;
  opts.epsilon = 0.05;

  const util::simd::Level best = util::simd::DetectBestLevel();
  for (int threads : {1, 2, 4}) {
    opts.num_threads = threads;

    ASSERT_TRUE(util::simd::SetLevel(util::simd::Level::kScalar).ok());
    RegClusterMiner scalar_miner(ds->data, opts);
    auto scalar_mined = scalar_miner.Mine();
    ASSERT_TRUE(scalar_mined.ok()) << scalar_mined.status().ToString();
    EXPECT_EQ(scalar_miner.outcome().simd_level, util::simd::Level::kScalar);

    ASSERT_TRUE(util::simd::SetLevel(best).ok());
    RegClusterMiner best_miner(ds->data, opts);
    auto best_mined = best_miner.Mine();
    ASSERT_TRUE(best_mined.ok()) << best_mined.status().ToString();
    EXPECT_EQ(best_miner.outcome().simd_level, best);

    ASSERT_EQ(scalar_mined->size(), best_mined->size())
        << "threads=" << threads;
    for (size_t i = 0; i < scalar_mined->size(); ++i) {
      ASSERT_EQ((*scalar_mined)[i], (*best_mined)[i])
          << "threads=" << threads << " cluster " << i;
    }
  }
  ASSERT_TRUE(util::simd::SetLevel(entry_level).ok());
}

// The oracle itself must flag non-representative chains: every emitted
// cluster has |p| > |n|, or a tie with the chain lexicographically smaller
// than its reversal (so exactly one of the two directions is reported).
TEST(OracleDifferential, OracleOutputIsCanonical) {
  int genes = 0, conds = 0;
  const matrix::ExpressionMatrix data =
      RandomTinyMatrix(/*seed=*/424242, &genes, &conds);
  testing::OracleOptions opts;
  opts.gamma = {GammaPolicy::kRangeFraction, 0.05};
  opts.epsilon = 0.5;
  const std::vector<RegCluster> found = testing::OracleMine(data, opts);
  ASSERT_FALSE(found.empty());
  for (const RegCluster& c : found) {
    std::vector<int> reversed(c.chain.rbegin(), c.chain.rend());
    if (c.p_genes.size() == c.n_genes.size()) {
      EXPECT_LT(c.chain, reversed);
    } else {
      EXPECT_GT(c.p_genes.size(), c.n_genes.size());
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace regcluster
