// The work-stealing pooled miner must be indistinguishable from the serial
// run: bit-identical output *and* identical per-counter MinerStats at every
// thread count.  Matrices are randomized and tie-heavy (quantized values)
// so the sweep exercises the RWave tie ordering, coherence windows with
// equal scores, and duplicate-branch pruning under the 128-bit keys.

#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "matrix/expression_matrix.h"
#include "util/prng.h"

namespace regcluster {
namespace core {
namespace {

matrix::ExpressionMatrix TieHeavyMatrix(int genes, int conds, uint64_t seed) {
  util::Prng prng(seed);
  matrix::ExpressionMatrix data(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) {
      // Half the cells land on a coarse integer grid, so equal values (ties
      // in the RWave order) and equal coherence scores are frequent.
      data(g, c) = prng.Bernoulli(0.5)
                       ? static_cast<double>(prng.UniformInt(0, 7))
                       : prng.Uniform(0, 10);
    }
  }
  return data;
}

void ExpectSameStats(const MinerStats& a, const MinerStats& b) {
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.extensions_tested, b.extensions_tested);
  EXPECT_EQ(a.pruned_min_genes, b.pruned_min_genes);
  EXPECT_EQ(a.pruned_p_majority, b.pruned_p_majority);
  EXPECT_EQ(a.pruned_duplicate, b.pruned_duplicate);
  EXPECT_EQ(a.pruned_coherence, b.pruned_coherence);
  EXPECT_EQ(a.genes_dropped_min_conds, b.genes_dropped_min_conds);
  EXPECT_EQ(a.clusters_emitted, b.clusters_emitted);
}

void ExpectIdenticalRun(const matrix::ExpressionMatrix& data,
                        const MinerOptions& serial_opts, int threads) {
  MinerOptions threaded = serial_opts;
  threaded.num_threads = threads;
  RegClusterMiner serial_miner(data, serial_opts);
  RegClusterMiner pooled_miner(data, threaded);
  auto a = serial_miner.Mine();
  auto b = pooled_miner.Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "cluster " << i;
  }
  ExpectSameStats(serial_miner.stats(), pooled_miner.stats());
}

/// Param: thread count for the pooled run (0 = hardware concurrency).
class PooledMinerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PooledMinerSweep, MatchesSerialOnTieHeavyMatrices) {
  for (const uint64_t seed : {11u, 12u, 13u}) {
    const auto data = TieHeavyMatrix(60, 12, seed);
    MinerOptions o;
    o.min_genes = 3;
    o.min_conditions = 3;
    o.gamma = 0.05;
    o.epsilon = 0.25;
    ExpectIdenticalRun(data, o, GetParam());
  }
}

TEST_P(PooledMinerSweep, MatchesSerialWithLooseEpsilon) {
  // Loose epsilon -> wide windows -> deep chains and many duplicates: the
  // hardest case for per-task dedup contexts.
  const auto data = TieHeavyMatrix(30, 10, 99);
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.gamma = 0.0;
  o.epsilon = 1.5;
  ExpectIdenticalRun(data, o, GetParam());
}

TEST_P(PooledMinerSweep, MatchesSerialWithTargetedMining) {
  const auto data = TieHeavyMatrix(50, 10, 7);
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.gamma = 0.05;
  o.epsilon = 0.5;
  o.required_genes = {3, 17};
  ExpectIdenticalRun(data, o, GetParam());
}

TEST_P(PooledMinerSweep, MatchesSerialWithClosedChainsAndAllowedConditions) {
  const auto data = TieHeavyMatrix(40, 12, 21);
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.gamma = 0.05;
  o.epsilon = 0.5;
  o.closed_chains_only = true;
  o.allowed_conditions = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  ExpectIdenticalRun(data, o, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Threads, PooledMinerSweep,
                         ::testing::Values(1, 2, 4, 0));

}  // namespace
}  // namespace core
}  // namespace regcluster
