// Differential tests for the mining telemetry layer.
//
// The contract under test (DESIGN.md §observability):
//   1. collect_stats is observation only -- turning it off changes no
//      cluster byte, it just zeroes the detail counters.
//   2. Every MinerStats counter is deterministic: a pure function of
//      data + options, identical at any thread count and across repeated
//      runs, because tasks count into per-task shards that are merged in
//      canonical root order.
// Execution telemetry (MineOutcome: steals, queue depth, phase times) is
// explicitly exempt from (2) and is only sanity-checked here.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/miner.h"
#include "io/json_export.h"
#include "synth/generator.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

/// Serializes clusters to the canonical JSON document (no outcome/stats
/// blocks, which legitimately differ between runs).
std::string ClustersDigest(const std::vector<RegCluster>& clusters,
                           const matrix::ExpressionMatrix& data) {
  std::ostringstream os;
  EXPECT_TRUE(io::WriteClustersJson(clusters, &data, os).ok());
  return os.str();
}

/// The full deterministic counter set, as a comparable tuple-ish vector.
std::vector<int64_t> DeterministicCounters(const MinerStats& s) {
  return {s.nodes_expanded,      s.extensions_tested,
          s.pruned_min_genes,    s.pruned_p_majority,
          s.pruned_duplicate,    s.pruned_coherence,
          s.genes_dropped_min_conds, s.clusters_emitted,
          s.index_word_ops,      s.coherence_divide_calls,
          s.coherence_scores,    s.dedup_probes};
}

MinerOptions RunningExampleOptions() {
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 5;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  return o;
}

TEST(MinerStatsTest, StatsOnOffProducesByteIdenticalClusters) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions on = RunningExampleOptions();
  on.collect_stats = true;
  MinerOptions off = on;
  off.collect_stats = false;

  RegClusterMiner miner_on(data, on);
  RegClusterMiner miner_off(data, off);
  auto a = miner_on.Mine();
  auto b = miner_off.Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(ClustersDigest(*a, data), ClustersDigest(*b, data));

  // Structural counters are maintained either way (budget truncation
  // depends on them); only the detail counters go dark.
  EXPECT_EQ(miner_on.stats().nodes_expanded, miner_off.stats().nodes_expanded);
  EXPECT_EQ(miner_on.stats().clusters_emitted,
            miner_off.stats().clusters_emitted);
  EXPECT_EQ(miner_on.stats().extensions_tested,
            miner_off.stats().extensions_tested);

  EXPECT_GT(miner_on.stats().index_word_ops, 0);
  EXPECT_GT(miner_on.stats().coherence_divide_calls, 0);
  EXPECT_GT(miner_on.stats().coherence_scores, 0);
  EXPECT_GT(miner_on.stats().dedup_probes, 0);
  EXPECT_EQ(miner_off.stats().index_word_ops, 0);
  EXPECT_EQ(miner_off.stats().coherence_divide_calls, 0);
  EXPECT_EQ(miner_off.stats().coherence_scores, 0);
  EXPECT_EQ(miner_off.stats().dedup_probes, 0);
}

TEST(MinerStatsTest, DedupProbesCoverEveryEmissionAttempt) {
  const auto data = regcluster::testing::RunningDataset();
  RegClusterMiner miner(data, RunningExampleOptions());
  ASSERT_TRUE(miner.Mine().ok());
  const MinerStats& s = miner.stats();
  // Every emitted cluster and every duplicate-pruned branch first probed
  // the seen-key set.
  EXPECT_GE(s.dedup_probes, s.clusters_emitted + s.pruned_duplicate);
  // A divide pass computes at least one score.
  EXPECT_GE(s.coherence_scores, s.coherence_divide_calls);
}

class MinerStatsThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinerStatsThreadSweep, CountersThreadInvariantOnSynthetic) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 300;
  cfg.num_conditions = 18;
  cfg.num_clusters = 6;
  cfg.avg_cluster_genes_fraction = 0.04;
  cfg.seed = 808;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());

  MinerOptions serial;
  serial.min_genes = 5;
  serial.min_conditions = 5;
  serial.gamma = 0.1;
  serial.epsilon = 0.05;
  MinerOptions threaded = serial;
  threaded.num_threads = GetParam();

  RegClusterMiner sm(ds->data, serial);
  RegClusterMiner tm(ds->data, threaded);
  auto a = sm.Mine();
  auto b = tm.Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(ClustersDigest(*a, ds->data), ClustersDigest(*b, ds->data));
  EXPECT_EQ(DeterministicCounters(sm.stats()),
            DeterministicCounters(tm.stats()));
}

INSTANTIATE_TEST_SUITE_P(Threads, MinerStatsThreadSweep,
                         ::testing::Values(1, 2, 4));

TEST(MinerStatsTest, CountersStableAcrossRepeatedRuns) {
  const auto data = regcluster::testing::RunningDataset();
  const MinerOptions opts = RunningExampleOptions();
  std::vector<int64_t> reference;
  for (int run = 0; run < 3; ++run) {
    RegClusterMiner miner(data, opts);
    ASSERT_TRUE(miner.Mine().ok());
    const auto counters = DeterministicCounters(miner.stats());
    if (run == 0) {
      reference = counters;
    } else {
      EXPECT_EQ(reference, counters) << "run " << run;
    }
  }
}

TEST(MinerStatsTest, OutcomeTelemetryPopulated) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions opts = RunningExampleOptions();
  opts.num_threads = 2;
  RegClusterMiner miner(data, opts);
  ASSERT_TRUE(miner.Mine().ok());
  const MineOutcome& out = miner.outcome();
  // Scheduling-dependent values: only sane ranges, never exact values.
  EXPECT_GE(out.phase_a_seconds, 0.0);
  EXPECT_GE(out.phase_b_seconds, 0.0);
  EXPECT_GE(out.pool_steals, 0);
  EXPECT_GE(out.pool_queue_high_water, 1);  // at least one task was queued
  EXPECT_EQ(out.budget_polls, 0);           // no budget armed -> no guard
}

TEST(MinerStatsTest, BudgetPollsCountedWhenGuardArmed) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions opts = RunningExampleOptions();
  opts.max_nodes = int64_t{1} << 40;   // armed but never binding
  opts.budget_check_interval = 1;      // poll at every node
  RegClusterMiner miner(data, opts);
  ASSERT_TRUE(miner.Mine().ok());
  EXPECT_GT(miner.outcome().budget_polls, 0);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
