#include "core/bicluster.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace core {
namespace {

RegCluster MakeCluster(std::vector<int> chain, std::vector<int> p,
                       std::vector<int> n) {
  RegCluster c;
  c.chain = std::move(chain);
  c.p_genes = std::move(p);
  c.n_genes = std::move(n);
  return c;
}

TEST(RegClusterTest, Counts) {
  const RegCluster c = MakeCluster({6, 8, 4}, {0, 2}, {1});
  EXPECT_EQ(c.num_genes(), 3);
  EXPECT_EQ(c.num_conditions(), 3);
}

TEST(RegClusterTest, AllGenesMergesSorted) {
  const RegCluster c = MakeCluster({1, 2}, {0, 4, 9}, {2, 7});
  EXPECT_EQ(c.AllGenes(), (std::vector<int>{0, 2, 4, 7, 9}));
}

TEST(RegClusterTest, SortedConditions) {
  const RegCluster c = MakeCluster({6, 8, 4, 0, 2}, {0}, {});
  EXPECT_EQ(c.SortedConditions(), (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(RegClusterTest, KeyDistinguishesChainOrder) {
  const RegCluster a = MakeCluster({1, 2, 3}, {0}, {5});
  const RegCluster b = MakeCluster({3, 2, 1}, {0}, {5});
  EXPECT_NE(a.Key(), b.Key());
}

TEST(RegClusterTest, KeyIgnoresPnSplit) {
  // Key identifies (chain, gene set); the p/n split is determined by the
  // chain direction, so two nodes with the same chain+genes are duplicates.
  const RegCluster a = MakeCluster({1, 2, 3}, {0, 5}, {});
  const RegCluster b = MakeCluster({1, 2, 3}, {0}, {5});
  EXPECT_EQ(a.Key(), b.Key());
}

TEST(ToBiclusterTest, Converts) {
  const Bicluster b = ToBicluster(MakeCluster({6, 8, 4}, {0, 2}, {1}));
  EXPECT_EQ(b.genes, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(b.conditions, (std::vector<int>{4, 6, 8}));
  EXPECT_EQ(b.NumCells(), 9);
}

TEST(SharedCellsTest, Basic) {
  Bicluster a{{0, 1, 2}, {0, 1}};
  Bicluster b{{1, 2, 3}, {1, 2}};
  EXPECT_EQ(SharedCells(a, b), 2);  // genes {1,2} x conds {1}
}

TEST(SharedCellsTest, Disjoint) {
  Bicluster a{{0, 1}, {0, 1}};
  Bicluster b{{2, 3}, {0, 1}};
  EXPECT_EQ(SharedCells(a, b), 0);
}

TEST(OverlapFractionTest, RelativeToSmaller) {
  Bicluster big{{0, 1, 2, 3}, {0, 1, 2, 3}};   // 16 cells
  Bicluster small{{0, 1}, {0, 1}};             // 4 cells, fully inside
  EXPECT_DOUBLE_EQ(OverlapFraction(big, small), 1.0);
  EXPECT_DOUBLE_EQ(OverlapFraction(small, big), 1.0);
}

TEST(OverlapFractionTest, PartialAndEmpty) {
  Bicluster a{{0, 1}, {0, 1}};
  Bicluster b{{1, 2}, {1, 2}};
  EXPECT_DOUBLE_EQ(OverlapFraction(a, b), 0.25);
  Bicluster empty;
  EXPECT_DOUBLE_EQ(OverlapFraction(a, empty), 0.0);
}

TEST(IsSubclusterTest, Basic) {
  Bicluster inner{{1, 2}, {3}};
  Bicluster outer{{0, 1, 2}, {3, 4}};
  EXPECT_TRUE(IsSubcluster(inner, outer));
  EXPECT_FALSE(IsSubcluster(outer, inner));
  EXPECT_TRUE(IsSubcluster(inner, inner));
}

TEST(IsDominatedTest, PrefixChainAndSubsetGenes) {
  const RegCluster small = MakeCluster({1, 2, 3}, {0, 5}, {});
  const RegCluster big = MakeCluster({1, 2, 3, 4}, {0, 5, 7}, {});
  EXPECT_TRUE(IsDominated(small, big));
  EXPECT_FALSE(IsDominated(big, small));
}

TEST(IsDominatedTest, InfixChain) {
  const RegCluster small = MakeCluster({2, 3}, {0}, {});
  const RegCluster big = MakeCluster({1, 2, 3, 4}, {0, 1}, {});
  EXPECT_TRUE(IsDominated(small, big));
}

TEST(IsDominatedTest, ReversedChainCounts) {
  const RegCluster small = MakeCluster({3, 2}, {0}, {});
  const RegCluster big = MakeCluster({1, 2, 3, 4}, {0, 1}, {});
  EXPECT_TRUE(IsDominated(small, big));
}

TEST(IsDominatedTest, NonContiguousChainDoesNotDominate) {
  const RegCluster small = MakeCluster({1, 3}, {0}, {});
  const RegCluster big = MakeCluster({1, 2, 3}, {0, 1}, {});
  EXPECT_FALSE(IsDominated(small, big));
}

TEST(IsDominatedTest, GeneSupersetBlocksDomination) {
  const RegCluster small = MakeCluster({1, 2}, {0, 9}, {});
  const RegCluster big = MakeCluster({1, 2, 3}, {0, 1}, {});
  EXPECT_FALSE(IsDominated(small, big));  // gene 9 not in big
}

TEST(RemoveDominatedTest, DropsContainedAndDuplicates) {
  std::vector<RegCluster> clusters{
      MakeCluster({1, 2, 3, 4}, {0, 1, 2}, {}),  // keeper
      MakeCluster({2, 3}, {0, 1}, {}),           // dominated by keeper
      MakeCluster({1, 2, 3, 4}, {0, 1, 2}, {}),  // exact duplicate
      MakeCluster({5, 6}, {8, 9}, {}),           // independent
  };
  const auto out = RemoveDominated(clusters);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].chain, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(out[1].chain, (std::vector<int>{5, 6}));
}

TEST(RemoveDominatedTest, EmptyInput) {
  EXPECT_TRUE(RemoveDominated({}).empty());
}

}  // namespace
}  // namespace core
}  // namespace regcluster
