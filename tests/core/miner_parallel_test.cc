// Multi-threaded mining must produce byte-identical output to the serial
// search: roots are independent subtrees merged in root order.

#include <gtest/gtest.h>

#include "core/miner.h"
#include "synth/generator.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

class MinerThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinerThreadSweep, MatchesSerialOnRunningExample) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions serial;
  serial.min_genes = 3;
  serial.min_conditions = 5;
  serial.gamma = 0.15;
  serial.epsilon = 0.1;
  MinerOptions threaded = serial;
  threaded.num_threads = GetParam();

  auto a = RegClusterMiner(data, serial).Mine();
  auto b = RegClusterMiner(data, threaded).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST_P(MinerThreadSweep, MatchesSerialOnSynthetic) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 300;
  cfg.num_conditions = 18;
  cfg.num_clusters = 6;
  cfg.avg_cluster_genes_fraction = 0.04;
  cfg.seed = 808;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());

  MinerOptions serial;
  serial.min_genes = 5;
  serial.min_conditions = 5;
  serial.gamma = 0.1;
  serial.epsilon = 0.05;
  MinerOptions threaded = serial;
  threaded.num_threads = GetParam();

  RegClusterMiner sm(ds->data, serial);
  RegClusterMiner tm(ds->data, threaded);
  auto a = sm.Mine();
  auto b = tm.Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
  // Search effort identical (counters are merged, not re-ordered work).
  EXPECT_EQ(sm.stats().nodes_expanded, tm.stats().nodes_expanded);
  EXPECT_EQ(sm.stats().clusters_emitted, tm.stats().clusters_emitted);
}

INSTANTIATE_TEST_SUITE_P(Threads, MinerThreadSweep,
                         ::testing::Values(0, 2, 4, 8));

TEST(MinerParallelTest, NegativeThreadCountRejected) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions o;
  o.num_threads = -1;
  EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
}

}  // namespace
}  // namespace core
}  // namespace regcluster
