// Equivalence of the optimized miner with a naive reference implementation.
//
// The reference re-implements the algorithm's semantics directly: chain
// membership by full recomputation of per-gene value comparisons (no
// RWave pointer certificates, no incremental head positions, no pruning
// strategies, no duplicate branch cutting) and coherence windows recomputed
// from scratch at every node.  Outputs must match the optimized miner
// exactly -- this exercises completeness (nothing the model admits is lost
// to pruning or to the incremental state) and soundness at once.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "matrix/expression_matrix.h"
#include "util/prng.h"
#include "util/string_util.h"

namespace regcluster {
namespace core {
namespace {

struct RefParams {
  double gamma;
  double epsilon;
  int min_genes;
  int min_conditions;
  uint64_t seed;
};

/// +1 / -1 if gene g's profile is an up / down regulation chain along
/// `chain` (every adjacent step strictly beyond gamma_i), else 0.
int ChainDirection(const matrix::ExpressionMatrix& data, int g,
                   const std::vector<int>& chain, double gamma) {
  const auto [lo, hi] = data.RowRange(g);
  const double gabs = gamma * (hi - lo);
  bool up = true, down = true;
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    const double delta = data(g, chain[k + 1]) - data(g, chain[k]);
    if (!(delta > gabs)) up = false;
    if (!(-delta > gabs)) down = false;
  }
  return up ? 1 : (down ? -1 : 0);
}

bool LexSmallerThanReversed(const std::vector<int>& chain) {
  const size_t n = chain.size();
  for (size_t i = 0; i < n; ++i) {
    if (chain[i] != chain[n - 1 - i]) return chain[i] < chain[n - 1 - i];
  }
  return false;
}

std::string ClusterKey(const std::vector<int>& chain,
                       const std::vector<int>& genes, size_t p_count) {
  std::string key;
  for (int c : chain) key += util::StrFormat("%d,", c);
  key += '|';
  for (int g : genes) key += util::StrFormat("%d,", g);
  key += util::StrFormat("#%zu", p_count);
  return key;
}

/// Naive reference search.  Node = (chain, surviving member genes).
class ReferenceMiner {
 public:
  ReferenceMiner(const matrix::ExpressionMatrix& data, double gamma,
                 double epsilon, int min_g, int min_c)
      : data_(data),
        gamma_(gamma),
        epsilon_(epsilon),
        min_g_(min_g),
        min_c_(min_c) {}

  std::set<std::string> Mine() {
    std::vector<int> all;
    for (int g = 0; g < data_.num_genes(); ++g) all.push_back(g);
    for (int c = 0; c < data_.num_conditions(); ++c) {
      std::vector<int> chain{c};
      Extend(chain, all);
    }
    return out_;
  }

 private:
  void Extend(const std::vector<int>& chain,
              const std::vector<int>& members) {
    // Emit if valid and representative.
    if (static_cast<int>(chain.size()) >= min_c_ &&
        static_cast<int>(members.size()) >= min_g_) {
      size_t p = 0, n = 0;
      for (int g : members) {
        const int dir = ChainDirection(data_, g, chain, gamma_);
        p += dir > 0;
        n += dir < 0;
      }
      if (p + n == members.size() &&
          (p > n || (p == n && LexSmallerThanReversed(chain)))) {
        out_.insert(ClusterKey(chain, members, p));
      }
    }

    for (int cand = 0; cand < data_.num_conditions(); ++cand) {
      if (std::find(chain.begin(), chain.end(), cand) != chain.end()) {
        continue;
      }
      std::vector<int> extended = chain;
      extended.push_back(cand);
      // Recompute full-chain membership from scratch.
      std::vector<int> kept;
      for (int g : members) {
        if (ChainDirection(data_, g, extended, gamma_) != 0) {
          kept.push_back(g);
        }
      }
      if (kept.empty()) continue;

      if (chain.size() == 1) {
        Extend(extended, kept);
        continue;
      }

      // Coherence windows, recomputed from scratch: sort members by the new
      // adjacent score and take maximal windows of span <= epsilon with at
      // least MinG genes.
      struct Scored {
        double h;
        int gene;
      };
      std::vector<Scored> scored;
      for (int g : kept) {
        scored.push_back(Scored{
            CoherenceScore(data_.row_data(g), extended[0], extended[1],
                           extended[extended.size() - 2], cand),
            g});
      }
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.h != b.h) return a.h < b.h;
                  return a.gene < b.gene;
                });
      const size_t nsc = scored.size();
      size_t hi = 0, prev_hi = 0;
      for (size_t lo = 0; lo < nsc; ++lo) {
        if (hi < lo + 1) hi = lo + 1;
        while (hi < nsc && scored[hi].h - scored[lo].h <= epsilon_) ++hi;
        const bool maximal = lo == 0 || hi > prev_hi;
        prev_hi = hi;
        if (!maximal || static_cast<int>(hi - lo) < min_g_) continue;
        std::vector<int> window;
        for (size_t i = lo; i < hi; ++i) window.push_back(scored[i].gene);
        std::sort(window.begin(), window.end());
        Extend(extended, window);
      }
    }
  }

  const matrix::ExpressionMatrix& data_;
  const double gamma_;
  const double epsilon_;
  const int min_g_;
  const int min_c_;
  std::set<std::string> out_;
};

class ReferenceSweep : public ::testing::TestWithParam<RefParams> {};

TEST_P(ReferenceSweep, OptimizedMinerMatchesNaiveReference) {
  const RefParams& p = GetParam();
  util::Prng prng(p.seed);
  const int kGenes = 10, kConds = 6;
  matrix::ExpressionMatrix data(kGenes, kConds);
  for (int g = 0; g < kGenes; ++g) {
    for (int c = 0; c < kConds; ++c) {
      // Mix smooth values with ties to exercise the tie handling.
      data(g, c) = prng.Bernoulli(0.2)
                       ? static_cast<double>(prng.UniformInt(0, 6))
                       : prng.Uniform(0, 10);
    }
  }

  MinerOptions o;
  o.min_genes = p.min_genes;
  o.min_conditions = p.min_conditions;
  o.gamma = p.gamma;
  o.epsilon = p.epsilon;
  auto mined = RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(mined.ok());
  std::set<std::string> mined_keys;
  for (const RegCluster& c : *mined) {
    mined_keys.insert(ClusterKey(c.chain, c.AllGenes(), c.p_genes.size()));
  }
  ASSERT_EQ(mined_keys.size(), mined->size()) << "duplicate miner output";

  ReferenceMiner ref(data, p.gamma, p.epsilon, p.min_genes,
                     p.min_conditions);
  const std::set<std::string> ref_keys = ref.Mine();

  // Exact equality, reported asymmetrically for debuggability.
  for (const std::string& k : ref_keys) {
    EXPECT_TRUE(mined_keys.count(k)) << "missing from miner: " << k;
  }
  for (const std::string& k : mined_keys) {
    EXPECT_TRUE(ref_keys.count(k)) << "extra in miner: " << k;
  }
  // The sweep should be non-trivial for the loose settings.
  if (p.epsilon >= 0.5 && p.min_genes == 2 && p.min_conditions <= 3) {
    EXPECT_FALSE(ref_keys.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReferenceSweep,
    ::testing::Values(RefParams{0.0, 0.5, 2, 3, 21},
                      RefParams{0.05, 0.5, 2, 3, 22},
                      RefParams{0.1, 1.0, 2, 3, 23},
                      RefParams{0.1, 0.2, 3, 3, 24},
                      RefParams{0.2, 2.0, 2, 4, 25},
                      RefParams{0.0, 0.05, 2, 3, 26},
                      RefParams{0.15, 0.1, 3, 4, 27},
                      RefParams{0.3, 0.3, 2, 2, 28}));

}  // namespace
}  // namespace core
}  // namespace regcluster
