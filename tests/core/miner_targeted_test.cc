// Targeted mining: required_genes and allowed_conditions must behave as
// exact filters of the unrestricted output (the prunings they enable are
// lossless).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "synth/generator.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::RunningDataset;

MinerOptions BaseOptions() {
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  return o;
}

std::set<std::string> Keys(const std::vector<RegCluster>& clusters) {
  std::set<std::string> out;
  for (const auto& c : clusters) out.insert(c.Key());
  return out;
}

TEST(TargetedMiningTest, RequiredGeneEqualsFilteredOutput) {
  const auto data = RunningDataset();
  auto unrestricted = RegClusterMiner(data, BaseOptions()).Mine();
  ASSERT_TRUE(unrestricted.ok());

  for (int gene = 0; gene < 3; ++gene) {
    MinerOptions o = BaseOptions();
    o.required_genes = {gene};
    auto targeted = RegClusterMiner(data, o).Mine();
    ASSERT_TRUE(targeted.ok());

    std::set<std::string> expected;
    for (const auto& c : *unrestricted) {
      const auto genes = c.AllGenes();
      if (std::binary_search(genes.begin(), genes.end(), gene)) {
        expected.insert(c.Key());
      }
    }
    EXPECT_EQ(Keys(*targeted), expected) << "gene " << gene;
  }
}

TEST(TargetedMiningTest, MultipleRequiredGenes) {
  const auto data = RunningDataset();
  MinerOptions o = BaseOptions();
  o.min_genes = 3;
  o.min_conditions = 5;
  o.required_genes = {0, 1, 2};
  auto targeted = RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(targeted.ok());
  ASSERT_EQ(targeted->size(), 1u);
  EXPECT_EQ((*targeted)[0].chain, regcluster::testing::ExpectedChain());
}

TEST(TargetedMiningTest, RequiredGeneNotInAnyCluster) {
  const auto data = RunningDataset();
  MinerOptions o = BaseOptions();
  o.gamma = 0.4;        // at MinC = 5 nothing survives this threshold
  o.min_conditions = 5;
  o.required_genes = {0};
  auto targeted = RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(targeted.ok());
  EXPECT_TRUE(targeted->empty());
}

TEST(TargetedMiningTest, AllowedConditionsEqualsFilteredOutput) {
  const auto data = RunningDataset();
  auto unrestricted = RegClusterMiner(data, BaseOptions()).Mine();
  ASSERT_TRUE(unrestricted.ok());

  const std::vector<int> allowed = regcluster::testing::ExpectedChain();
  MinerOptions o = BaseOptions();
  o.allowed_conditions = allowed;
  auto targeted = RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(targeted.ok());

  std::set<int> allowed_set(allowed.begin(), allowed.end());
  std::set<std::string> expected;
  for (const auto& c : *unrestricted) {
    bool inside = true;
    for (int cond : c.chain) inside &= allowed_set.count(cond) > 0;
    if (inside) expected.insert(c.Key());
  }
  EXPECT_EQ(Keys(*targeted), expected);
  // The paper cluster survives the restriction.
  bool found = false;
  for (const auto& c : *targeted) {
    if (c.chain == regcluster::testing::ExpectedChain()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TargetedMiningTest, CombinedRestrictionsOnSynthetic) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 200;
  cfg.num_conditions = 16;
  cfg.num_clusters = 4;
  cfg.avg_cluster_genes_fraction = 0.05;
  cfg.seed = 404;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  const auto& implant = ds->implants[0];
  const int probe_gene = implant.p_genes[0];

  MinerOptions o;
  o.min_genes = 6;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.01;
  auto unrestricted = RegClusterMiner(ds->data, o).Mine();
  ASSERT_TRUE(unrestricted.ok());

  MinerOptions t = o;
  t.required_genes = {probe_gene};
  RegClusterMiner targeted_miner(ds->data, t);
  auto targeted = targeted_miner.Mine();
  ASSERT_TRUE(targeted.ok());
  EXPECT_FALSE(targeted->empty());
  // Equal to the filter of the unrestricted output...
  std::set<std::string> expected;
  for (const auto& c : *unrestricted) {
    const auto genes = c.AllGenes();
    if (std::binary_search(genes.begin(), genes.end(), probe_gene)) {
      expected.insert(c.Key());
    }
  }
  EXPECT_EQ(Keys(*targeted), expected);
  // ...with less search effort.
  RegClusterMiner full_miner(ds->data, o);
  ASSERT_TRUE(full_miner.Mine().ok());
  EXPECT_LT(targeted_miner.stats().nodes_expanded,
            full_miner.stats().nodes_expanded);
}

TEST(TargetedMiningTest, RejectsOutOfRangeTargets) {
  const auto data = RunningDataset();
  MinerOptions o = BaseOptions();
  o.required_genes = {99};
  EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  o = BaseOptions();
  o.allowed_conditions = {-1};
  EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
}

}  // namespace
}  // namespace core
}  // namespace regcluster
