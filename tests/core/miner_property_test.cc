// Property-based tests of the miner over randomized inputs and a parameter
// sweep: every emitted cluster must satisfy Definition 3.2 (checked by the
// independent first-principles oracle), meet the size thresholds, be
// representative, and be emitted exactly once.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "matrix/expression_matrix.h"
#include "util/prng.h"

namespace regcluster {
namespace core {
namespace {

struct SweepParams {
  double gamma;
  double epsilon;
  int min_genes;
  int min_conditions;
  uint64_t seed;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParams>& info) {
  const SweepParams& p = info.param;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "g%02d_e%03d_MinG%d_MinC%d_s%d",
                static_cast<int>(p.gamma * 100),
                static_cast<int>(p.epsilon * 100), p.min_genes,
                p.min_conditions, static_cast<int>(p.seed));
  return buf;
}

matrix::ExpressionMatrix RandomMatrix(uint64_t seed, int genes, int conds) {
  util::Prng prng(seed);
  matrix::ExpressionMatrix m(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  return m;
}

class MinerSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(MinerSweep, AllOutputsSatisfyDefinition32) {
  const SweepParams& p = GetParam();
  const auto data = RandomMatrix(p.seed, 40, 12);
  MinerOptions o;
  o.gamma = p.gamma;
  o.epsilon = p.epsilon;
  o.min_genes = p.min_genes;
  o.min_conditions = p.min_conditions;
  RegClusterMiner miner(data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();

  std::set<std::string> keys;
  for (const RegCluster& c : *clusters) {
    // Size thresholds.
    EXPECT_GE(c.num_genes(), p.min_genes);
    EXPECT_GE(c.num_conditions(), p.min_conditions);
    // Representative: p-members dominate or tie.
    EXPECT_GE(c.p_genes.size(), c.n_genes.size());
    // Exactly-once emission.
    EXPECT_TRUE(keys.insert(c.Key()).second) << "duplicate " << c.Key();
    // Definition 3.2 from first principles.
    std::string why;
    EXPECT_TRUE(ValidateRegCluster(data, c, p.gamma, p.epsilon, &why)) << why;
  }
}

TEST_P(MinerSweep, InvertedChainNeverAlsoEmitted) {
  const SweepParams& p = GetParam();
  const auto data = RandomMatrix(p.seed ^ 0xabcdef, 30, 10);
  MinerOptions o;
  o.gamma = p.gamma;
  o.epsilon = p.epsilon;
  o.min_genes = p.min_genes;
  o.min_conditions = p.min_conditions;
  RegClusterMiner miner(data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  // A cluster and its mirror (reversed chain, p/n swapped) describe the same
  // pattern; the representative rule must pick exactly one.
  std::set<std::string> keys;
  for (const RegCluster& c : *clusters) keys.insert(c.Key());
  for (const RegCluster& c : *clusters) {
    RegCluster mirror;
    mirror.chain.assign(c.chain.rbegin(), c.chain.rend());
    mirror.p_genes = c.n_genes;
    mirror.n_genes = c.p_genes;
    EXPECT_EQ(keys.count(mirror.Key()), 0u)
        << "both directions emitted for " << c.Key();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, MinerSweep,
    ::testing::Values(
        SweepParams{0.0, 0.0, 2, 2, 1}, SweepParams{0.0, 0.1, 2, 3, 2},
        SweepParams{0.05, 0.05, 2, 3, 3}, SweepParams{0.1, 0.1, 3, 3, 4},
        SweepParams{0.1, 0.5, 2, 4, 5}, SweepParams{0.15, 0.1, 3, 4, 6},
        SweepParams{0.2, 1.0, 2, 3, 7}, SweepParams{0.3, 0.2, 2, 2, 8},
        SweepParams{0.15, 0.0, 2, 3, 9}, SweepParams{0.25, 2.0, 4, 3, 10}),
    SweepName);

TEST(MinerPropertyTest, OutputInvariantUnderGeneShuffle) {
  // Mining a row-permuted matrix must find the same clusters modulo the
  // gene relabeling.
  const auto data = RandomMatrix(99, 25, 10);
  const int n = data.num_genes();
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  util::Prng prng(5);
  prng.Shuffle(&perm);
  matrix::ExpressionMatrix shuffled(n, data.num_conditions());
  for (int g = 0; g < n; ++g) {
    for (int c = 0; c < data.num_conditions(); ++c) {
      shuffled(perm[static_cast<size_t>(g)], c) = data(g, c);
    }
  }

  MinerOptions o;
  o.gamma = 0.1;
  o.epsilon = 0.2;
  o.min_genes = 2;
  o.min_conditions = 3;
  auto orig = RegClusterMiner(data, o).Mine();
  auto shuf = RegClusterMiner(shuffled, o).Mine();
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(shuf.ok());
  ASSERT_EQ(orig->size(), shuf->size());

  auto remap = [&](const RegCluster& c) {
    RegCluster out;
    out.chain = c.chain;
    for (int g : c.p_genes) out.p_genes.push_back(perm[static_cast<size_t>(g)]);
    for (int g : c.n_genes) out.n_genes.push_back(perm[static_cast<size_t>(g)]);
    std::sort(out.p_genes.begin(), out.p_genes.end());
    std::sort(out.n_genes.begin(), out.n_genes.end());
    return out;
  };
  std::set<std::string> shuf_keys;
  for (const RegCluster& c : *shuf) {
    RegCluster k = c;
    shuf_keys.insert(k.Key() + "#p" + std::to_string(k.p_genes.size()));
  }
  for (const RegCluster& c : *orig) {
    const RegCluster m = remap(c);
    EXPECT_EQ(shuf_keys.count(m.Key() + "#p" + std::to_string(m.p_genes.size())),
              1u);
  }
}

TEST(MinerPropertyTest, ScalingTheMatrixPreservesClusters) {
  // gamma is relative (Eq. 4) and coherence is a ratio, so scaling the whole
  // matrix by a positive constant must not change anything.
  const auto data = RandomMatrix(123, 30, 10);
  matrix::ExpressionMatrix scaled = data;
  for (int g = 0; g < data.num_genes(); ++g) {
    for (int c = 0; c < data.num_conditions(); ++c) {
      scaled(g, c) = data(g, c) * 3.5;
    }
  }
  MinerOptions o;
  o.gamma = 0.12;
  o.epsilon = 0.3;
  o.min_genes = 2;
  o.min_conditions = 3;
  auto a = RegClusterMiner(data, o).Mine();
  auto b = RegClusterMiner(scaled, o).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(MinerPropertyTest, ShiftingTheMatrixPreservesClusters) {
  const auto data = RandomMatrix(321, 30, 10);
  matrix::ExpressionMatrix shifted = data;
  for (int g = 0; g < data.num_genes(); ++g) {
    for (int c = 0; c < data.num_conditions(); ++c) {
      shifted(g, c) = data(g, c) - 42.0;
    }
  }
  MinerOptions o;
  o.gamma = 0.12;
  o.epsilon = 0.3;
  o.min_genes = 2;
  o.min_conditions = 3;
  auto a = RegClusterMiner(data, o).Mine();
  auto b = RegClusterMiner(shifted, o).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(MinerPropertyTest, MonotoneInEpsilon) {
  // A larger epsilon can only admit more (or equal) gene-chain combinations;
  // every cluster found at epsilon=0 must be covered at epsilon=0.5 by a
  // cluster with the same chain and a superset of genes.
  const auto data = RandomMatrix(55, 30, 9);
  MinerOptions tight;
  tight.gamma = 0.1;
  tight.epsilon = 0.0;
  tight.min_genes = 2;
  tight.min_conditions = 3;
  MinerOptions loose = tight;
  loose.epsilon = 0.5;
  auto a = RegClusterMiner(data, tight).Mine();
  auto b = RegClusterMiner(data, loose).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const RegCluster& ca : *a) {
    bool covered = false;
    const auto genes_a = ca.AllGenes();
    for (const RegCluster& cb : *b) {
      if (cb.chain != ca.chain &&
          !std::equal(cb.chain.rbegin(), cb.chain.rend(), ca.chain.begin(),
                      ca.chain.end())) {
        continue;
      }
      const auto genes_b = cb.AllGenes();
      if (std::includes(genes_b.begin(), genes_b.end(), genes_a.begin(),
                        genes_a.end())) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "cluster lost when relaxing epsilon: " << ca.Key();
  }
}

}  // namespace
}  // namespace core
}  // namespace regcluster
