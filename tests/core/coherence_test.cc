#include "core/coherence.h"

#include <gtest/gtest.h>

#include "testing/paper_data.h"
#include "util/prng.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::C;
using regcluster::testing::G;
using regcluster::testing::RunningDataset;

TEST(CoherenceScoreTest, PaperSection32Scores) {
  // Section 3.2: on the chain c7 c9 c5 c1 c3, all three genes share the
  // scores H(.,c7,c9,c7,c9)=1.0, H(.,c7,c9,c9,c5)=0.5, H(.,c7,c9,c5,c1)=1.0
  // and H(.,c7,c9,c1,c3)=0.5.
  const auto data = RunningDataset();
  for (int g = 0; g < 3; ++g) {
    const double* row = data.row_data(g);
    EXPECT_NEAR(CoherenceScore(row, C(7), C(9), C(7), C(9)), 1.0, 1e-12) << g;
    EXPECT_NEAR(CoherenceScore(row, C(7), C(9), C(9), C(5)), 0.5, 1e-12) << g;
    EXPECT_NEAR(CoherenceScore(row, C(7), C(9), C(5), C(1)), 1.0, 1e-12) << g;
    EXPECT_NEAR(CoherenceScore(row, C(7), C(9), C(1), C(3)), 0.5, 1e-12) << g;
  }
}

TEST(CoherenceScoreTest, PaperSection33OutlierScores) {
  // Section 3.3: on conditions c2, c10, c8 with baseline (c2, c10),
  // H(1,...) = H(3,...) = 0.5263 but H(2,...) = 4.6.
  const auto data = RunningDataset();
  EXPECT_NEAR(CoherenceScore(data.row_data(0), C(2), C(10), C(10), C(8)),
              0.5263, 1e-4);
  EXPECT_NEAR(CoherenceScore(data.row_data(2), C(2), C(10), C(10), C(8)),
              0.5263, 1e-4);
  EXPECT_NEAR(CoherenceScore(data.row_data(1), C(2), C(10), C(10), C(8)), 4.6,
              1e-12);
}

TEST(CoherenceScoreTest, PaperSection4PruningScores) {
  // Section 4: H(1,c2,c10,c10,c5) = H(3,...) = 0.5263 while H(2,...) = 2.
  const auto data = RunningDataset();
  EXPECT_NEAR(CoherenceScore(data.row_data(0), C(2), C(10), C(10), C(5)),
              0.5263, 1e-4);
  EXPECT_NEAR(CoherenceScore(data.row_data(2), C(2), C(10), C(10), C(5)),
              0.5263, 1e-4);
  EXPECT_NEAR(CoherenceScore(data.row_data(1), C(2), C(10), C(10), C(5)), 2.0,
              1e-12);
}

TEST(ChainScoresTest, FirstScoreIsAlwaysOne) {
  const auto data = RunningDataset();
  const std::vector<int> chain{C(7), C(9), C(5), C(1), C(3)};
  for (int g = 0; g < 3; ++g) {
    const auto scores = ChainCoherenceScores(data.row_data(g), chain);
    ASSERT_EQ(scores.size(), 4u);
    EXPECT_DOUBLE_EQ(scores[0], 1.0);
  }
}

TEST(ChainScoresTest, ShortChains) {
  const auto data = RunningDataset();
  EXPECT_TRUE(ChainCoherenceScores(data.row_data(0), {C(1)}).empty());
  EXPECT_TRUE(ChainCoherenceScores(data.row_data(0), {}).empty());
}

TEST(Lemma32Test, AffineGenesShareAllScores) {
  // Lemma 3.2, forward direction: if d_i = s1 * d_j + s2 then all adjacent
  // coherence scores agree -- including negative s1.
  util::Prng prng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(prng.UniformInt(3, 10));
    std::vector<double> base(static_cast<size_t>(n));
    base[0] = 0.0;
    for (int i = 1; i < n; ++i) {
      base[static_cast<size_t>(i)] =
          base[static_cast<size_t>(i - 1)] + prng.Uniform(0.5, 3.0);
    }
    const double s1 = prng.Bernoulli(0.5) ? prng.Uniform(0.2, 4.0)
                                          : -prng.Uniform(0.2, 4.0);
    const double s2 = prng.Uniform(-20, 20);
    std::vector<double> other(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      other[static_cast<size_t>(i)] = s1 * base[static_cast<size_t>(i)] + s2;
    }
    std::vector<int> chain(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) chain[static_cast<size_t>(i)] = i;
    const auto ha = ChainCoherenceScores(base.data(), chain);
    const auto hb = ChainCoherenceScores(other.data(), chain);
    ASSERT_EQ(ha.size(), hb.size());
    for (size_t k = 0; k < ha.size(); ++k) {
      ASSERT_NEAR(ha[k], hb[k], 1e-9) << "trial " << trial << " k " << k;
    }
  }
}

TEST(Lemma32Test, EqualScoresImplyAffineRelationship) {
  // Lemma 3.2, reverse direction: genes with identical scores fit
  // d_i = s1 * d_j + s2 exactly.
  const auto data = RunningDataset();
  const std::vector<int> conds{C(5), C(1), C(3), C(9), C(7)};
  double s1 = 0, s2 = 0;
  ASSERT_TRUE(FitPairShiftScale(data, G(3), G(1), conds, &s1, &s2));
  EXPECT_NEAR(s1, 2.5, 1e-9);   // d_1 = 2.5 * d_3 - 5 (Section 1.1)
  EXPECT_NEAR(s2, -5.0, 1e-9);

  ASSERT_TRUE(FitPairShiftScale(data, G(3), G(2), conds, &s1, &s2));
  EXPECT_NEAR(s1, -2.5, 1e-9);  // d_2 = -2.5 * d_3 + 35
  EXPECT_NEAR(s2, 35.0, 1e-9);

  ASSERT_TRUE(FitPairShiftScale(data, G(1), G(2), conds, &s1, &s2));
  EXPECT_NEAR(s1, -1.0, 1e-9);  // d_2 = -d_1 + 30
  EXPECT_NEAR(s2, 30.0, 1e-9);
}

// ---------------------------------------------------------------------------
// ValidateRegCluster oracle.
// ---------------------------------------------------------------------------

TEST(ValidateTest, AcceptsThePaperCluster) {
  const auto data = RunningDataset();
  RegCluster c;
  c.chain = regcluster::testing::ExpectedChain();
  c.p_genes = regcluster::testing::ExpectedPMembers();
  c.n_genes = regcluster::testing::ExpectedNMembers();
  std::string why;
  EXPECT_TRUE(ValidateRegCluster(data, c, 0.15, 0.1, &why)) << why;
  // Also valid at epsilon = 0: the pattern is perfect.
  EXPECT_TRUE(ValidateRegCluster(data, c, 0.15, 0.0, &why)) << why;
}

TEST(ValidateTest, RejectsWrongDirection) {
  const auto data = RunningDataset();
  RegCluster c;
  c.chain = regcluster::testing::ExpectedChain();
  c.p_genes = {G(2)};  // g2 decreases along this chain
  std::string why;
  EXPECT_FALSE(ValidateRegCluster(data, c, 0.15, 0.1, &why));
  EXPECT_NE(why.find("regulated"), std::string::npos);
}

TEST(ValidateTest, RejectsUnregulatedStep) {
  // Figure 4: c4 and c8 are not regulated for g2 at gamma = 0.15.
  const auto data = RunningDataset();
  RegCluster c;
  c.chain = {C(2), C(10), C(8), C(4)};  // increasing for g2: 15,20,43,43.5
  c.p_genes = {G(2)};
  EXPECT_FALSE(ValidateRegCluster(data, c, 0.15, 10.0));
  // At gamma = 0 the steps are strictly positive, so it validates.
  EXPECT_TRUE(ValidateRegCluster(data, c, 0.0, 10.0));
}

TEST(ValidateTest, RejectsIncoherentOutlier) {
  // Figure 4: {g1, g2, g3} x (c2 c10 c8 c4) -- g2 breaks coherence.
  const auto data = RunningDataset();
  RegCluster c;
  c.chain = {C(2), C(10), C(8), C(4)};
  c.p_genes = {G(1), G(2), G(3)};  // all increase along the chain
  std::string why;
  EXPECT_FALSE(ValidateRegCluster(data, c, 0.0, 0.1, &why));
  EXPECT_NE(why.find("coherence"), std::string::npos);
  // Without g2 the remaining pair is perfectly coherent.
  c.p_genes = {G(1), G(3)};
  EXPECT_TRUE(ValidateRegCluster(data, c, 0.0, 0.1, &why)) << why;
}

TEST(ValidateTest, RejectsTrivialChains) {
  const auto data = RunningDataset();
  RegCluster c;
  c.chain = {C(1)};
  c.p_genes = {G(1)};
  EXPECT_FALSE(ValidateRegCluster(data, c, 0.15, 0.1));
}

TEST(ValidateTest, RejectsOutOfRangeCondition) {
  const auto data = RunningDataset();
  RegCluster c;
  c.chain = {0, 99};
  c.p_genes = {0};
  EXPECT_FALSE(ValidateRegCluster(data, c, 0.15, 0.1));
}

}  // namespace
}  // namespace core
}  // namespace regcluster
