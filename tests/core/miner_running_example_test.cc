// Golden end-to-end check of the paper's worked example (Section 4,
// Figure 6): mining the running dataset at gamma=0.15, epsilon=0.1,
// MinG=3, MinC=5 must output exactly one reg-cluster -- the chain
// c7 <- c9 <- c5 <- c1 <- c3 with p-members {g1, g3} and n-members {g2}.

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::C;
using regcluster::testing::G;
using regcluster::testing::RunningDataset;

MinerOptions PaperOptions() {
  MinerOptions opts;
  opts.min_genes = 3;
  opts.min_conditions = 5;
  opts.gamma = 0.15;
  opts.epsilon = 0.1;
  return opts;
}

TEST(RunningExampleMiner, FindsExactlyThePaperCluster) {
  const auto data = RunningDataset();
  RegClusterMiner miner(data, PaperOptions());
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();
  ASSERT_EQ(clusters->size(), 1u);

  const RegCluster& c = (*clusters)[0];
  EXPECT_EQ(c.chain, regcluster::testing::ExpectedChain());
  EXPECT_EQ(c.p_genes, regcluster::testing::ExpectedPMembers());
  EXPECT_EQ(c.n_genes, regcluster::testing::ExpectedNMembers());
}

TEST(RunningExampleMiner, OutputValidatesAgainstOracle) {
  const auto data = RunningDataset();
  RegClusterMiner miner(data, PaperOptions());
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  std::string why;
  for (const RegCluster& c : *clusters) {
    EXPECT_TRUE(ValidateRegCluster(data, c, 0.15, 0.1, &why)) << why;
  }
}

TEST(RunningExampleMiner, StatsReflectFigure6Prunings) {
  const auto data = RunningDataset();
  RegClusterMiner miner(data, PaperOptions());
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  const MinerStats& s = miner.stats();
  EXPECT_EQ(s.clusters_emitted, 1);
  // Figure 6 prunes node c2c10c5 via the coherence test (strategy 4).
  EXPECT_GE(s.pruned_coherence, 1);
  // Nodes like c3 (1 p-member < MinG/2) are pruned by strategy 3(a).
  EXPECT_GE(s.pruned_p_majority, 1);
  // Nodes like c2c1 / c2c9 / c7c10 are pruned by strategy 1.
  EXPECT_GE(s.pruned_min_genes, 1);
  EXPECT_GT(s.nodes_expanded, 0);
  EXPECT_GE(s.mine_seconds, 0.0);
}

TEST(RunningExampleMiner, LowerMinCFindsSubchainsToo) {
  const auto data = RunningDataset();
  MinerOptions opts = PaperOptions();
  opts.min_conditions = 4;
  RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  // The 5-chain must still be present among the outputs.
  bool found = false;
  for (const RegCluster& c : *clusters) {
    if (c.chain == regcluster::testing::ExpectedChain()) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GE(clusters->size(), 2u);  // at least the 4-prefix and the 5-chain
}

TEST(RunningExampleMiner, RemoveDominatedCollapsesPrefixes) {
  const auto data = RunningDataset();
  MinerOptions opts = PaperOptions();
  opts.min_conditions = 4;
  opts.remove_dominated = true;
  RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  // The contiguous 4-prefix / 4-suffix of the 5-chain with the same gene
  // set are dominated and must be gone.  (Chains skipping a middle
  // condition, e.g. c7 c9 c1 c3, are NOT contiguous subsequences and may
  // legitimately remain.)
  const std::vector<int> full = regcluster::testing::ExpectedChain();
  const std::vector<int> prefix(full.begin(), full.end() - 1);
  const std::vector<int> suffix(full.begin() + 1, full.end());
  for (const RegCluster& c : *clusters) {
    if (c.AllGenes() == std::vector<int>{G(1), G(2), G(3)}) {
      EXPECT_NE(c.chain, prefix);
      EXPECT_NE(c.chain, suffix);
    }
  }
}

TEST(RunningExampleMiner, TighterGammaKillsTheCluster) {
  // At gamma = 0.4 the steps of the chain (e.g. 5 units for g1 against a
  // 30-unit range) are no longer regulated; nothing is found.
  const auto data = RunningDataset();
  MinerOptions opts = PaperOptions();
  opts.gamma = 0.4;
  RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  EXPECT_TRUE(clusters->empty());
}

TEST(RunningExampleMiner, MinG4IsUnsatisfiable) {
  const auto data = RunningDataset();
  MinerOptions opts = PaperOptions();
  opts.min_genes = 4;  // only 3 genes exist
  RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  EXPECT_TRUE(clusters->empty());
}

TEST(RunningExampleMiner, Figure4OutlierIsNotClustered) {
  // On conditions c2 c4 c8 c10, g1 and g3 satisfy d3 = 0.4*d1 + 2 but g2
  // does not; at MinG=3 no cluster over those conditions may appear with
  // all three genes.
  const auto data = RunningDataset();
  MinerOptions opts;
  opts.min_genes = 3;
  opts.min_conditions = 4;
  opts.gamma = 0.15;
  opts.epsilon = 0.1;
  RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  const std::vector<int> fig4_conds{C(2), C(4), C(8), C(10)};
  for (const RegCluster& c : *clusters) {
    EXPECT_NE(c.SortedConditions(),
              [&] {
                auto v = fig4_conds;
                std::sort(v.begin(), v.end());
                return v;
              }());
  }
}

TEST(RunningExampleMiner, DeterministicAcrossRuns) {
  const auto data = RunningDataset();
  RegClusterMiner a(data, PaperOptions());
  RegClusterMiner b(data, PaperOptions());
  auto ra = a.Mine();
  auto rb = b.Mine();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->size(), rb->size());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i], (*rb)[i]);
  }
}

}  // namespace
}  // namespace core
}  // namespace regcluster
