// The budget layer's partial-result contract: a truncated Mine() returns OK
// with a *canonical prefix* of the unbudgeted output -- the same prefix for
// any thread count when the stop is a deterministic count budget -- and its
// ResumeToken continues the search such that the concatenation is
// bit-identical to the unbudgeted run.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "synth/generator.h"
#include "util/cancellation.h"

namespace regcluster {
namespace core {
namespace {

const matrix::ExpressionMatrix& TestData() {
  static const matrix::ExpressionMatrix* data = [] {
    synth::SyntheticConfig cfg;
    cfg.num_genes = 300;
    cfg.num_conditions = 18;
    cfg.num_clusters = 6;
    cfg.avg_cluster_genes_fraction = 0.04;
    cfg.seed = 808;
    auto ds = synth::GenerateSynthetic(cfg);
    EXPECT_TRUE(ds.ok());
    return new matrix::ExpressionMatrix(std::move(ds->data));
  }();
  return *data;
}

MinerOptions BaseOptions() {
  MinerOptions o;
  o.min_genes = 5;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.05;
  return o;
}

/// The unbudgeted run every test compares against.  Mined once and cached:
/// its deterministic MinerStats are the ground truth for node accounting,
/// so tests assert against `Reference().stats.nodes_expanded` instead of
/// re-mining to re-derive expected totals.
struct ReferenceRun {
  std::vector<RegCluster> clusters;
  MinerStats stats;
  MineOutcome outcome;
};

const ReferenceRun& Reference() {
  static const ReferenceRun* ref = [] {
    RegClusterMiner miner(TestData(), BaseOptions());
    auto clusters = miner.Mine();
    EXPECT_TRUE(clusters.ok());
    EXPECT_EQ(miner.outcome().status, MineStatus::kComplete);
    return new ReferenceRun{*std::move(clusters), miner.stats(),
                            miner.outcome()};
  }();
  return *ref;
}

bool IsPrefixOf(const std::vector<RegCluster>& prefix,
                const std::vector<RegCluster>& full) {
  if (prefix.size() > full.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(prefix[i] == full[i])) return false;
  }
  return true;
}

TEST(MinerBudgetTest, CompleteRunOutcomeContract) {
  const auto& data = TestData();
  const ReferenceRun& ref = Reference();
  const MineOutcome& outcome = ref.outcome;
  EXPECT_EQ(outcome.status, MineStatus::kComplete);
  EXPECT_EQ(outcome.stop_reason, util::StopReason::kNone);
  EXPECT_EQ(outcome.roots_completed, outcome.roots_total);
  EXPECT_EQ(outcome.roots_total, data.num_conditions());
  EXPECT_FALSE(outcome.resume.can_resume());
  EXPECT_GT(outcome.nodes_visited, 0);
  EXPECT_GE(outcome.wall_seconds, 0.0);
  // On a complete run the visited total (all work, including any that a
  // truncation would have discarded) can never undercut the canonical
  // expanded count.
  EXPECT_GT(ref.stats.nodes_expanded, 0);
  EXPECT_GE(outcome.nodes_visited, ref.stats.nodes_expanded);
}

// ---------------------------------------------------------------------------
// Deterministic count budgets: byte-identical prefix for any thread count.
// ---------------------------------------------------------------------------

class NodeBudgetSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(NodeBudgetSweep, PrefixIdenticalAcrossThreadCounts) {
  const auto& data = TestData();
  const auto& reference = Reference().clusters;

  MinerOptions base = BaseOptions();
  base.max_nodes = GetParam();

  std::vector<RegCluster> first_out;
  MineOutcome first_outcome;
  for (const int threads : {1, 4, 8}) {
    MinerOptions o = base;
    o.num_threads = threads;
    RegClusterMiner miner(data, o);
    auto clusters = miner.Mine();
    ASSERT_TRUE(clusters.ok()) << "threads=" << threads;
    const MineOutcome& outcome = miner.outcome();
    EXPECT_TRUE(IsPrefixOf(*clusters, reference)) << "threads=" << threads;
    if (outcome.status == MineStatus::kTruncated) {
      EXPECT_EQ(outcome.stop_reason, util::StopReason::kNodeBudget);
      EXPECT_TRUE(outcome.resume.can_resume());
      EXPECT_LT(outcome.roots_completed, outcome.roots_total);
      EXPECT_EQ(outcome.resume.next_root, outcome.roots_completed);
    } else {
      EXPECT_EQ(*clusters, reference);
      // A non-binding budget changes no search work: the deterministic node
      // accounting matches the cached unbudgeted reference exactly.
      EXPECT_EQ(miner.stats().nodes_expanded,
                Reference().stats.nodes_expanded);
    }
    // The included prefix -- both the clusters and the coverage metadata --
    // must not depend on the thread count.
    if (threads == 1) {
      first_out = *clusters;
      first_outcome = outcome;
    } else {
      EXPECT_EQ(*clusters, first_out) << "threads=" << threads;
      EXPECT_EQ(outcome.status, first_outcome.status);
      EXPECT_EQ(outcome.roots_completed, first_outcome.roots_completed);
      EXPECT_EQ(outcome.resume.next_root, first_outcome.resume.next_root);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, NodeBudgetSweep,
                         ::testing::Values(int64_t{1}, int64_t{50},
                                           int64_t{200}, int64_t{1000},
                                           int64_t{100000}));

class ClusterBudgetSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ClusterBudgetSweep, PrefixIdenticalAcrossThreadCounts) {
  const auto& data = TestData();
  const auto& reference = Reference().clusters;

  MinerOptions base = BaseOptions();
  base.max_clusters = GetParam();

  std::vector<RegCluster> first_out;
  int first_roots = -1;
  for (const int threads : {1, 4, 8}) {
    MinerOptions o = base;
    o.num_threads = threads;
    RegClusterMiner miner(data, o);
    auto clusters = miner.Mine();
    ASSERT_TRUE(clusters.ok()) << "threads=" << threads;
    EXPECT_TRUE(IsPrefixOf(*clusters, reference)) << "threads=" << threads;
    EXPECT_LE(static_cast<int64_t>(clusters->size()), GetParam());
    if (threads == 1) {
      first_out = *clusters;
      first_roots = miner.outcome().roots_completed;
    } else {
      EXPECT_EQ(*clusters, first_out) << "threads=" << threads;
      EXPECT_EQ(miner.outcome().roots_completed, first_roots);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ClusterBudgetSweep,
                         ::testing::Values(int64_t{0}, int64_t{1},
                                           int64_t{7}, int64_t{1000000}));

// ---------------------------------------------------------------------------
// Resume: the concatenation across truncated runs is the unbudgeted answer.
// ---------------------------------------------------------------------------

TEST(MinerBudgetTest, ResumeConcatenationIsBitIdentical) {
  const auto& data = TestData();
  const auto& reference = Reference().clusters;

  MinerOptions budgeted = BaseOptions();
  budgeted.max_nodes = 300;
  RegClusterMiner first(data, budgeted);
  auto head = first.Mine();
  ASSERT_TRUE(head.ok());
  ASSERT_EQ(first.outcome().status, MineStatus::kTruncated);
  ASSERT_TRUE(first.outcome().resume.can_resume());

  MinerOptions rest = BaseOptions();  // unbudgeted continuation
  rest.resume = first.outcome().resume;
  RegClusterMiner second(data, rest);
  auto tail = second.Mine();
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(second.outcome().status, MineStatus::kComplete);

  std::vector<RegCluster> spliced = *head;
  spliced.insert(spliced.end(), tail->begin(), tail->end());
  EXPECT_EQ(spliced, reference);
  // Node accounting splices too: stats describe exactly the included
  // canonical prefix, so head + tail partition the reference's expansions.
  EXPECT_EQ(first.stats().nodes_expanded + second.stats().nodes_expanded,
            Reference().stats.nodes_expanded);
}

TEST(MinerBudgetTest, ResumeChainOfBudgetedRunsReconstructsReference) {
  // Walk the whole search in small budgeted hops, alternating thread counts;
  // the concatenation of every hop must equal the unbudgeted reference.
  const auto& data = TestData();
  const auto& reference = Reference().clusters;

  std::vector<RegCluster> spliced;
  ResumeToken token;
  int hops = 0;
  int64_t budget = 500;
  int64_t nodes_accounted = 0;
  while (true) {
    MinerOptions o = BaseOptions();
    o.max_nodes = budget;
    o.num_threads = (hops % 2 == 0) ? 1 : 4;
    o.resume = token;
    RegClusterMiner miner(data, o);
    auto part = miner.Mine();
    ASSERT_TRUE(part.ok()) << "hop " << hops;
    spliced.insert(spliced.end(), part->begin(), part->end());
    nodes_accounted += miner.stats().nodes_expanded;
    if (miner.outcome().status == MineStatus::kComplete) break;
    // A hop whose budget is smaller than its next root's subtree completes
    // zero roots; double the budget so the chain always terminates.
    if (miner.outcome().resume.next_root == token.next_root ||
        (token.next_root < 0 && miner.outcome().resume.next_root == 0)) {
      budget *= 2;
    }
    token = miner.outcome().resume;
    ASSERT_TRUE(token.can_resume());
    ASSERT_LE(++hops, 1000) << "resume chain failed to make progress";
  }
  EXPECT_GE(hops, 1);  // the budget actually bit
  EXPECT_EQ(spliced, reference);
  // Every root's expansions were counted in exactly one hop.
  EXPECT_EQ(nodes_accounted, Reference().stats.nodes_expanded);
}

TEST(MinerBudgetTest, ResumeUnderDifferentSemanticsRejected) {
  const auto& data = TestData();
  MinerOptions budgeted = BaseOptions();
  budgeted.max_nodes = 300;
  RegClusterMiner first(data, budgeted);
  ASSERT_TRUE(first.Mine().ok());
  ASSERT_TRUE(first.outcome().resume.can_resume());

  MinerOptions other = BaseOptions();
  other.min_genes += 1;  // semantically different search
  other.resume = first.outcome().resume;
  auto result = RegClusterMiner(data, other).Mine();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(MinerBudgetTest, ResumeWithRemoveDominatedRejected) {
  // remove_dominated is a global post-pass; splicing per-root prefixes under
  // it would not be bit-identical, so the combination is refused outright.
  const auto& data = TestData();
  MinerOptions budgeted = BaseOptions();
  budgeted.max_nodes = 300;
  RegClusterMiner first(data, budgeted);
  ASSERT_TRUE(first.Mine().ok());

  MinerOptions rest = BaseOptions();
  rest.remove_dominated = true;
  rest.resume = first.outcome().resume;
  // The hash covers semantic fields, so this already fails the hash check;
  // assert the rejection regardless of which validation fires.
  EXPECT_FALSE(RegClusterMiner(data, rest).Mine().ok());
}

TEST(MinerBudgetTest, SemanticHashIgnoresExecutionKnobs) {
  MinerOptions a = BaseOptions();
  MinerOptions b = BaseOptions();
  b.num_threads = 8;
  b.max_nodes = 123;
  b.deadline_ms = 5.0;
  b.budget_check_interval = 1;
  b.profile_phases = true;
  EXPECT_EQ(RegClusterMiner::SemanticOptionsHash(a),
            RegClusterMiner::SemanticOptionsHash(b));
  b.epsilon = 0.06;
  EXPECT_NE(RegClusterMiner::SemanticOptionsHash(a),
            RegClusterMiner::SemanticOptionsHash(b));
}

// ---------------------------------------------------------------------------
// Hard stops: valid canonical prefix, reason surfaced.
// ---------------------------------------------------------------------------

TEST(MinerBudgetTest, ZeroDeadlineTruncatesToValidPrefix) {
  const auto& data = TestData();
  const auto& reference = Reference().clusters;
  MinerOptions o = BaseOptions();
  o.deadline_ms = 0.0;
  RegClusterMiner miner(data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(miner.outcome().status, MineStatus::kTruncated);
  EXPECT_EQ(miner.outcome().stop_reason, util::StopReason::kDeadline);
  EXPECT_TRUE(IsPrefixOf(*clusters, reference));
}

TEST(MinerBudgetTest, PreCancelledTokenStopsBeforeAnyRoot) {
  const auto& data = TestData();
  MinerOptions o = BaseOptions();
  o.cancel_token = std::make_shared<util::CancellationToken>();
  o.cancel_token->Cancel();
  RegClusterMiner miner(data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  EXPECT_TRUE(clusters->empty());
  EXPECT_EQ(miner.outcome().status, MineStatus::kTruncated);
  EXPECT_EQ(miner.outcome().stop_reason, util::StopReason::kCancelled);
  EXPECT_EQ(miner.outcome().resume.next_root, 0);
}

TEST(MinerBudgetTest, TinyMemoryLimitTripsMemoryBudget) {
  const auto& data = TestData();
  const auto& reference = Reference().clusters;
  MinerOptions o = BaseOptions();
  o.soft_memory_limit_bytes = 1;  // any scratch report exceeds this
  o.budget_check_interval = 1;
  RegClusterMiner miner(data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(miner.outcome().status, MineStatus::kTruncated);
  EXPECT_EQ(miner.outcome().stop_reason, util::StopReason::kMemoryBudget);
  EXPECT_TRUE(IsPrefixOf(*clusters, reference));
  EXPECT_GT(miner.outcome().peak_scratch_bytes, 1);
}

TEST(MinerBudgetTest, BadResumeRootRejected) {
  const auto& data = TestData();
  MinerOptions o = BaseOptions();
  o.resume.next_root = data.num_conditions() + 1;
  o.resume.options_hash = RegClusterMiner::SemanticOptionsHash(o);
  EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
}

TEST(MinerBudgetTest, BadCheckIntervalRejected) {
  const auto& data = TestData();
  MinerOptions o = BaseOptions();
  o.budget_check_interval = 0;
  auto result = RegClusterMiner(data, o).Mine();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
