// Algebraic properties of the coherence machinery (Section 3.2) over
// randomized inputs: the exact invariances that make Lemma 3.2 usable as a
// clustering criterion.

#include <cmath>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "matrix/expression_matrix.h"
#include "util/math_util.h"
#include "util/prng.h"

namespace regcluster {
namespace core {
namespace {

std::vector<double> RandomStrictlyIncreasing(util::Prng* prng, int n) {
  std::vector<double> v(static_cast<size_t>(n));
  v[0] = prng->Uniform(-5, 5);
  for (int i = 1; i < n; ++i) {
    v[static_cast<size_t>(i)] =
        v[static_cast<size_t>(i - 1)] + prng->Uniform(0.2, 3.0);
  }
  return v;
}

class CoherenceAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceAlgebra, ScoresInvariantUnderAffineTransforms) {
  // H(s1*x + s2) == H(x) for every s1 != 0 -- including negative s1.
  util::Prng prng(GetParam());
  const int n = static_cast<int>(prng.UniformInt(3, 12));
  const std::vector<double> x = RandomStrictlyIncreasing(&prng, n);
  std::vector<int> chain(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) chain[static_cast<size_t>(i)] = i;
  const auto hx = ChainCoherenceScores(x.data(), chain);

  for (double s1 : {2.5, -1.0, -0.3, 0.01}) {
    const double s2 = prng.Uniform(-100, 100);
    std::vector<double> y(x.size());
    for (size_t i = 0; i < x.size(); ++i) y[i] = s1 * x[i] + s2;
    const auto hy = ChainCoherenceScores(y.data(), chain);
    ASSERT_EQ(hx.size(), hy.size());
    for (size_t k = 0; k < hx.size(); ++k) {
      ASSERT_NEAR(hx[k], hy[k], 1e-9 * (1 + std::fabs(hx[k])))
          << "s1=" << s1 << " k=" << k;
    }
  }
}

TEST_P(CoherenceAlgebra, ScoresSumToSpanRatio) {
  // Telescoping (used in the Lemma 3.2 proof): sum of adjacent scores ==
  // (d_cn - d_c1) / (d_c2 - d_c1).
  util::Prng prng(100 + GetParam());
  const int n = static_cast<int>(prng.UniformInt(3, 12));
  const std::vector<double> x = RandomStrictlyIncreasing(&prng, n);
  std::vector<int> chain(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) chain[static_cast<size_t>(i)] = i;
  const auto h = ChainCoherenceScores(x.data(), chain);
  double total = 0.0;
  for (double v : h) total += v;
  const double expected =
      (x[static_cast<size_t>(n - 1)] - x[0]) / (x[1] - x[0]);
  EXPECT_NEAR(total, expected, 1e-9 * (1 + std::fabs(expected)));
}

TEST_P(CoherenceAlgebra, EqualScoresImplyExactAffineFit) {
  // Lemma 3.2 reverse direction, numerically: if two random profiles share
  // all scores (by construction), the least-squares fit is exact.
  util::Prng prng(200 + GetParam());
  const int n = static_cast<int>(prng.UniformInt(3, 10));
  const std::vector<double> x = RandomStrictlyIncreasing(&prng, n);
  const double s1 = prng.Bernoulli(0.5) ? prng.Uniform(0.3, 3.0)
                                        : -prng.Uniform(0.3, 3.0);
  const double s2 = prng.Uniform(-50, 50);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = s1 * x[i] + s2;

  double fit_s1 = 0, fit_s2 = 0;
  ASSERT_TRUE(util::FitShiftScale(x, y, &fit_s1, &fit_s2));
  EXPECT_NEAR(fit_s1, s1, 1e-9);
  EXPECT_NEAR(fit_s2, s2, 1e-7);
  EXPECT_NEAR(util::MaxAbsResidual(x, y, fit_s1, fit_s2), 0.0, 1e-8);
}

TEST_P(CoherenceAlgebra, PerturbationShowsUpInExactlyTheTouchedScores) {
  util::Prng prng(300 + GetParam());
  const int n = 8;
  const std::vector<double> x = RandomStrictlyIncreasing(&prng, n);
  std::vector<int> chain(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) chain[static_cast<size_t>(i)] = i;
  const auto h0 = ChainCoherenceScores(x.data(), chain);

  // Perturb one interior condition (not in the baseline pair).
  const int touched = 3 + static_cast<int>(prng.UniformInt(0, n - 5));
  std::vector<double> y = x;
  y[static_cast<size_t>(touched)] += 0.05;
  const auto h1 = ChainCoherenceScores(y.data(), chain);
  for (size_t k = 0; k < h0.size(); ++k) {
    // Score k involves conditions k and k+1.
    const bool involved = static_cast<int>(k) == touched - 1 ||
                          static_cast<int>(k) == touched;
    if (involved) {
      EXPECT_GT(std::fabs(h1[k] - h0[k]), 1e-6) << k;
    } else {
      EXPECT_NEAR(h1[k], h0[k], 1e-12) << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceAlgebra, ::testing::Range(1, 13));

TEST(CoherenceEdgeTest, NegativeBaselineDenominatorStillConsistent) {
  // For a decreasing profile the baseline difference is negative; scores
  // stay positive and mirror the increasing twin's scores.
  const std::vector<double> up{0, 2, 5, 9};
  const std::vector<double> down{9, 7, 4, 0};  // = 9 - up (s1 = -1)
  const std::vector<int> chain{0, 1, 2, 3};
  const auto hu = ChainCoherenceScores(up.data(), chain);
  const auto hd = ChainCoherenceScores(down.data(), chain);
  for (size_t k = 0; k < hu.size(); ++k) {
    EXPECT_GT(hu[k], 0.0);
    EXPECT_NEAR(hu[k], hd[k], 1e-12);
  }
}

TEST(CoherenceEdgeTest, ValidateAcceptsTinySlack) {
  // The oracle's slack must absorb float noise right at the epsilon edge.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0.0, 1.0, 2.0},
      {0.0, 1.0, 2.0 + 1e-13},
  });
  RegCluster c;
  c.chain = {0, 1, 2};
  c.p_genes = {0, 1};
  EXPECT_TRUE(ValidateRegCluster(m, c, 0.0, 0.0));
}

}  // namespace
}  // namespace core
}  // namespace regcluster
