// Fault injection: trip the cancellation token on the k-th budget poll for
// hundreds of PRNG-drawn k values and thread counts.  Whatever the trip
// point, Mine() must return OK with a canonical prefix of the unbudgeted
// reference, and resuming from its token must reconstruct the reference
// bit-identically.  Run under ASan/TSan in CI, this sweeps the abandonment
// and repair paths for leaks, races and use-after-frees.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "synth/generator.h"
#include "util/cancellation.h"
#include "util/prng.h"

namespace regcluster {
namespace core {
namespace {

matrix::ExpressionMatrix FaultData() {
  // Small enough that one mine is ~milliseconds (the sweep runs hundreds),
  // big enough that the search has multi-level subtrees to abandon.
  synth::SyntheticConfig cfg;
  cfg.num_genes = 120;
  cfg.num_conditions = 14;
  cfg.num_clusters = 5;
  cfg.avg_cluster_genes_fraction = 0.08;
  cfg.seed = 4242;
  auto ds = synth::GenerateSynthetic(cfg);
  EXPECT_TRUE(ds.ok());
  return ds->data;
}

MinerOptions FaultOptions() {
  MinerOptions o;
  o.min_genes = 4;
  o.min_conditions = 4;
  o.gamma = 0.1;
  o.epsilon = 0.05;
  o.budget_check_interval = 1;  // every DFS node is a potential trip point
  return o;
}

bool IsPrefixOf(const std::vector<RegCluster>& prefix,
                const std::vector<RegCluster>& full) {
  if (prefix.size() > full.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(prefix[i] == full[i])) return false;
  }
  return true;
}

class MinerFaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinerFaultSweep, TokenTripAtAnyPollLeavesValidResumableState) {
  const int threads = GetParam();
  const auto data = FaultData();

  RegClusterMiner ref_miner(data, FaultOptions());
  auto reference = ref_miner.Mine();
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(ref_miner.outcome().nodes_visited, 50) << "dataset too easy";
  // Poll counts scale with total nodes; overshoot so some trials also land
  // in the no-op tail (token trips after the search already finished).
  const int64_t max_polls = ref_miner.outcome().nodes_visited * 2;

  util::Prng prng(0xfa017ULL + static_cast<uint64_t>(threads));
  constexpr int kTrials = 100;
  int truncated_trials = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int64_t k = prng.UniformInt(1, max_polls);
    MinerOptions o = FaultOptions();
    o.num_threads = threads;
    o.cancel_token = std::make_shared<util::CancellationToken>();
    o.cancel_token->CancelAfterPolls(k);
    RegClusterMiner miner(data, o);
    auto clusters = miner.Mine();
    ASSERT_TRUE(clusters.ok()) << "threads=" << threads << " k=" << k;
    ASSERT_TRUE(IsPrefixOf(*clusters, *reference))
        << "threads=" << threads << " k=" << k;

    const MineOutcome& outcome = miner.outcome();
    if (outcome.status == MineStatus::kComplete) {
      EXPECT_EQ(*clusters, *reference) << "k=" << k;
      continue;
    }
    ++truncated_trials;
    EXPECT_EQ(outcome.stop_reason, util::StopReason::kCancelled)
        << "k=" << k;
    ASSERT_TRUE(outcome.resume.can_resume()) << "k=" << k;

    // Resume (without the faulty token) and splice: must be bit-identical
    // to the unbudgeted reference.
    MinerOptions rest = FaultOptions();
    rest.num_threads = threads;
    rest.resume = outcome.resume;
    RegClusterMiner tail_miner(data, rest);
    auto tail = tail_miner.Mine();
    ASSERT_TRUE(tail.ok()) << "k=" << k;
    EXPECT_EQ(tail_miner.outcome().status, MineStatus::kComplete)
        << "k=" << k;
    std::vector<RegCluster> spliced = *clusters;
    spliced.insert(spliced.end(), tail->begin(), tail->end());
    ASSERT_EQ(spliced, *reference) << "threads=" << threads << " k=" << k;
  }
  // The sweep is only a fault *injection* test if faults actually fired.
  EXPECT_GT(truncated_trials, kTrials / 4)
      << "trip points almost never landed inside the search; shrink "
         "max_polls or grow the dataset";
}

INSTANTIATE_TEST_SUITE_P(Threads, MinerFaultSweep, ::testing::Values(1, 4));

TEST(MinerFaultsTest, BackToBackFaultedMinesOnOneMinerObject) {
  // Re-using a RegClusterMiner after a cancelled run must fully reset the
  // outcome/stats state; interleave faulted and clean runs.
  const auto data = FaultData();
  RegClusterMiner ref_miner(data, FaultOptions());
  auto reference = ref_miner.Mine();
  ASSERT_TRUE(reference.ok());

  for (const int64_t k : {int64_t{1}, int64_t{25}, int64_t{400}}) {
    MinerOptions o = FaultOptions();
    o.cancel_token = std::make_shared<util::CancellationToken>();
    o.cancel_token->CancelAfterPolls(k);
    RegClusterMiner miner(data, o);
    auto first = miner.Mine();
    ASSERT_TRUE(first.ok());
    auto second = miner.Mine();  // token stays tripped: empty prefix
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->empty());
    EXPECT_EQ(miner.outcome().status, MineStatus::kTruncated);
    EXPECT_EQ(miner.outcome().resume.next_root, 0);
  }

  RegClusterMiner clean(data, FaultOptions());
  auto again = clean.Mine();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *reference);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
