// Object-lifecycle behaviour of the miner: repeated Mine() calls, stats
// resets, and interaction of option combinations not covered elsewhere.

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::RunningDataset;

MinerOptions PaperOptions() {
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 5;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  return o;
}

TEST(MinerLifecycle, RepeatedMineCallsAreIdenticalAndIndependent) {
  const auto data = RunningDataset();
  RegClusterMiner miner(data, PaperOptions());
  auto first = miner.Mine();
  ASSERT_TRUE(first.ok());
  const auto first_stats = miner.stats();
  auto second = miner.Mine();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i], (*second)[i]);
  }
  // Stats are reset, not accumulated, between calls.
  EXPECT_EQ(miner.stats().nodes_expanded, first_stats.nodes_expanded);
  EXPECT_EQ(miner.stats().clusters_emitted, first_stats.clusters_emitted);
  EXPECT_EQ(miner.stats().pruned_coherence, first_stats.pruned_coherence);
}

TEST(MinerLifecycle, MineAfterFailedValidationWorks) {
  const auto data = RunningDataset();
  MinerOptions bad = PaperOptions();
  bad.gamma = 5.0;  // invalid
  RegClusterMiner miner(data, bad);
  EXPECT_FALSE(miner.Mine().ok());
  // A fresh miner with good options on the same matrix is unaffected.
  RegClusterMiner good(data, PaperOptions());
  auto result = good.Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(MinerLifecycle, CapsResetBetweenRuns) {
  const auto data = RunningDataset();
  MinerOptions o = PaperOptions();
  o.min_conditions = 3;
  o.max_clusters = 2;
  RegClusterMiner miner(data, o);
  auto first = miner.Mine();
  ASSERT_TRUE(first.ok());
  EXPECT_LE(first->size(), 2u);
  // Second run starts from a zeroed budget: same truncated output.
  auto second = miner.Mine();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
}

TEST(MinerLifecycle, DominatedFilterComposesWithThreads) {
  const auto data = RunningDataset();
  MinerOptions serial = PaperOptions();
  serial.min_conditions = 4;
  serial.remove_dominated = true;
  MinerOptions threaded = serial;
  threaded.num_threads = 4;
  auto a = RegClusterMiner(data, serial).Mine();
  auto b = RegClusterMiner(data, threaded).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(MinerLifecycle, TargetedMiningComposesWithThreads) {
  const auto data = RunningDataset();
  MinerOptions o = PaperOptions();
  o.min_conditions = 3;
  o.required_genes = {1};
  MinerOptions threaded = o;
  threaded.num_threads = 3;
  auto a = RegClusterMiner(data, o).Mine();
  auto b = RegClusterMiner(data, threaded).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(MinerLifecycle, MatrixOutlivesMinerOutput) {
  // The output owns its data (no dangling references into the miner).
  std::vector<RegCluster> clusters;
  {
    const auto data = RunningDataset();
    RegClusterMiner miner(data, PaperOptions());
    auto result = miner.Mine();
    ASSERT_TRUE(result.ok());
    clusters = *std::move(result);
  }  // miner and matrix gone
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].chain, regcluster::testing::ExpectedChain());
}

}  // namespace
}  // namespace core
}  // namespace regcluster
