// closed_chains_only: a cluster is suppressed exactly when some emitted
// cluster extends its chain by one condition (at either end, depending on
// representative direction) with the identical gene set.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "synth/generator.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::RunningDataset;

MinerOptions Options(bool closed) {
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  o.closed_chains_only = closed;
  return o;
}

/// True iff `shorter` extended by one condition equals `longer` (same gene
/// set, chain a one-step end-extension, up to orientation flip).
bool OneStepSubsumes(const RegCluster& shorter, const RegCluster& longer) {
  if (longer.chain.size() != shorter.chain.size() + 1) return false;
  if (longer.AllGenes() != shorter.AllGenes()) return false;
  std::vector<int> fwd(longer.chain.begin(), longer.chain.end() - 1);
  std::vector<int> rev(longer.chain.rbegin(), longer.chain.rend() - 1);
  return fwd == shorter.chain || rev == shorter.chain;
}

TEST(ClosedChainsTest, ClosedIsSubsetOfRaw) {
  const auto data = RunningDataset();
  auto raw = RegClusterMiner(data, Options(false)).Mine();
  auto closed = RegClusterMiner(data, Options(true)).Mine();
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(closed.ok());
  EXPECT_LT(closed->size(), raw->size());
  std::set<std::string> raw_keys;
  for (const auto& c : *raw) raw_keys.insert(c.Key());
  for (const auto& c : *closed) {
    EXPECT_TRUE(raw_keys.count(c.Key())) << c.Key();
  }
}

TEST(ClosedChainsTest, SuppressedClustersAreOneStepSubsumed) {
  const auto data = RunningDataset();
  auto raw = RegClusterMiner(data, Options(false)).Mine();
  auto closed = RegClusterMiner(data, Options(true)).Mine();
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(closed.ok());
  std::set<std::string> closed_keys;
  for (const auto& c : *closed) closed_keys.insert(c.Key());
  for (const auto& suppressed : *raw) {
    if (closed_keys.count(suppressed.Key())) continue;
    bool subsumed = false;
    for (const auto& other : *raw) {
      if (OneStepSubsumes(suppressed, other)) {
        subsumed = true;
        break;
      }
    }
    EXPECT_TRUE(subsumed) << "suppressed but not subsumed: "
                          << suppressed.Key();
  }
}

TEST(ClosedChainsTest, MaximalChainSurvives) {
  const auto data = RunningDataset();
  auto closed = RegClusterMiner(data, Options(true)).Mine();
  ASSERT_TRUE(closed.ok());
  bool found = false;
  for (const auto& c : *closed) {
    if (c.chain == regcluster::testing::ExpectedChain()) found = true;
    // The 4-long contiguous prefix with the same genes must be gone.
    const std::vector<int> full = regcluster::testing::ExpectedChain();
    EXPECT_NE(c.chain, std::vector<int>(full.begin(), full.end() - 1));
  }
  EXPECT_TRUE(found);
}

TEST(ClosedChainsTest, OutputsStillValidateOnSynthetic) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 150;
  cfg.num_conditions = 16;
  cfg.num_clusters = 3;
  cfg.avg_cluster_genes_fraction = 0.06;
  cfg.seed = 2025;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  MinerOptions o;
  o.min_genes = 5;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.02;
  o.closed_chains_only = true;
  auto closed = RegClusterMiner(ds->data, o).Mine();
  ASSERT_TRUE(closed.ok());
  ASSERT_FALSE(closed->empty());
  std::string why;
  for (const auto& c : *closed) {
    ASSERT_TRUE(ValidateRegCluster(ds->data, c, o.gamma, o.epsilon, &why))
        << why;
  }
}

TEST(ClosedChainsTest, ComposesWithThreads) {
  const auto data = RunningDataset();
  MinerOptions serial = Options(true);
  MinerOptions threaded = serial;
  threaded.num_threads = 4;
  auto a = RegClusterMiner(data, serial).Mine();
  auto b = RegClusterMiner(data, threaded).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
