#include "core/rwave.h"

#include <gtest/gtest.h>

#include "testing/paper_data.h"
#include "util/prng.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::C;
using regcluster::testing::RunningDataset;

// ---------------------------------------------------------------------------
// Golden checks against Figure 3 (RWave^0.15 models of the running dataset).
// gamma_1 = gamma_2 = 0.15 * 30 = 4.5, gamma_3 = 0.15 * 12 = 1.8.
// ---------------------------------------------------------------------------

class RunningExampleRWave : public ::testing::Test {
 protected:
  RunningExampleRWave() : data_(RunningDataset()), waves_(data_, 0.15) {}

  matrix::ExpressionMatrix data_;
  RWaveSet waves_;
};

TEST_F(RunningExampleRWave, GammaAbsMatchesEquation4) {
  EXPECT_DOUBLE_EQ(waves_.model(0).gamma_abs(), 4.5);
  EXPECT_DOUBLE_EQ(waves_.model(1).gamma_abs(), 4.5);
  EXPECT_DOUBLE_EQ(waves_.model(2).gamma_abs(), 1.8);
}

TEST_F(RunningExampleRWave, G1SortedOrder) {
  // g1 values: c7(-15) c2(-14.5) c9(-5) c10(-5) c5(0) c8(0) c1(10)
  // c4(10.5) c6(14.5) c3(15); ties broken by condition id.
  const RWaveModel& w = waves_.model(0);
  const std::vector<int> expected{C(7), C(2), C(9), C(10), C(5),
                                  C(8), C(1), C(4), C(6),  C(3)};
  for (int p = 0; p < 10; ++p) {
    EXPECT_EQ(w.condition_at(p), expected[static_cast<size_t>(p)]) << p;
  }
}

TEST_F(RunningExampleRWave, G1Pointers) {
  // Bordering pointers in position coordinates (c2<-c9), (c10<-c5),
  // (c8<-c1), (c1<-c3).  (The paper's figure shows the tail of the third
  // pointer at c5; c5 and c8 are tied at value 0 so the certified regulation
  // relationships are identical.)
  const RWaveModel& w = waves_.model(0);
  const std::vector<RegulationPointer> expected{{1, 2}, {3, 4}, {5, 6}, {6, 9}};
  EXPECT_EQ(w.pointers(), expected);
}

TEST_F(RunningExampleRWave, G2Pointers) {
  // g2 sorted: c2(15) c3(15) c1(20) c10(20) c5(30) c9(35) c8(43) c4(43.5)
  // c6(44) c7(45); pointers (c3<-c1), (c10<-c5), (c5<-c9), (c9<-c8).
  const RWaveModel& w = waves_.model(1);
  const std::vector<RegulationPointer> expected{{1, 2}, {3, 4}, {4, 5}, {5, 6}};
  EXPECT_EQ(w.pointers(), expected);
}

TEST_F(RunningExampleRWave, G3PointersMirrorG1) {
  // g3 has the same rank structure as g1 (Figure 2): same pointer positions.
  const std::vector<RegulationPointer> expected{{1, 2}, {3, 4}, {5, 6}, {6, 9}};
  EXPECT_EQ(waves_.model(2).pointers(), expected);
}

TEST_F(RunningExampleRWave, PredecessorsOfC6ForG1) {
  // Paper, Section 3.1: the regulation predecessors of c6 for g1 are
  // exactly c7, c2, c10, c9, c8 and c5.
  const RWaveModel& w = waves_.model(0);
  for (int paper_c : {7, 2, 10, 9, 8, 5}) {
    EXPECT_TRUE(w.IsUpRegulated(C(paper_c), C(6))) << "c" << paper_c;
  }
  for (int paper_c : {1, 4, 3}) {
    EXPECT_FALSE(w.IsUpRegulated(C(paper_c), C(6))) << "c" << paper_c;
  }
}

TEST_F(RunningExampleRWave, NoSuccessorsOfC6ForG1) {
  // "there are no regulation successors of c6" -- no pointer after it.
  const RWaveModel& w = waves_.model(0);
  EXPECT_EQ(w.FirstSuccessorPos(w.position(C(6))), -1);
}

TEST_F(RunningExampleRWave, ChainOfFigure2IsLinkedForAllGenes) {
  // c7 <- c9 <- c5 <- c1 <- c3 upward for g1, g3; downward for g2.
  const std::vector<int> chain{C(7), C(9), C(5), C(1), C(3)};
  for (int g : {0, 2}) {
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      EXPECT_TRUE(waves_.model(g).IsUpRegulated(chain[k], chain[k + 1]))
          << "g" << g + 1 << " step " << k;
    }
  }
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    EXPECT_TRUE(waves_.model(1).IsUpRegulated(chain[k + 1], chain[k]))
        << "g2 step " << k;
  }
}

TEST_F(RunningExampleRWave, RegulationAgreesWithDirectDifferences) {
  // Lemma 3.1 exhaustively: pointer lookup == direct value comparison.
  for (int g = 0; g < 3; ++g) {
    const RWaveModel& w = waves_.model(g);
    for (int a = 0; a < 10; ++a) {
      for (int b = 0; b < 10; ++b) {
        const bool direct = data_(g, b) - data_(g, a) > w.gamma_abs();
        EXPECT_EQ(w.IsUpRegulated(a, b), direct)
            << "g" << g + 1 << " c" << a + 1 << " c" << b + 1;
      }
    }
  }
}

TEST_F(RunningExampleRWave, MaxChainLengths) {
  // g1 can run a 5-chain upward from c7 and g2 a 5-chain downward from c7.
  const RWaveModel& w1 = waves_.model(0);
  EXPECT_EQ(w1.MaxChainUp(w1.position(C(7))), 5);
  const RWaveModel& w2 = waves_.model(1);
  EXPECT_EQ(w2.MaxChainDown(w2.position(C(7))), 5);
  EXPECT_EQ(w2.MaxChainUp(w2.position(C(2))), 5);
  // From the top position no upward chain longer than 1 exists.
  EXPECT_EQ(w1.MaxChainUp(w1.position(C(3))), 1);
}

// ---------------------------------------------------------------------------
// Structural properties on small hand-built inputs.
// ---------------------------------------------------------------------------

TEST(RWaveModelTest, EmptyAndSingle) {
  const double one[] = {3.0};
  RWaveModel w = RWaveModel::Build(one, 1, 0.5);
  EXPECT_EQ(w.num_conditions(), 1);
  EXPECT_TRUE(w.pointers().empty());
  EXPECT_EQ(w.MaxChainUp(0), 1);
  EXPECT_EQ(w.MaxChainDown(0), 1);

  RWaveModel empty = RWaveModel::Build(one, 0, 0.5);
  EXPECT_EQ(empty.num_conditions(), 0);
}

TEST(RWaveModelTest, GammaZeroLinksAllDistinctValues) {
  const double v[] = {3.0, 1.0, 2.0};
  RWaveModel w = RWaveModel::Build(v, 3, 0.0);
  EXPECT_TRUE(w.IsUpRegulated(1, 2));
  EXPECT_TRUE(w.IsUpRegulated(2, 0));
  EXPECT_TRUE(w.IsUpRegulated(1, 0));
  EXPECT_FALSE(w.IsUpRegulated(0, 1));
  EXPECT_EQ(w.MaxChainUp(0), 3);
}

TEST(RWaveModelTest, GammaZeroTiesAreNotRegulated) {
  // Regulation is strict (Eq. 3): equal values never regulate.
  const double v[] = {1.0, 1.0};
  RWaveModel w = RWaveModel::Build(v, 2, 0.0);
  EXPECT_FALSE(w.IsUpRegulated(0, 1));
  EXPECT_FALSE(w.IsUpRegulated(1, 0));
  EXPECT_TRUE(w.pointers().empty());
}

TEST(RWaveModelTest, LargeGammaYieldsNoPointers) {
  const double v[] = {0.0, 1.0, 2.0, 3.0};
  RWaveModel w = RWaveModel::Build(v, 4, 10.0);
  EXPECT_TRUE(w.pointers().empty());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(w.MaxChainUp(p), 1);
    EXPECT_EQ(w.MaxChainDown(p), 1);
  }
}

TEST(RWaveModelTest, PointersAreStrictlyIncreasingAndNonEmbedded) {
  util::Prng prng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(20);
    for (double& x : v) x = prng.Uniform(0, 10);
    RWaveModel w = RWaveModel::Build(v.data(), 20, 1.0);
    const auto& ptrs = w.pointers();
    for (size_t i = 0; i < ptrs.size(); ++i) {
      EXPECT_LT(ptrs[i].tail_pos, ptrs[i].head_pos);
      if (i > 0) {
        EXPECT_LT(ptrs[i - 1].tail_pos, ptrs[i].tail_pos);
        EXPECT_LT(ptrs[i - 1].head_pos, ptrs[i].head_pos);
      }
      // Bordering (Def 3.1): the pointed pair itself is regulated ...
      EXPECT_GT(w.value_at(ptrs[i].head_pos) - w.value_at(ptrs[i].tail_pos),
                w.gamma_abs());
      // ... and it is tight: (tail+1, head) is not a regulated pair.
      if (ptrs[i].tail_pos + 1 < ptrs[i].head_pos) {
        EXPECT_LE(
            w.value_at(ptrs[i].head_pos) - w.value_at(ptrs[i].tail_pos + 1),
            w.gamma_abs());
      }
    }
  }
}

// Property sweep: the Lemma 3.1 lookup must agree with direct pairwise
// comparison for random inputs at many gamma levels.
class RWavePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(RWavePropertyTest, LookupMatchesDirectComparison) {
  const double gamma = GetParam();
  util::Prng prng(1234 + static_cast<uint64_t>(gamma * 1000));
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(prng.UniformInt(1, 25));
    std::vector<double> v(static_cast<size_t>(n));
    for (double& x : v) {
      // Mix continuous values and deliberate ties.
      x = prng.Bernoulli(0.3) ? prng.UniformInt(0, 5)
                              : prng.Uniform(0, 10);
    }
    double lo = v[0], hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    const double gamma_abs = gamma * (hi - lo);
    RWaveModel w = RWaveModel::Build(v.data(), n, gamma_abs);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const bool direct = v[static_cast<size_t>(b)] -
                                v[static_cast<size_t>(a)] >
                            gamma_abs;
        ASSERT_EQ(w.IsUpRegulated(a, b), direct)
            << "gamma=" << gamma << " trial=" << trial << " a=" << a
            << " b=" << b;
      }
    }
  }
}

TEST_P(RWavePropertyTest, MaxChainMatchesBruteForce) {
  const double gamma = GetParam();
  util::Prng prng(777 + static_cast<uint64_t>(gamma * 1000));
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(prng.UniformInt(1, 14));
    std::vector<double> v(static_cast<size_t>(n));
    for (double& x : v) x = prng.Uniform(0, 10);
    double lo = v[0], hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    const double gamma_abs = gamma * (hi - lo);
    RWaveModel w = RWaveModel::Build(v.data(), n, gamma_abs);

    // Brute-force longest regulated chain from each sorted position, upward:
    // DP over positions right-to-left where a step p->q needs
    // value(q) - value(p) > gamma_abs.
    std::vector<int> best_up(static_cast<size_t>(n), 1);
    for (int p = n - 1; p >= 0; --p) {
      for (int q = p + 1; q < n; ++q) {
        if (w.value_at(q) - w.value_at(p) > gamma_abs) {
          best_up[static_cast<size_t>(p)] =
              std::max(best_up[static_cast<size_t>(p)],
                       1 + best_up[static_cast<size_t>(q)]);
        }
      }
    }
    std::vector<int> best_down(static_cast<size_t>(n), 1);
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < p; ++q) {
        if (w.value_at(p) - w.value_at(q) > gamma_abs) {
          best_down[static_cast<size_t>(p)] =
              std::max(best_down[static_cast<size_t>(p)],
                       1 + best_down[static_cast<size_t>(q)]);
        }
      }
    }
    for (int p = 0; p < n; ++p) {
      ASSERT_EQ(w.MaxChainUp(p), best_up[static_cast<size_t>(p)])
          << "up gamma=" << gamma << " trial=" << trial << " pos=" << p;
      ASSERT_EQ(w.MaxChainDown(p), best_down[static_cast<size_t>(p)])
          << "down gamma=" << gamma << " trial=" << trial << " pos=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GammaSweep, RWavePropertyTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.15, 0.25, 0.5,
                                           1.0));

}  // namespace
}  // namespace core
}  // namespace regcluster
