#include "core/miner.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "matrix/expression_matrix.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::RunningDataset;

TEST(MinerOptionsValidation, RejectsBadParameters) {
  const auto data = RunningDataset();
  {
    MinerOptions o;
    o.min_genes = 0;
    EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  }
  {
    MinerOptions o;
    o.min_conditions = 1;
    EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  }
  {
    MinerOptions o;
    o.gamma = -0.1;
    EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  }
  {
    MinerOptions o;
    o.gamma = 1.5;
    EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  }
  {
    MinerOptions o;
    o.epsilon = -1.0;
    EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  }
}

TEST(MinerOptionsValidation, RejectsMissingValues) {
  auto m = *matrix::ExpressionMatrix::FromRows(
      {{1, std::numeric_limits<double>::quiet_NaN(), 3}, {4, 5, 6}});
  MinerOptions o;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(MinerBasics, EmptyMatrixYieldsNothing) {
  matrix::ExpressionMatrix m(0, 5);
  MinerOptions o;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MinerBasics, PurePositiveShiftingPattern) {
  // Two genes, pure shifting: d2 = d1 + 10.  One chain of all 4 conditions.
  auto m = *matrix::ExpressionMatrix::FromRows(
      {{0, 10, 20, 30}, {10, 20, 30, 40}});
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 4;
  o.gamma = 0.2;
  o.epsilon = 0.0;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].chain, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ((*result)[0].p_genes, (std::vector<int>{0, 1}));
  EXPECT_TRUE((*result)[0].n_genes.empty());
}

TEST(MinerBasics, PureScalingPattern) {
  // d2 = 3 * d1: pure scaling, also a shifting-and-scaling pattern.
  auto m = *matrix::ExpressionMatrix::FromRows(
      {{1, 2, 4, 8}, {3, 6, 12, 24}});
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 4;
  o.gamma = 0.1;
  o.epsilon = 1e-9;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].p_genes, (std::vector<int>{0, 1}));
}

TEST(MinerBasics, ShiftAndScaleWithNegativeMember) {
  // d2 = 2*d1 + 5 (positive), d3 = -1.5*d1 + 100 (negative).
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 25, 40},
      {5, 25, 55, 85},
      {100, 85, 62.5, 40},
  });
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  o.gamma = 0.2;
  o.epsilon = 1e-9;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].p_genes, (std::vector<int>{0, 1}));
  EXPECT_EQ((*result)[0].n_genes, (std::vector<int>{2}));
}

TEST(MinerBasics, AllNegativePairEmittedOnce) {
  // Two anti-correlated genes: whichever direction is representative, the
  // cluster must appear exactly once with a 1/1 split.
  auto m = *matrix::ExpressionMatrix::FromRows(
      {{0, 10, 20, 30}, {30, 20, 10, 0}});
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 4;
  o.gamma = 0.2;
  o.epsilon = 0.0;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].p_genes.size(), 1u);
  EXPECT_EQ((*result)[0].n_genes.size(), 1u);
}

TEST(MinerBasics, EpsilonZeroSplitsImperfectGroups) {
  // Gene 2's middle step deviates: with epsilon=0 it cannot join.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 20, 30},
      {0, 10, 20, 30},
      {0, 10, 22, 30},
  });
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 4;
  o.gamma = 0.2;
  o.epsilon = 0.0;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].p_genes, (std::vector<int>{0, 1}));
}

TEST(MinerBasics, LargerEpsilonMergesThem) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 20, 30},
      {0, 10, 20, 30},
      {0, 10, 22, 30},
  });
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  o.gamma = 0.2;
  o.epsilon = 0.5;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].p_genes, (std::vector<int>{0, 1, 2}));
}

TEST(MinerBasics, GammaBlocksSmallVariations) {
  // A "flat" gene whose variation is small relative to its range must not
  // form chains under a meaningful gamma -- the Regulation Test motivation.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 1, 2, 100},  // range 100; steps 1 are << gamma*range
      {0, 1, 2, 100},
  });
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.gamma = 0.1;
  o.epsilon = 1.0;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());  // only chains via c3 of length 2 possible
}

TEST(MinerBasics, MaxClustersCapRespected) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 20, 30, 40},
      {0, 10, 20, 30, 40},
      {5, 15, 25, 35, 45},
  });
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 2;
  o.gamma = 0.1;
  o.epsilon = 0.1;
  o.max_clusters = 3;
  auto result = RegClusterMiner(m, o).Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->size(), 3u);
}

TEST(MinerBasics, MaxNodesCapTerminates) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 20, 30, 40},
      {0, 10, 20, 30, 40},
  });
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 2;
  o.gamma = 0.1;
  o.epsilon = 0.1;
  o.max_nodes = 2;
  RegClusterMiner miner(m, o);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(miner.stats().nodes_expanded, 2);
}

TEST(MinerPrunings, DisablingPruningsPreservesOutput) {
  // Prunings are pure optimizations (except 3b dedup); disabling 1, 2 and
  // 3a must yield the same cluster set on the running example.
  const auto data = RunningDataset();
  MinerOptions base;
  base.min_genes = 3;
  base.min_conditions = 5;
  base.gamma = 0.15;
  base.epsilon = 0.1;
  auto reference = RegClusterMiner(data, base).Mine();
  ASSERT_TRUE(reference.ok());

  for (int which = 0; which < 3; ++which) {
    MinerOptions o = base;
    if (which == 0) o.prune_min_genes = false;
    if (which == 1) o.prune_min_conds = false;
    if (which == 2) o.prune_p_majority = false;
    auto result = RegClusterMiner(data, o).Mine();
    ASSERT_TRUE(result.ok()) << which;
    ASSERT_EQ(result->size(), reference->size()) << "pruning " << which;
    for (size_t i = 0; i < result->size(); ++i) {
      EXPECT_EQ((*result)[i], (*reference)[i]) << "pruning " << which;
    }
  }
}

TEST(MinerPrunings, DisabledPruningsExpandMoreNodes) {
  const auto data = RunningDataset();
  MinerOptions base;
  base.min_genes = 3;
  base.min_conditions = 5;
  base.gamma = 0.15;
  base.epsilon = 0.1;
  RegClusterMiner with(data, base);
  ASSERT_TRUE(with.Mine().ok());

  MinerOptions off = base;
  off.prune_min_conds = false;
  off.prune_p_majority = false;
  off.prune_min_genes = false;
  RegClusterMiner without(data, off);
  ASSERT_TRUE(without.Mine().ok());
  EXPECT_GT(without.stats().nodes_expanded, with.stats().nodes_expanded);
}

TEST(MinerStatsTest, TimersPopulated) {
  const auto data = RunningDataset();
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 5;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  RegClusterMiner miner(data, o);
  ASSERT_TRUE(miner.Mine().ok());
  EXPECT_GE(miner.stats().rwave_build_seconds, 0.0);
  EXPECT_GE(miner.stats().mine_seconds, 0.0);
  EXPECT_GT(miner.stats().extensions_tested, 0);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
