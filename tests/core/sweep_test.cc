// Property tests for the batch parameter-sweep engine (core/sweep.h):
//
//  * every executed sweep point is byte-identical to an independent Mine()
//    at that point's options, at 1/2/4 threads;
//  * index sharing is observable: the engine builds one model per distinct
//    gamma (report.index_builds) and shared runs report stats.index_builds
//    == 0, while share_models=false restores per-run builds;
//  * sweep-level budgets truncate on a run boundary with the PR 3 contract:
//    a deterministic, thread-count-invariant prefix plus first_unfinished
//    as the resume point, and re-running the remaining points completes
//    the grid.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/sweep.h"
#include "matrix/expression_matrix.h"
#include "synth/generator.h"
#include "util/cancellation.h"

namespace regcluster {
namespace core {
namespace {

matrix::ExpressionMatrix TestMatrix() {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 150;
  cfg.num_conditions = 14;
  cfg.num_clusters = 4;
  cfg.avg_cluster_genes_fraction = 0.06;
  cfg.seed = 515;
  auto ds = synth::GenerateSynthetic(cfg);
  EXPECT_TRUE(ds.ok());
  return ds->data;
}

// A small mixed grid: two gamma groups, with MinC/epsilon variation inside
// the 0.1 group (the shared index is built with the group's largest MinC).
std::vector<MinerOptions> TestGrid() {
  MinerOptions base;
  base.min_genes = 5;
  base.epsilon = 0.05;
  std::vector<MinerOptions> points;
  for (double gamma : {0.1, 0.15}) {
    for (int minc : {4, 5}) {
      MinerOptions p = base;
      p.gamma = gamma;
      p.min_conditions = minc;
      points.push_back(p);
    }
  }
  points[1].epsilon = 0.1;  // epsilon variation reuses the same index
  return points;
}

std::vector<RegCluster> IndependentMine(const matrix::ExpressionMatrix& data,
                                        const MinerOptions& point) {
  auto mined = RegClusterMiner(data, point).Mine();
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  return *std::move(mined);
}

class SweepThreads : public ::testing::TestWithParam<int> {};

TEST_P(SweepThreads, EveryPointByteIdenticalToIndependentMine) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<MinerOptions> points = TestGrid();

  SweepOptions sopts;
  sopts.num_threads = GetParam();
  auto report = SweepEngine(data, sopts).Run(points);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->runs.size(), points.size());
  EXPECT_EQ(report->runs_executed, static_cast<int>(points.size()));
  EXPECT_EQ(report->status, MineStatus::kComplete);
  EXPECT_EQ(report->first_unfinished, -1);

  int64_t clusters_total = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepRun& run = report->runs[i];
    ASSERT_TRUE(run.executed) << "point " << i;
    const std::vector<RegCluster> want = IndependentMine(data, points[i]);
    ASSERT_EQ(run.clusters.size(), want.size()) << "point " << i;
    for (size_t c = 0; c < want.size(); ++c) {
      ASSERT_EQ(run.clusters[c], want[c]) << "point " << i << " cluster "
                                          << c;
    }
    clusters_total += static_cast<int64_t>(run.clusters.size());
  }
  EXPECT_GT(clusters_total, 0) << "grid produced no output; test is vacuous";
  EXPECT_EQ(report->clusters_total, clusters_total);
}

INSTANTIATE_TEST_SUITE_P(Threads, SweepThreads, ::testing::Values(1, 2, 4));

TEST(SweepEngineTest, SharesOneIndexPerDistinctGamma) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<MinerOptions> points = TestGrid();  // gammas {0.1, 0.15}

  SweepOptions sopts;
  auto report = SweepEngine(data, sopts).Run(points);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->index_builds, 2);
  EXPECT_GT(report->shared_model_bytes, 0);
  for (const SweepRun& run : report->runs) {
    EXPECT_TRUE(run.used_shared_model);
    EXPECT_EQ(run.stats.index_builds, 0);
    EXPECT_EQ(run.stats.rwave_build_seconds, 0.0);
    EXPECT_EQ(run.stats.index_build_seconds, 0.0);
  }

  SweepOptions unshared;
  unshared.share_models = false;
  auto report2 = SweepEngine(data, unshared).Run(points);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->index_builds, 0);
  EXPECT_EQ(report2->shared_model_bytes, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepRun& run = report2->runs[i];
    EXPECT_FALSE(run.used_shared_model);
    EXPECT_EQ(run.stats.index_builds, 1);
    // Sharing is purely an execution knob: the output is unchanged.
    EXPECT_EQ(run.clusters, report->runs[i].clusters);
  }
}

TEST(SweepEngineTest, NodeBudgetTruncatesOnRunBoundaryAtAnyThreadCount) {
  const matrix::ExpressionMatrix data = TestMatrix();
  const std::vector<MinerOptions> points = TestGrid();

  // Size the budget from the real per-run costs: enough for the first run
  // plus half the second, so the cut lands inside run 1.
  SweepOptions unbounded;
  auto full = SweepEngine(data, unbounded).Run(points);
  ASSERT_TRUE(full.ok());
  const int64_t run0 = full->runs[0].stats.nodes_expanded;
  const int64_t run1 = full->runs[1].stats.nodes_expanded;
  ASSERT_GT(run1, 1);

  int prev_first_unfinished = -2;
  for (int threads : {1, 2, 4}) {
    SweepOptions sopts;
    sopts.num_threads = threads;
    sopts.max_nodes = run0 + run1 / 2;
    auto report = SweepEngine(data, sopts).Run(points);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->status, MineStatus::kTruncated);
    EXPECT_EQ(report->stop_reason, util::StopReason::kNodeBudget);
    EXPECT_EQ(report->first_unfinished, 1);
    EXPECT_EQ(report->runs_executed, 1);
    // Run 0 is complete and untouched by the cut; run 1 is excluded whole.
    EXPECT_EQ(report->runs[0].clusters, full->runs[0].clusters);
    EXPECT_FALSE(report->runs[1].executed);
    EXPECT_TRUE(report->runs[1].clusters.empty());
    // Identical boundary at every thread count.
    if (prev_first_unfinished != -2) {
      EXPECT_EQ(report->first_unfinished, prev_first_unfinished);
    }
    prev_first_unfinished = report->first_unfinished;

    // PR 3 resume contract at sweep granularity: re-run the tail and the
    // concatenation covers the grid exactly.
    const std::vector<MinerOptions> tail(
        points.begin() + report->first_unfinished, points.end());
    auto rest = SweepEngine(data, unbounded).Run(tail);
    ASSERT_TRUE(rest.ok());
    EXPECT_EQ(rest->status, MineStatus::kComplete);
    for (size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(rest->runs[i].clusters,
                full->runs[report->first_unfinished + i].clusters);
    }
  }
}

TEST(SweepEngineTest, PerPointBudgetTruncatesThatRunOnlyAndMatchesMine) {
  const matrix::ExpressionMatrix data = TestMatrix();
  std::vector<MinerOptions> points = TestGrid();
  // Give point 0 its own tight node budget; its truncated output must match
  // the independent truncated mine byte-for-byte, and the sweep continues.
  points[0].max_nodes = 50;

  SweepOptions sopts;
  auto report = SweepEngine(data, sopts).Run(points);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status, MineStatus::kComplete);
  EXPECT_EQ(report->runs_executed, static_cast<int>(points.size()));
  ASSERT_TRUE(report->runs[0].executed);
  EXPECT_EQ(report->runs[0].outcome.status, MineStatus::kTruncated);
  EXPECT_EQ(report->runs[0].outcome.stop_reason,
            util::StopReason::kNodeBudget);
  EXPECT_EQ(report->runs[0].clusters, IndependentMine(data, points[0]));
}

TEST(SweepEngineTest, ZeroDeadlineTruncatesBeforeTheFirstRun) {
  const matrix::ExpressionMatrix data = TestMatrix();
  SweepOptions sopts;
  sopts.deadline_ms = 0.0;
  auto report = SweepEngine(data, sopts).Run(TestGrid());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status, MineStatus::kTruncated);
  EXPECT_EQ(report->stop_reason, util::StopReason::kDeadline);
  EXPECT_EQ(report->runs_executed, 0);
  EXPECT_EQ(report->first_unfinished, 0);
  for (const SweepRun& run : report->runs) EXPECT_FALSE(run.executed);
}

TEST(SweepEngineTest, PreCancelledTokenTruncatesAtTheFirstBoundary) {
  const matrix::ExpressionMatrix data = TestMatrix();
  SweepOptions sopts;
  sopts.cancel_token = std::make_shared<util::CancellationToken>();
  sopts.cancel_token->Cancel(util::StopReason::kCancelled);
  auto report = SweepEngine(data, sopts).Run(TestGrid());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status, MineStatus::kTruncated);
  EXPECT_EQ(report->stop_reason, util::StopReason::kCancelled);
  EXPECT_EQ(report->runs_executed, 0);
  EXPECT_EQ(report->first_unfinished, 0);
}

TEST(SweepEngineTest, InvalidPointIsSoftFailureOthersRun) {
  const matrix::ExpressionMatrix data = TestMatrix();
  std::vector<MinerOptions> points = TestGrid();
  points[2].gamma = 2.0;  // out of range for the range-fraction policy

  SweepOptions sopts;
  auto report = SweepEngine(data, sopts).Run(points);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status, MineStatus::kComplete);
  EXPECT_EQ(report->runs_executed, static_cast<int>(points.size()) - 1);
  EXPECT_FALSE(report->runs[2].status.ok());
  EXPECT_FALSE(report->runs[2].executed);
  for (size_t i = 0; i < points.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(report->runs[i].executed) << i;
    EXPECT_EQ(report->runs[i].clusters, IndependentMine(data, points[i]))
        << i;
  }
}

TEST(SweepEngineTest, EmptyPointListIsAnError) {
  const matrix::ExpressionMatrix data = TestMatrix();
  auto report = SweepEngine(data, SweepOptions{}).Run({});
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace core
}  // namespace regcluster
