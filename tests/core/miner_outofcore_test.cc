// Out-of-core mining differentials: the lazy model-cache path and the
// mmap-backed matrix path must both produce clusters byte-identical to the
// eager resident search at any cache budget and thread count, and resume
// tokens must splice across the paths.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/rwave.h"
#include "matrix/expression_matrix.h"
#include "matrix/store.h"
#include "synth/generator.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace core {
namespace {

synth::SyntheticDataset Dataset() {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 240;
  cfg.num_conditions = 16;
  cfg.num_clusters = 5;
  cfg.avg_cluster_genes_fraction = 0.05;
  cfg.seed = 4242;
  auto ds = synth::GenerateSynthetic(cfg);
  EXPECT_TRUE(ds.ok());
  return *std::move(ds);
}

MinerOptions BaseOptions() {
  MinerOptions o;
  o.min_genes = 4;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.05;
  return o;
}

void ExpectSameClusters(const std::vector<RegCluster>& a,
                        const std::vector<RegCluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "cluster " << i;
}

class CacheBudgetSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int>> {};

TEST_P(CacheBudgetSweep, LazyPathMatchesResident) {
  const auto ds = Dataset();
  const auto [budget, threads] = GetParam();

  auto resident = RegClusterMiner(ds.data, BaseOptions()).Mine();
  ASSERT_TRUE(resident.ok());
  ASSERT_FALSE(resident->empty()) << "differential is vacuous";

  MinerOptions lazy = BaseOptions();
  lazy.model_cache_bytes = budget;
  lazy.num_threads = threads;
  RegClusterMiner miner(ds.data, lazy);
  auto cached = miner.Mine();
  ASSERT_TRUE(cached.ok());
  ExpectSameClusters(*resident, *cached);

  // The lazy path reports cache telemetry; every gene was built at least
  // once during the index bake.
  EXPECT_GE(miner.outcome().model_cache_misses, ds.data.num_genes());
  EXPECT_GT(miner.outcome().model_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, CacheBudgetSweep,
    ::testing::Values(std::make_pair(int64_t{1} << 30, 1),   // unbounded-ish
                      std::make_pair(int64_t{1} << 30, 4),
                      std::make_pair(int64_t{96} << 10, 1),  // partial
                      std::make_pair(int64_t{96} << 10, 4),
                      std::make_pair(int64_t{0}, 1),         // shard floor
                      std::make_pair(int64_t{0}, 4)));

TEST(MinerOutOfCoreTest, MappedMatrixMatchesResident) {
  const auto ds = Dataset();
  const std::string path =
      ::testing::TempDir() + "/outofcore_differential.rgx";
  ASSERT_TRUE(matrix::WriteBinaryMatrix(ds.data, path).ok());
  auto mapped = matrix::MappedMatrix::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();

  auto resident = RegClusterMiner(ds.data, BaseOptions()).Mine();
  ASSERT_TRUE(resident.ok());

  MinerOptions lazy = BaseOptions();
  lazy.model_cache_bytes = 128 << 10;
  RegClusterMiner miner(*mapped, lazy);
  auto from_mapped = miner.Mine();
  ASSERT_TRUE(from_mapped.ok());
  ExpectSameClusters(*resident, *from_mapped);
  if (mapped->is_mapped()) {
    EXPECT_GT(miner.outcome().mapped_bytes, 0);
  }
  std::remove(path.c_str());
}

TEST(MinerOutOfCoreTest, CacheStatsInvariantAcrossIdenticalSerialRuns) {
  // With a serial model build the hit/miss/eviction totals are a pure
  // function of the access sequence -- two identical runs agree exactly.
  const auto ds = Dataset();
  MinerOptions o = BaseOptions();
  o.model_cache_bytes = 64 << 10;
  o.num_threads = 1;

  RegClusterMiner first(ds.data, o);
  RegClusterMiner second(ds.data, o);
  ASSERT_TRUE(first.Mine().ok());
  ASSERT_TRUE(second.Mine().ok());
  EXPECT_EQ(first.outcome().model_cache_hits,
            second.outcome().model_cache_hits);
  EXPECT_EQ(first.outcome().model_cache_misses,
            second.outcome().model_cache_misses);
  EXPECT_EQ(first.outcome().model_cache_evictions,
            second.outcome().model_cache_evictions);
}

TEST(MinerOutOfCoreTest, ResumeTokenSplicesAcrossPaths) {
  // Truncate an eager resident run, then finish it on the out-of-core path:
  // the concatenation must equal the untruncated resident answer.  The
  // semantic hash excludes the cache knobs, so the token is accepted.
  const auto ds = Dataset();
  auto reference = RegClusterMiner(ds.data, BaseOptions()).Mine();
  ASSERT_TRUE(reference.ok());

  MinerOptions budgeted = BaseOptions();
  budgeted.max_nodes = 40;
  RegClusterMiner first(ds.data, budgeted);
  auto head = first.Mine();
  ASSERT_TRUE(head.ok());
  ASSERT_EQ(first.outcome().status, MineStatus::kTruncated);
  ASSERT_TRUE(first.outcome().resume.can_resume());

  MinerOptions rest = BaseOptions();
  rest.model_cache_bytes = 32 << 10;  // continue out-of-core
  rest.num_threads = 2;
  rest.resume = first.outcome().resume;
  RegClusterMiner second(ds.data, rest);
  auto tail = second.Mine();
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(second.outcome().status, MineStatus::kComplete);

  std::vector<RegCluster> spliced = *head;
  spliced.insert(spliced.end(), tail->begin(), tail->end());
  ExpectSameClusters(*reference, spliced);
}

TEST(MinerOutOfCoreTest, EagerPathReportsNoCacheTraffic) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 5;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  RegClusterMiner miner(data, o);
  ASSERT_TRUE(miner.Mine().ok());
  EXPECT_EQ(miner.outcome().model_cache_hits, 0);
  EXPECT_EQ(miner.outcome().model_cache_misses, 0);
  EXPECT_EQ(miner.outcome().model_cache_evictions, 0);
  EXPECT_EQ(miner.outcome().mapped_bytes, 0);
  EXPECT_GT(miner.outcome().model_bytes, 0);
}

TEST(MinerOutOfCoreTest, InvalidShardCountRejected) {
  const auto data = regcluster::testing::RunningDataset();
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 5;
  o.gamma = 0.15;
  o.epsilon = 0.1;
  o.model_cache_bytes = 0;
  o.model_cache_shards = 0;
  auto result = RegClusterMiner(data, o).Mine();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Satellite: the eager bulk model build is byte-identical at any thread
// count (slot-assigned stripes, per-worker scratch).
// ---------------------------------------------------------------------------

void ExpectModelsEqual(const RWaveModel& a, const RWaveModel& b) {
  ASSERT_EQ(a.num_conditions(), b.num_conditions());
  EXPECT_EQ(a.gamma_abs(), b.gamma_abs());
  EXPECT_EQ(a.pointers(), b.pointers());
  for (int p = 0; p < a.num_conditions(); ++p) {
    EXPECT_EQ(a.condition_at(p), b.condition_at(p));
    EXPECT_EQ(a.value_at(p), b.value_at(p));
    EXPECT_EQ(a.MaxChainUp(p), b.MaxChainUp(p));
    EXPECT_EQ(a.MaxChainDown(p), b.MaxChainDown(p));
  }
}

class RWaveSetThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(RWaveSetThreadSweep, ParallelBuildMatchesSerial) {
  const auto ds = Dataset();
  const RWaveSet serial(ds.data, 0.1, 1);
  const RWaveSet parallel(ds.data, 0.1, GetParam());
  ASSERT_EQ(serial.num_genes(), parallel.num_genes());
  for (int g = 0; g < serial.num_genes(); ++g) {
    ExpectModelsEqual(serial.model(g), parallel.model(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RWaveSetThreadSweep,
                         ::testing::Values(0, 2, 4, 8));

}  // namespace
}  // namespace core
}  // namespace regcluster
