#include "core/threshold.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "testing/paper_data.h"
#include "util/math_util.h"

namespace regcluster {
namespace core {
namespace {

using regcluster::testing::RunningDataset;

TEST(GammaPolicyTest, NamesRoundTrip) {
  for (GammaPolicy p :
       {GammaPolicy::kRangeFraction, GammaPolicy::kStdDevFraction,
        GammaPolicy::kMeanFraction, GammaPolicy::kClosestGapFraction,
        GammaPolicy::kAbsolute}) {
    GammaPolicy parsed;
    ASSERT_TRUE(ParseGammaPolicy(GammaPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  GammaPolicy dummy;
  EXPECT_FALSE(ParseGammaPolicy("bogus", &dummy));
}

TEST(AbsoluteGammaTest, RangeFractionMatchesEquation4) {
  const auto data = RunningDataset();
  // gamma_1 = gamma_2 = 0.15 * 30 = 4.5, gamma_3 = 0.15 * 12 = 1.8.
  const GammaSpec spec{GammaPolicy::kRangeFraction, 0.15};
  EXPECT_DOUBLE_EQ(AbsoluteGamma(data, 0, spec), 4.5);
  EXPECT_DOUBLE_EQ(AbsoluteGamma(data, 1, spec), 4.5);
  EXPECT_DOUBLE_EQ(AbsoluteGamma(data, 2, spec), 1.8);
}

TEST(AbsoluteGammaTest, StdDevFraction) {
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 2, 3, 4, 5}});
  const GammaSpec spec{GammaPolicy::kStdDevFraction, 2.0};
  EXPECT_NEAR(AbsoluteGamma(m, 0, spec),
              2.0 * util::StdDev({1, 2, 3, 4, 5}), 1e-12);
}

TEST(AbsoluteGammaTest, MeanFractionUsesAbsoluteMean) {
  auto m = *matrix::ExpressionMatrix::FromRows({{-2, -4, -6}});
  const GammaSpec spec{GammaPolicy::kMeanFraction, 0.5};
  EXPECT_DOUBLE_EQ(AbsoluteGamma(m, 0, spec), 0.5 * 4.0);
}

TEST(AbsoluteGammaTest, ClosestGapIsMeanAdjacentGap) {
  auto m = *matrix::ExpressionMatrix::FromRows({{10, 0, 1, 3}});
  // sorted: 0 1 3 10; gaps 1, 2, 7; mean 10/3.
  const GammaSpec spec{GammaPolicy::kClosestGapFraction, 1.0};
  EXPECT_NEAR(AbsoluteGamma(m, 0, spec), 10.0 / 3.0, 1e-12);
}

TEST(AbsoluteGammaTest, AbsoluteIgnoresProfile) {
  const auto data = RunningDataset();
  const GammaSpec spec{GammaPolicy::kAbsolute, 7.25};
  for (int g = 0; g < 3; ++g) {
    EXPECT_DOUBLE_EQ(AbsoluteGamma(data, g, spec), 7.25);
  }
}

TEST(AbsoluteGammaTest, DegenerateRows) {
  auto constant = *matrix::ExpressionMatrix::FromRows({{5, 5, 5}});
  EXPECT_DOUBLE_EQ(
      AbsoluteGamma(constant, 0, {GammaPolicy::kRangeFraction, 0.3}), 0.0);
  auto nan_row = *matrix::ExpressionMatrix::FromRows(
      {{std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_DOUBLE_EQ(
      AbsoluteGamma(nan_row, 0, {GammaPolicy::kStdDevFraction, 0.3}), 0.0);
}

TEST(MinerGammaPolicyTest, AbsolutePolicyMatchesEquivalentRelativeRun) {
  // On the running dataset an absolute gamma of 4.5 equals the relative
  // 0.15 for g1/g2 but is stricter for g3 (whose range-based gamma is 1.8):
  // g3's chain steps (2, 2, 4, 2) no longer clear the bar, so the paper
  // cluster disappears.
  const auto data = RunningDataset();
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 5;
  o.gamma_policy = GammaPolicy::kAbsolute;
  o.gamma = 4.5;
  o.epsilon = 0.1;
  auto result = RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());

  // At an absolute threshold below g3's smallest step the cluster returns.
  o.gamma = 1.5;
  o.min_genes = 3;
  auto relaxed = RegClusterMiner(data, o).Mine();
  ASSERT_TRUE(relaxed.ok());
  bool found = false;
  for (const RegCluster& c : *relaxed) {
    if (c.chain == regcluster::testing::ExpectedChain()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MinerGammaPolicyTest, OutputsValidateUnderTheirPolicy) {
  const auto data = RunningDataset();
  for (GammaPolicy policy :
       {GammaPolicy::kStdDevFraction, GammaPolicy::kMeanFraction,
        GammaPolicy::kClosestGapFraction}) {
    MinerOptions o;
    o.min_genes = 2;
    o.min_conditions = 3;
    o.gamma_policy = policy;
    o.gamma = 0.3;
    o.epsilon = 0.2;
    auto result = RegClusterMiner(data, o).Mine();
    ASSERT_TRUE(result.ok()) << GammaPolicyName(policy);
    std::string why;
    for (const RegCluster& c : *result) {
      EXPECT_TRUE(ValidateRegCluster(data, c, GammaSpec{policy, o.gamma},
                                     o.epsilon, &why))
          << GammaPolicyName(policy) << ": " << why;
    }
  }
}

TEST(MinerGammaPolicyTest, RelativeGammaAboveOneRejected) {
  const auto data = RunningDataset();
  MinerOptions o;
  o.gamma = 1.5;
  EXPECT_FALSE(RegClusterMiner(data, o).Mine().ok());
  // ... but fine for the absolute policy.
  o.gamma_policy = GammaPolicy::kAbsolute;
  EXPECT_TRUE(RegClusterMiner(data, o).Mine().ok());
}

}  // namespace
}  // namespace core
}  // namespace regcluster
