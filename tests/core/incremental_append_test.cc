// Append-equivalence battery for incremental time-course mining
// (io/incremental.h).  The contract under test: after ANY sequence of
// condition appends, MineIncremental's clusters and every deterministic
// MinerStats counter are byte-identical to a from-scratch
// RegClusterMiner::Mine() over the grown matrix, at any thread count --
// and the delta-updated gamma model / bitmap index are byte-identical to
// ones freshly built at the new width, including across 64-bit word
// boundaries.  A tiny-matrix leg re-checks each step against the
// exhaustive first-principles oracle, so the equivalence is not just
// "incremental == miner" but "incremental == Definition 3.3".

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/rwave_index.h"
#include "core/threshold.h"
#include "io/incremental.h"
#include "matrix/expression_matrix.h"
#include "testing/oracle_miner.h"
#include "util/prng.h"
#include "util/status.h"

namespace regcluster {
namespace io {
namespace {

using core::MinerOptions;
using core::MinerStats;
using core::RegCluster;
using core::RegClusterMiner;
using matrix::ExpressionMatrix;

ExpressionMatrix RandomMatrix(uint64_t seed, int genes, int conds) {
  util::Prng prng(seed);
  ExpressionMatrix m(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  return m;
}

// One appended column of `full`, in the (names, columns) shape
// ExpressionMatrix::AppendConditions takes.
void AppendColumnsFrom(const ExpressionMatrix& full, int first, int count,
                       ExpressionMatrix* prefix) {
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;
  for (int k = 0; k < count; ++k) {
    const int c = first + k;
    names.push_back(full.condition_names()[static_cast<size_t>(c)]);
    std::vector<double> col(static_cast<size_t>(full.num_genes()));
    for (int g = 0; g < full.num_genes(); ++g) col[static_cast<size_t>(g)] = full(g, c);
    columns.push_back(std::move(col));
  }
  ASSERT_TRUE(prefix->AppendConditions(names, columns).ok());
}

// Every deterministic MinerStats field.  Wall-clock fields
// (*_seconds) time the call that produced them and are exempt by
// contract; the *_ns phase profile is only populated under
// profile_phases, which the incremental splice forbids.
void ExpectStatsEqual(const MinerStats& got, const MinerStats& want,
                      const std::string& where) {
  EXPECT_EQ(got.nodes_expanded, want.nodes_expanded) << where;
  EXPECT_EQ(got.extensions_tested, want.extensions_tested) << where;
  EXPECT_EQ(got.pruned_min_genes, want.pruned_min_genes) << where;
  EXPECT_EQ(got.pruned_p_majority, want.pruned_p_majority) << where;
  EXPECT_EQ(got.pruned_duplicate, want.pruned_duplicate) << where;
  EXPECT_EQ(got.pruned_coherence, want.pruned_coherence) << where;
  EXPECT_EQ(got.genes_dropped_min_conds, want.genes_dropped_min_conds) << where;
  EXPECT_EQ(got.clusters_emitted, want.clusters_emitted) << where;
  EXPECT_EQ(got.index_builds, want.index_builds) << where;
  EXPECT_EQ(got.index_word_ops, want.index_word_ops) << where;
  EXPECT_EQ(got.coherence_divide_calls, want.coherence_divide_calls) << where;
  EXPECT_EQ(got.coherence_scores, want.coherence_scores) << where;
  EXPECT_EQ(got.dedup_probes, want.dedup_probes) << where;
}

void ExpectClustersEqual(const std::vector<RegCluster>& got,
                         const std::vector<RegCluster>& want,
                         const std::string& where) {
  ASSERT_EQ(got.size(), want.size()) << where;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << where << " cluster " << i;
  }
}

// From-scratch reference: a plain Mine() over `data` under `options`,
// returning (clusters, stats).
struct Reference {
  std::vector<RegCluster> clusters;
  MinerStats stats;
};

Reference FromScratch(const ExpressionMatrix& data,
                      const MinerOptions& options) {
  RegClusterMiner miner(data, options);
  auto clusters = miner.Mine();
  EXPECT_TRUE(clusters.ok()) << clusters.status().ToString();
  Reference ref;
  if (clusters.ok()) ref.clusters = *std::move(clusters);
  ref.stats = miner.stats();
  return ref;
}

// Runs a whole append chain -- MineInitial on the first `start` columns of
// `full`, then appends in steps of `k` -- comparing clusters and stats
// against from-scratch mines at every width, threading the durable state
// AND the in-process model so both the UpdateAppend delta path and the
// splice logic are exercised.  Records the encoded state bytes at every
// step in `encoded` so callers can pin cross-thread byte-identity.
void RunChain(const ExpressionMatrix& full, int start, int k,
              const MinerOptions& options, const std::string& tag,
              std::vector<std::string>* encoded) {
  encoded->clear();
  std::vector<int> all_genes, prefix_conds;
  for (int g = 0; g < full.num_genes(); ++g) all_genes.push_back(g);
  for (int c = 0; c < start; ++c) prefix_conds.push_back(c);
  ExpressionMatrix grown = full.Submatrix(all_genes, prefix_conds);

  auto result = MineInitial(grown, options);
  ASSERT_TRUE(result.ok()) << tag << ": " << result.status().ToString();
  {
    const Reference ref = FromScratch(grown, options);
    ExpectClustersEqual(result->clusters, ref.clusters, tag + " seed");
    ExpectStatsEqual(result->stats, ref.stats, tag + " seed");
  }
  encoded->push_back(EncodeIncrementalState(result->state));

  int width = start;
  while (width < full.num_conditions()) {
    const int step = std::min(k, full.num_conditions() - width);
    AppendColumnsFrom(full, width, step, &grown);
    const int first_new = width;
    width += step;
    const std::string where =
        tag + " width " + std::to_string(width) + " (+" + std::to_string(step) + ")";

    auto next = MineIncremental(grown, first_new, options, result->state,
                                result->model);
    ASSERT_TRUE(next.ok()) << where << ": " << next.status().ToString();
    EXPECT_EQ(next->roots_remined + next->roots_spliced, width) << where;

    const Reference ref = FromScratch(grown, options);
    ExpectClustersEqual(next->clusters, ref.clusters, where);
    ExpectStatsEqual(next->stats, ref.stats, where);
    encoded->push_back(EncodeIncrementalState(next->state));
    result = std::move(next);
  }
}

MinerOptions OptionsForSeed(uint64_t seed) {
  MinerOptions o;
  o.min_genes = 2 + static_cast<int>(seed % 2);
  o.min_conditions = 2 + static_cast<int>(seed % 3);
  o.gamma = 0.05 + 0.05 * static_cast<double>(seed % 4);
  o.epsilon = 0.1 * static_cast<double>(seed % 5);
  o.gamma_policy = (seed % 2 == 0) ? core::GammaPolicy::kRangeFraction
                                   : core::GammaPolicy::kAbsolute;
  if (o.gamma_policy == core::GammaPolicy::kAbsolute) o.gamma = 1.0;
  o.remove_dominated = (seed % 3 == 0);
  return o;
}

// Satellite 1, leg (a): 50 PRNG matrices, appended one condition at a
// time; clusters and deterministic counters byte-identical to
// from-scratch at every step.
TEST(IncrementalAppendDifferential, OneAtATimeFiftyMatrices) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const int genes = 6 + static_cast<int>(seed % 5);
    const int conds = 6 + static_cast<int>(seed % 7);
    const int start = 4 + static_cast<int>(seed % 2);
    const ExpressionMatrix full = RandomMatrix(seed, genes, conds);
    MinerOptions o = OptionsForSeed(seed);
    o.num_threads = (seed % 2 == 0) ? 1 : 4;
    std::vector<std::string> enc;
    RunChain(full, start, /*k=*/1, o, "seed " + std::to_string(seed), &enc);
    if (HasFatalFailure()) return;
  }
}

// Satellite 1, leg (b): k-at-a-time appends (k in 2..4) over the same
// matrix family.
TEST(IncrementalAppendDifferential, KAtATimeFiftyMatrices) {
  for (uint64_t seed = 51; seed <= 100; ++seed) {
    const int genes = 6 + static_cast<int>(seed % 5);
    const int conds = 8 + static_cast<int>(seed % 5);
    const int k = 2 + static_cast<int>(seed % 3);
    const ExpressionMatrix full = RandomMatrix(seed, genes, conds);
    MinerOptions o = OptionsForSeed(seed);
    o.num_threads = (seed % 2 == 0) ? 4 : 1;
    std::vector<std::string> enc;
    RunChain(full, /*start=*/4, k, o, "seed " + std::to_string(seed), &enc);
    if (HasFatalFailure()) return;
  }
}

// Cross-thread byte-identity: the durable state produced at every step of
// a chain is the same bytes at 1 and 4 threads.
TEST(IncrementalAppendDifferential, StateBytesIdenticalAcrossThreadCounts) {
  for (uint64_t seed = 201; seed <= 208; ++seed) {
    const ExpressionMatrix full = RandomMatrix(seed, 8, 9);
    MinerOptions o = OptionsForSeed(seed);
    o.num_threads = 1;
    std::vector<std::string> serial;
    RunChain(full, 5, 1, o, "serial " + std::to_string(seed), &serial);
    if (HasFatalFailure()) return;
    o.num_threads = 4;
    std::vector<std::string> parallel;
    RunChain(full, 5, 1, o, "parallel " + std::to_string(seed), &parallel);
    if (HasFatalFailure()) return;
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << "seed " << seed << " step " << i << ": state bytes diverge";
    }
  }
}

// Satellite 1, leg (c): every step of an append chain re-checked against
// the exhaustive oracle, so incremental == Definition 3.3 directly, not
// just incremental == miner.  Tiny matrices only (the oracle is
// exponential in |C|).
TEST(IncrementalAppendDifferential, OracleDifferentialOnTinyMatrices) {
  for (uint64_t seed = 301; seed <= 306; ++seed) {
    const int genes = 4 + static_cast<int>(seed % 3);
    const ExpressionMatrix full = RandomMatrix(seed, genes, 7);
    MinerOptions o;
    o.min_genes = 2;
    o.min_conditions = 2;
    o.gamma = 0.1 + 0.05 * static_cast<double>(seed % 3);
    o.epsilon = 0.2;
    o.num_threads = (seed % 2 == 0) ? 4 : 1;

    testing::OracleOptions oracle;
    oracle.gamma = core::GammaSpec{o.gamma_policy, o.gamma};
    oracle.epsilon = o.epsilon;
    oracle.min_genes = o.min_genes;
    oracle.min_conditions = o.min_conditions;

    std::vector<int> all_genes, prefix_conds;
    for (int g = 0; g < genes; ++g) all_genes.push_back(g);
    for (int c = 0; c < 4; ++c) prefix_conds.push_back(c);
    ExpressionMatrix grown = full.Submatrix(all_genes, prefix_conds);

    auto result = MineInitial(grown, o);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectClustersEqual(testing::Canonicalize(result->clusters),
                        testing::OracleMine(grown, oracle),
                        "seed " + std::to_string(seed) + " oracle seed step");

    for (int width = 4; width < full.num_conditions(); ++width) {
      AppendColumnsFrom(full, width, 1, &grown);
      auto next =
          MineIncremental(grown, width, o, result->state, result->model);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      ExpectClustersEqual(
          testing::Canonicalize(next->clusters),
          testing::OracleMine(grown, oracle),
          "seed " + std::to_string(seed) + " oracle width " +
              std::to_string(width + 1));
      result = std::move(next);
    }
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------
// Model / index delta equivalence.

void ExpectModelsEqual(const core::SharedGammaModel& got,
                       const core::SharedGammaModel& want,
                       const std::string& where) {
  ASSERT_EQ(got.rwaves.size(), want.rwaves.size()) << where;
  for (size_t g = 0; g < got.rwaves.size(); ++g) {
    const core::RWaveModel& a = got.rwaves[g];
    const core::RWaveModel& b = want.rwaves[g];
    const std::string at = where + " gene " + std::to_string(g);
    ASSERT_EQ(a.num_conditions(), b.num_conditions()) << at;
    EXPECT_EQ(a.gamma_abs(), b.gamma_abs()) << at;
    for (int p = 0; p < a.num_conditions(); ++p) {
      ASSERT_EQ(a.condition_at(p), b.condition_at(p)) << at << " pos " << p;
      ASSERT_EQ(a.FirstSuccessorPos(p), b.FirstSuccessorPos(p))
          << at << " pos " << p;
      ASSERT_EQ(a.LastPredecessorPos(p), b.LastPredecessorPos(p))
          << at << " pos " << p;
    }
  }
  const core::RWaveBitmapIndex& ia = got.index;
  const core::RWaveBitmapIndex& ib = want.index;
  ASSERT_EQ(ia.num_genes(), ib.num_genes()) << where;
  ASSERT_EQ(ia.num_conditions(), ib.num_conditions()) << where;
  ASSERT_EQ(ia.num_words(), ib.num_words()) << where;
  for (int g = 0; g < ia.num_genes(); ++g) {
    for (int c = 0; c < ia.num_conditions(); ++c) {
      ASSERT_EQ(ia.position(g, c), ib.position(g, c))
          << where << " gene " << g << " cond " << c;
    }
    for (int p = 0; p < ia.num_conditions(); ++p) {
      const uint64_t* ua = ia.UpCandidates(g, p);
      const uint64_t* ub = ib.UpCandidates(g, p);
      const uint64_t* da = ia.DownCandidates(g, p);
      const uint64_t* db = ib.DownCandidates(g, p);
      for (int w = 0; w < ia.num_words(); ++w) {
        ASSERT_EQ(ua[w], ub[w])
            << where << " up gene " << g << " pos " << p << " word " << w;
        ASSERT_EQ(da[w], db[w])
            << where << " down gene " << g << " pos " << p << " word " << w;
      }
    }
  }
}

// UpdateAppend == fresh Build, under a policy where thresholds never move
// (kAbsolute) and one where the append widens ranges and forces per-gene
// rebuilds (kRangeFraction).
TEST(IncrementalModelDelta, UpdateAppendMatchesFreshBuild) {
  for (const core::GammaPolicy policy :
       {core::GammaPolicy::kAbsolute, core::GammaPolicy::kRangeFraction}) {
    const ExpressionMatrix full = RandomMatrix(777, 10, 12);
    std::vector<int> all_genes, prefix_conds;
    for (int g = 0; g < 10; ++g) all_genes.push_back(g);
    for (int c = 0; c < 9; ++c) prefix_conds.push_back(c);
    ExpressionMatrix grown = full.Submatrix(all_genes, prefix_conds);

    core::GammaSpec spec;
    spec.policy = policy;
    spec.gamma = (policy == core::GammaPolicy::kAbsolute) ? 1.0 : 0.1;
    auto prev = core::SharedGammaModel::Build(grown, spec, /*max_chain_need=*/4);
    ASSERT_NE(prev, nullptr);

    AppendColumnsFrom(full, 9, 3, &grown);
    auto delta = core::SharedGammaModel::UpdateAppend(*prev, grown, 9);
    auto fresh = core::SharedGammaModel::Build(grown, spec, 4);
    ASSERT_NE(delta, nullptr);
    ASSERT_NE(fresh, nullptr);
    ExpectModelsEqual(*delta, *fresh,
                      std::string("policy ") +
                          (policy == core::GammaPolicy::kAbsolute ? "abs"
                                                                  : "range"));
    if (HasFatalFailure()) return;
  }
}

// Satellite 3: bitmap widening across 64-bit word boundaries.  Starting
// widths straddle the boundary (63, 64) and appends of 1 and 2 columns
// produce 63->64, 63->65, 64->65, 64->66; every successor/predecessor
// row must be word-identical to a fresh-built index.
TEST(IncrementalModelDelta, WordBoundaryWideningMatchesFreshIndex) {
  for (const int start : {63, 64}) {
    for (const int step : {1, 2}) {
      const int final_width = start + step;
      const ExpressionMatrix full = RandomMatrix(
          1000 + static_cast<uint64_t>(start * 10 + step), 6, final_width);
      std::vector<int> all_genes, prefix_conds;
      for (int g = 0; g < 6; ++g) all_genes.push_back(g);
      for (int c = 0; c < start; ++c) prefix_conds.push_back(c);
      ExpressionMatrix grown = full.Submatrix(all_genes, prefix_conds);

      core::GammaSpec spec;
      spec.policy = core::GammaPolicy::kAbsolute;
      spec.gamma = 1.0;
      auto prev = core::SharedGammaModel::Build(grown, spec, 4);
      ASSERT_NE(prev, nullptr);
      ASSERT_EQ(prev->index.num_words(), (start + 63) / 64);

      AppendColumnsFrom(full, start, step, &grown);
      auto delta = core::SharedGammaModel::UpdateAppend(*prev, grown, start);
      auto fresh = core::SharedGammaModel::Build(grown, spec, 4);
      ASSERT_NE(delta, nullptr);
      ASSERT_NE(fresh, nullptr);
      ASSERT_EQ(fresh->index.num_words(), (final_width + 63) / 64);
      ExpectModelsEqual(*delta, *fresh,
                        std::to_string(start) + "->" +
                            std::to_string(final_width));
      if (HasFatalFailure()) return;
    }
  }
}

// End-to-end mine across the 64-bit word boundary (64 -> 65 conditions,
// WordsForBits 1 -> 2): the word count grows, which trips the all-dirty
// fallback (per-root index_word_ops scale with the word stride, so no old
// slice may be reused).  On a pure shift pattern no gene ever drops, so a
// dense 64-condition profile would enumerate exponentially many chains;
// instead the shared profile has four flat *levels* (0/10/20/30 with
// gamma 4): conditions within a level never regulate each other, chains
// are at most 4 steps, and the dominant level-0 block keeps the candidate
// fan-out tiny.
TEST(IncrementalModelDelta, MineAcrossWordBoundaryAllDirty) {
  const int genes = 12, start = 64;
  auto level_of = [](int c) { return c < 52 ? 0 : 1 + (c - 52) / 4; };
  ExpressionMatrix grown(genes, start);
  for (int g = 0; g < genes; ++g) {
    const double shift = 1000.0 * g;
    for (int c = 0; c < start; ++c) grown(g, c) = 10.0 * level_of(c) + shift;
  }
  MinerOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  o.gamma = 4.0;
  o.gamma_policy = core::GammaPolicy::kAbsolute;
  o.epsilon = 0.5;

  auto seeded = MineInitial(grown, o);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  ASSERT_GT(seeded->clusters.size(), 0u);

  // The appended condition sits at level 0: within gamma of every level-0
  // root, so WITHOUT word growth most roots would be clean -- any splice
  // here can only come from skipping the fallback.
  std::vector<double> col(static_cast<size_t>(genes));
  for (int g = 0; g < genes; ++g) col[static_cast<size_t>(g)] = 1000.0 * g;
  ASSERT_TRUE(grown.AppendConditions({"c64"}, {col}).ok());

  auto next = MineIncremental(grown, start, o, seeded->state, seeded->model);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->roots_spliced, 0) << "word growth must invalidate all roots";
  EXPECT_EQ(next->roots_remined, start + 1);

  const Reference ref = FromScratch(grown, o);
  ExpectClustersEqual(next->clusters, ref.clusters, "word boundary");
  ExpectStatsEqual(next->stats, ref.stats, "word boundary");
}

// The splice path must actually splice.  A root stays clean iff the
// appended value is within gamma of it in every gene (then the new
// condition is in neither its successor nor predecessor candidates), so a
// shift-pattern matrix whose conditions cluster at flat levels keeps every
// same-level root clean when a new same-level time point arrives -- the
// steady-state time-course shape bench_threads' incremental section times.
TEST(IncrementalModelDelta, ShiftPatternAppendSplicesCleanRoots) {
  const int genes = 10, start = 12;
  // Conditions 0..8 at level 0; 9, 10, 11 at levels 1, 2, 3.
  auto level_of = [](int c) { return c < 9 ? 0 : c - 8; };
  ExpressionMatrix grown(genes, start);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < start; ++c) {
      grown(g, c) = 10.0 * level_of(c) + 1000.0 * g;
    }
  }
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.gamma = 4.0;
  o.gamma_policy = core::GammaPolicy::kAbsolute;
  o.epsilon = 0.5;

  auto seeded = MineInitial(grown, o);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  ASSERT_GT(seeded->clusters.size(), 0u);

  // A new level-0 time point: regulated with the level-1..3 roots only.
  std::vector<double> col(static_cast<size_t>(genes));
  for (int g = 0; g < genes; ++g) col[static_cast<size_t>(g)] = 1000.0 * g;
  ASSERT_TRUE(grown.AppendConditions({"late"}, {col}).ok());

  auto next = MineIncremental(grown, start, o, seeded->state, seeded->model);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->roots_spliced, 9) << "level-0 roots must be spliced";
  EXPECT_EQ(next->roots_remined, 4) << "levels 1-3 plus the appended root";

  const Reference ref = FromScratch(grown, o);
  ExpectClustersEqual(next->clusters, ref.clusters, "shift splice");
  ExpectStatsEqual(next->stats, ref.stats, "shift splice");
}

// ComputeDirtyRoots marks exactly the appended roots plus old roots with a
// new condition directly in some gene's candidate band.
TEST(IncrementalModelDelta, ComputeDirtyRootsMatchesBandMembership) {
  const ExpressionMatrix full = RandomMatrix(31337, 8, 10);
  core::GammaSpec spec;
  spec.gamma = 0.15;
  auto model = core::SharedGammaModel::Build(full, spec, 4);
  ASSERT_NE(model, nullptr);
  const int first_new = 8;

  const std::vector<int> dirty = ComputeDirtyRoots(model->index, first_new);
  ASSERT_FALSE(dirty.empty());
  EXPECT_TRUE(std::is_sorted(dirty.begin(), dirty.end()));
  // Appended roots are always present.
  for (int c = first_new; c < 10; ++c) {
    EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(), c)) << c;
  }
  // An old root is dirty iff some gene has a new-condition bit in its
  // candidate rows at that root -- recomputed here by brute force.
  const core::RWaveBitmapIndex& index = model->index;
  for (int r = 0; r < first_new; ++r) {
    bool expect_dirty = false;
    for (int g = 0; g < index.num_genes() && !expect_dirty; ++g) {
      const int pos = index.position(g, r);
      const uint64_t* up = index.UpCandidates(g, pos);
      const uint64_t* down = index.DownCandidates(g, pos);
      for (int c = first_new; c < index.num_conditions(); ++c) {
        if ((up[c / 64] >> (c % 64)) & 1 || (down[c / 64] >> (c % 64)) & 1) {
          expect_dirty = true;
          break;
        }
      }
    }
    EXPECT_EQ(std::binary_search(dirty.begin(), dirty.end(), r), expect_dirty)
        << "root " << r;
  }
}

// ---------------------------------------------------------------------
// Durable state: round trip, corruption, and precondition checks.

IncrementalState SampleState() {
  const ExpressionMatrix data = RandomMatrix(5150, 7, 8);
  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 2;
  o.gamma = 0.1;
  o.epsilon = 0.3;
  auto result = MineInitial(data, o);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->state;
}

void ExpectStatesEqual(const IncrementalState& a, const IncrementalState& b) {
  EXPECT_EQ(a.semantic_options_hash, b.semantic_options_hash);
  EXPECT_EQ(a.matrix_hash, b.matrix_hash);
  EXPECT_EQ(a.num_genes, b.num_genes);
  EXPECT_EQ(a.num_conditions, b.num_conditions);
  EXPECT_EQ(a.flags, b.flags);
  ASSERT_EQ(a.roots.size(), b.roots.size());
  for (size_t i = 0; i < a.roots.size(); ++i) {
    EXPECT_EQ(a.roots[i].root, b.roots[i].root);
    ExpectStatsEqual(a.roots[i].stats, b.roots[i].stats,
                     "root " + std::to_string(i));
    ExpectClustersEqual(a.roots[i].clusters, b.roots[i].clusters,
                        "root " + std::to_string(i));
  }
}

TEST(IncrementalState, EncodeDecodeRoundTrip) {
  const IncrementalState state = SampleState();
  const std::string bytes = EncodeIncrementalState(state);
  auto decoded = DecodeIncrementalState(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectStatesEqual(state, *decoded);
  // Re-encoding the decoded state reproduces the exact bytes.
  EXPECT_EQ(EncodeIncrementalState(*decoded), bytes);
}

TEST(IncrementalState, FileRoundTrip) {
  const IncrementalState state = SampleState();
  const std::string path = ::testing::TempDir() + "/inc_state_roundtrip.bin";
  ASSERT_TRUE(WriteIncrementalStateFile(path, state).ok());
  auto loaded = LoadIncrementalState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStatesEqual(state, *loaded);
  std::remove(path.c_str());
}

TEST(IncrementalState, EveryMalformedShapeIsCorruption) {
  const std::string bytes = EncodeIncrementalState(SampleState());

  // Truncated preamble.
  EXPECT_EQ(DecodeIncrementalState(bytes.substr(0, 7)).status().code(),
            util::StatusCode::kCorruption);
  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_EQ(DecodeIncrementalState(bad).status().code(),
              util::StatusCode::kCorruption);
  }
  // Version mismatch.
  {
    std::string bad = bytes;
    bad[8] = static_cast<char>(0x7f);
    EXPECT_EQ(DecodeIncrementalState(bad).status().code(),
              util::StatusCode::kCorruption);
  }
  // Endianness mismatch.
  {
    std::string bad = bytes;
    bad[12] ^= 0xff;
    EXPECT_EQ(DecodeIncrementalState(bad).status().code(),
              util::StatusCode::kCorruption);
  }
  // A flipped payload byte fails the record CRC.
  {
    std::string bad = bytes;
    bad[bytes.size() / 2] ^= 0x01;
    EXPECT_EQ(DecodeIncrementalState(bad).status().code(),
              util::StatusCode::kCorruption);
  }
  // Torn tail (mid-record truncation at several depths).
  for (const size_t keep :
       {bytes.size() - 1, bytes.size() - 5, bytes.size() / 2, size_t{20}}) {
    EXPECT_EQ(DecodeIncrementalState(bytes.substr(0, keep)).status().code(),
              util::StatusCode::kCorruption)
        << "keep " << keep;
  }
  // Trailing bytes after the end record.
  EXPECT_EQ(DecodeIncrementalState(bytes + std::string(4, '\0')).status().code(),
            util::StatusCode::kCorruption);
  // The empty string.
  EXPECT_EQ(DecodeIncrementalState("").status().code(),
            util::StatusCode::kCorruption);
}

TEST(IncrementalState, UnspliceableOptionsAreRejected) {
  const ExpressionMatrix data = RandomMatrix(11, 6, 6);
  MinerOptions base;
  base.min_genes = 2;
  base.min_conditions = 2;

  auto expect_invalid = [&](MinerOptions o, const std::string& what) {
    auto r = MineInitial(data, o);
    EXPECT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument) << what;
  };
  {
    MinerOptions o = base;
    o.max_nodes = 100;
    expect_invalid(o, "max_nodes");
  }
  {
    MinerOptions o = base;
    o.max_clusters = 5;
    expect_invalid(o, "max_clusters");
  }
  {
    MinerOptions o = base;
    o.deadline_ms = 1000;
    expect_invalid(o, "deadline_ms");
  }
  {
    MinerOptions o = base;
    o.root_set = {0, 1};
    expect_invalid(o, "root_set");
  }
  {
    MinerOptions o = base;
    o.capture_root_results = true;
    expect_invalid(o, "capture_root_results");
  }
  {
    MinerOptions o = base;
    o.model_cache_bytes = 1 << 20;
    expect_invalid(o, "model_cache_bytes");
  }
}

TEST(IncrementalState, MismatchedPrevIsFailedPrecondition) {
  const ExpressionMatrix full = RandomMatrix(606, 7, 9);
  std::vector<int> all_genes, prefix_conds;
  for (int g = 0; g < 7; ++g) all_genes.push_back(g);
  for (int c = 0; c < 7; ++c) prefix_conds.push_back(c);
  ExpressionMatrix grown = full.Submatrix(all_genes, prefix_conds);

  MinerOptions o;
  o.min_genes = 2;
  o.min_conditions = 2;
  auto seeded = MineInitial(grown, o);
  ASSERT_TRUE(seeded.ok());
  AppendColumnsFrom(full, 7, 2, &grown);

  auto expect_precondition = [&](const ExpressionMatrix& data, int first_new,
                                 const MinerOptions& opts,
                                 const IncrementalState& prev,
                                 const std::string& what) {
    auto r = MineIncremental(data, first_new, opts, prev);
    EXPECT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition) << what;
  };

  // Different semantic options than the state was mined under.
  {
    MinerOptions changed = o;
    changed.epsilon += 0.25;
    expect_precondition(grown, 7, changed, seeded->state, "options hash");
  }
  // Dominance flag flipped relative to the recorded state.
  {
    MinerOptions changed = o;
    changed.remove_dominated = true;
    expect_precondition(grown, 7, changed, seeded->state, "dominance flag");
  }
  // A mutated old cell: the prefix is no longer the mined matrix.
  {
    ExpressionMatrix tampered = grown;
    tampered(3, 2) += 1.0;
    expect_precondition(tampered, 7, o, seeded->state, "prefix content");
  }
  // Wrong gene count.
  {
    std::vector<int> fewer = {0, 1, 2, 3, 4, 5};
    std::vector<int> conds;
    for (int c = 0; c < 9; ++c) conds.push_back(c);
    expect_precondition(full.Submatrix(fewer, conds), 7, o, seeded->state,
                        "gene count");
  }
  // first_new inconsistent with the recorded width.
  expect_precondition(grown, 6, o, seeded->state, "first_new");
  // Execution knobs (threads) are NOT part of the identity: same state,
  // different thread count must be accepted.
  {
    MinerOptions threaded = o;
    threaded.num_threads = 4;
    auto r = MineIncremental(grown, 7, threaded, seeded->state);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

}  // namespace
}  // namespace io
}  // namespace regcluster
