// Differential test: RWaveBitmapIndex is a pure re-encoding of RWaveModel,
// so every query it serves must agree with the model it was baked from.
// The miner's bit-identical-output guarantee rests on this equivalence, so
// it is checked the blunt way -- randomized profiles, all-pairs regulation
// queries, full successor/predecessor set comparison, and eligibility rows
// against the MaxChainUp/Down tables -- across the gamma range and across
// condition counts straddling the 64-bit word boundary.

#include "core/rwave_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "core/rwave.h"
#include "util/bitset.h"
#include "util/prng.h"
#include "util/simd/dispatch.h"

namespace regcluster {
namespace core {
namespace {

constexpr int kMaxNeed = 6;  // largest MinC exercised by the queries below

std::vector<double> RandomProfile(int n, util::Prng* prng, bool quantized) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) {
    const double u = prng->Uniform(0.0, 10.0);
    // Quantized profiles force ties, the case where bordering-pointer
    // construction and gamma = 0 are most delicate.
    x = quantized ? std::round(u * 2.0) / 2.0 : u;
  }
  return v;
}

void CheckGeneAgainstModel(const RWaveBitmapIndex& index,
                           const RWaveModel& model, int gene, int conds) {
  // position() must be the model's position table verbatim.
  for (int c = 0; c < conds; ++c) {
    ASSERT_EQ(index.position(gene, c), model.position(c));
  }

  // All-pairs regulation queries through the bit-probe path.
  for (int lo = 0; lo < conds; ++lo) {
    for (int hi = 0; hi < conds; ++hi) {
      ASSERT_EQ(index.IsUpRegulated(gene, lo, hi),
                model.IsUpRegulated(lo, hi))
          << "gene " << gene << " pair (" << lo << ", " << hi << ")";
    }
  }

  // Successor / predecessor rows: exactly the set the model reports.
  const int words = index.num_words();
  for (int p = 0; p < conds; ++p) {
    const int at = model.condition_at(p);
    std::vector<int> up_bits, down_bits;
    util::ForEachSetBit(index.UpCandidates(gene, p), words,
                        [&](int c) { up_bits.push_back(c); });
    util::ForEachSetBit(index.DownCandidates(gene, p), words,
                        [&](int c) { down_bits.push_back(c); });
    std::vector<int> up_ref, down_ref;
    for (int c = 0; c < conds; ++c) {
      if (model.IsUpRegulated(at, c)) up_ref.push_back(c);
      if (model.IsUpRegulated(c, at)) down_ref.push_back(c);
    }
    ASSERT_EQ(up_bits, up_ref) << "gene " << gene << " pos " << p;
    ASSERT_EQ(down_bits, down_ref) << "gene " << gene << " pos " << p;
  }

  // Eligibility rows vs the longest-chain tables.  need <= 1 is always
  // satisfiable (any condition starts a chain of length 1).
  for (int need = 0; need <= kMaxNeed; ++need) {
    for (int c = 0; c < conds; ++c) {
      const int p = model.position(c);
      const bool up_ref = need <= 1 || model.MaxChainUp(p) >= need;
      const bool down_ref = need <= 1 || model.MaxChainDown(p) >= need;
      ASSERT_EQ(index.ChainEligibleUp(gene, c, need), up_ref)
          << "gene " << gene << " cond " << c << " need " << need;
      ASSERT_EQ(index.ChainEligibleDown(gene, c, need), down_ref)
          << "gene " << gene << " cond " << c << " need " << need;
    }
  }

  // Rows never set bits at or beyond num_conditions (the tail-word
  // invariant every bitwise consumer relies on).
  for (int p = 0; p < conds; ++p) {
    util::ForEachSetBit(index.UpCandidates(gene, p), words,
                        [&](int c) { ASSERT_LT(c, conds); });
  }
  util::ForEachSetBit(index.UpEligible(gene, 0), words,
                      [&](int c) { ASSERT_LT(c, conds); });
}

TEST(RWaveIndexTest, MatchesModelOnRandomGenes) {
  // Condition counts straddle the word boundary (63/64/65) plus the
  // degenerate single-condition model and a three-word case.
  const int kConds[] = {1, 63, 64, 65, 130};
  const double kGammas[] = {0.0, 0.05, 0.3, 1.0};
  const int kGenesPerConfig = 52;  // 52 * 5 * 4 = 1040 genes total

  util::Prng prng(20240805);
  for (int conds : kConds) {
    for (double gamma : kGammas) {
      std::vector<RWaveModel> models;
      std::vector<std::vector<double>> profiles;
      models.reserve(kGenesPerConfig);
      for (int g = 0; g < kGenesPerConfig; ++g) {
        profiles.push_back(RandomProfile(conds, &prng, g % 3 == 0));
        const auto& v = profiles.back();
        const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
        const double gamma_abs = gamma * (*hi - *lo);
        models.push_back(RWaveModel::Build(v.data(), conds, gamma_abs));
      }

      RWaveBitmapIndex index;
      index.Build(models, conds, kMaxNeed);
      ASSERT_EQ(index.num_genes(), kGenesPerConfig);
      ASSERT_EQ(index.num_conditions(), conds);
      ASSERT_EQ(index.num_words(), util::WordsForBits(conds));

      for (int g = 0; g < kGenesPerConfig; ++g) {
        CheckGeneAgainstModel(index, models[static_cast<size_t>(g)], g,
                              conds);
      }
    }
  }
}

// Forced-scalar differential for the index bake: Build() routes its row
// copies through the dispatched SIMD kernels, so the baked tables must be
// word-for-word identical no matter which level is pinned.
TEST(RWaveIndexTest, TablesIdenticalAcrossSimdLevels) {
  const util::simd::Level entry_level = util::simd::CurrentLevel();
  const int conds = 65;  // two words, ragged tail
  util::Prng prng(424243);
  std::vector<RWaveModel> models;
  for (int g = 0; g < 24; ++g) {
    const auto v = RandomProfile(conds, &prng, g % 2 == 0);
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    models.push_back(RWaveModel::Build(v.data(), conds, 0.1 * (*hi - *lo)));
  }

  ASSERT_TRUE(util::simd::SetLevel(util::simd::Level::kScalar).ok());
  RWaveBitmapIndex scalar_index;
  scalar_index.Build(models, conds, kMaxNeed);

  ASSERT_TRUE(util::simd::SetLevel(util::simd::DetectBestLevel()).ok());
  RWaveBitmapIndex best_index;
  best_index.Build(models, conds, kMaxNeed);

  const int words = scalar_index.num_words();
  ASSERT_EQ(words, best_index.num_words());
  const auto expect_rows_equal = [&](const uint64_t* a, const uint64_t* b,
                                     const char* what, int g, int i) {
    ASSERT_EQ(0, std::memcmp(a, b, static_cast<size_t>(words) * 8))
        << what << " gene " << g << " row " << i;
  };
  for (int g = 0; g < static_cast<int>(models.size()); ++g) {
    for (int c = 0; c < conds; ++c) {
      ASSERT_EQ(scalar_index.position(g, c), best_index.position(g, c));
    }
    for (int p = 0; p < conds; ++p) {
      expect_rows_equal(scalar_index.UpCandidates(g, p),
                        best_index.UpCandidates(g, p), "up", g, p);
      expect_rows_equal(scalar_index.DownCandidates(g, p),
                        best_index.DownCandidates(g, p), "down", g, p);
    }
    for (int need = 0; need <= kMaxNeed; ++need) {
      expect_rows_equal(scalar_index.UpEligible(g, need),
                        best_index.UpEligible(g, need), "up-elig", g, need);
      expect_rows_equal(scalar_index.DownEligible(g, need),
                        best_index.DownEligible(g, need), "down-elig", g,
                        need);
    }
  }
  ASSERT_TRUE(util::simd::SetLevel(entry_level).ok());
}

TEST(RWaveIndexTest, OnesRowCoversExactlyTheConditions) {
  util::Prng prng(7);
  for (int conds : {1, 64, 65}) {
    std::vector<RWaveModel> models;
    const auto v = RandomProfile(conds, &prng, false);
    models.push_back(RWaveModel::Build(v.data(), conds, 0.5));
    RWaveBitmapIndex index;
    index.Build(models, conds, 2);
    int count = 0;
    util::ForEachSetBit(index.ones_row(), index.num_words(), [&](int c) {
      EXPECT_LT(c, conds);
      ++count;
    });
    EXPECT_EQ(count, conds);
  }
}

TEST(RWaveIndexTest, NeedIsClampedIntoBuiltRange) {
  util::Prng prng(11);
  const int conds = 20;
  std::vector<RWaveModel> models;
  const auto v = RandomProfile(conds, &prng, false);
  models.push_back(RWaveModel::Build(v.data(), conds, 0.0));
  RWaveBitmapIndex index;
  index.Build(models, conds, 4);
  for (int c = 0; c < conds; ++c) {
    // Below range -> the all-ones row; above range -> the hardest row built.
    EXPECT_TRUE(index.ChainEligibleUp(0, c, -3));
    EXPECT_EQ(index.ChainEligibleUp(0, c, 99),
              index.ChainEligibleUp(0, c, 4));
  }
}

TEST(RWaveIndexTest, OversizedCeilingClampsWithoutChangingAnswers) {
  // A request-supplied MinC far beyond the condition count must not size
  // the eligibility tables O(MinC): the ceiling clamps to conds + 1, whose
  // row is provably all-zero (no chain exceeds conds), so every query
  // still answers exactly like a sanely-built index.
  util::Prng prng(17);
  const int conds = 20;
  std::vector<RWaveModel> models;
  const auto v = RandomProfile(conds, &prng, false);
  models.push_back(RWaveModel::Build(v.data(), conds, 0.0));

  RWaveBitmapIndex huge;
  huge.Build(models, conds, 2'000'000'000);
  EXPECT_EQ(huge.max_chain_need(), conds + 1);
  EXPECT_LT(huge.MemoryBytes(), size_t{1} << 20);

  RWaveBitmapIndex exact;
  exact.Build(models, conds, conds + 1);
  for (int c = 0; c < conds; ++c) {
    // Unsatisfiable needs are false, not clamped onto a satisfiable row.
    EXPECT_FALSE(huge.ChainEligibleUp(0, c, conds + 1));
    EXPECT_FALSE(huge.ChainEligibleUp(0, c, 2'000'000'000));
    EXPECT_FALSE(huge.ChainEligibleDown(0, c, 2'000'000'000));
    for (int need = 0; need <= conds + 2; ++need) {
      EXPECT_EQ(huge.ChainEligibleUp(0, c, need),
                exact.ChainEligibleUp(0, c, need))
          << "cond " << c << " need " << need;
      EXPECT_EQ(huge.ChainEligibleDown(0, c, need),
                exact.ChainEligibleDown(0, c, need))
          << "cond " << c << " need " << need;
    }
  }
}

TEST(RWaveIndexTest, MemoryBytesAccountsForTheTables) {
  util::Prng prng(13);
  const int conds = 40;
  std::vector<RWaveModel> models;
  std::vector<std::vector<double>> profiles;
  for (int g = 0; g < 10; ++g) {
    profiles.push_back(RandomProfile(conds, &prng, false));
    models.push_back(RWaveModel::Build(profiles.back().data(), conds, 0.3));
  }
  RWaveBitmapIndex index;
  index.Build(models, conds, kMaxNeed);
  // 10 genes * 40 conds * 1 word * 2 directions of candidate rows is a firm
  // lower bound; the exact figure depends on vector capacities.
  EXPECT_GE(index.MemoryBytes(), 10u * 40u * sizeof(uint64_t) * 2);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
