// ModelCache behavior: byte-identity of cached vs freshly built models,
// exact serial hit/miss accounting, eviction under a byte budget with the
// one-entry-per-shard floor, and handle pinning across eviction.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_cache.h"
#include "core/rwave.h"

namespace regcluster {
namespace core {
namespace {

constexpr int kConds = 12;

/// Deterministic per-gene expression profile with enough value spread to
/// produce nontrivial regulation pointers.
std::vector<double> GeneValues(int gene) {
  std::vector<double> v(kConds);
  for (int c = 0; c < kConds; ++c) {
    v[static_cast<size_t>(c)] = ((gene * 37 + c * 13) % 17) * 0.5 + c * 0.01;
  }
  return v;
}

RWaveModel DirectBuild(int gene) {
  const std::vector<double> v = GeneValues(gene);
  return RWaveModel::Build(v.data(), kConds, 1.0);
}

ModelCache::Builder TestBuilder() {
  return [](int gene) { return DirectBuild(gene); };
}

void ExpectModelsEqual(const RWaveModel& a, const RWaveModel& b) {
  ASSERT_EQ(a.num_conditions(), b.num_conditions());
  EXPECT_EQ(a.gamma_abs(), b.gamma_abs());
  EXPECT_EQ(a.pointers(), b.pointers());
  for (int p = 0; p < a.num_conditions(); ++p) {
    EXPECT_EQ(a.condition_at(p), b.condition_at(p));
    EXPECT_EQ(a.value_at(p), b.value_at(p));
    EXPECT_EQ(a.MaxChainUp(p), b.MaxChainUp(p));
    EXPECT_EQ(a.MaxChainDown(p), b.MaxChainDown(p));
  }
  for (int c = 0; c < a.num_conditions(); ++c) {
    EXPECT_EQ(a.position(c), b.position(c));
  }
}

int64_t ModelEntryBytes(const RWaveModel& m) {
  return static_cast<int64_t>(sizeof(RWaveModel) + m.MemoryBytes());
}

TEST(ModelCacheTest, CachedModelMatchesDirectBuild) {
  ModelCache::Options opts;
  opts.byte_budget = -1;
  ModelCache cache(32, TestBuilder(), opts);
  for (int g = 0; g < 32; ++g) {
    auto handle = cache.Get(g);
    ASSERT_NE(handle, nullptr);
    ExpectModelsEqual(DirectBuild(g), *handle);
  }
}

TEST(ModelCacheTest, SerialHitMissTotalsAreExact) {
  ModelCache::Options opts;
  opts.byte_budget = -1;
  ModelCache cache(8, TestBuilder(), opts);

  for (int g = 0; g < 8; ++g) cache.Get(g);   // 8 cold misses
  for (int g = 0; g < 8; ++g) cache.Get(g);   // 8 hits
  cache.Get(3);                               // 1 more hit

  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 8);
  EXPECT_EQ(s.hits, 9);
  EXPECT_EQ(s.evictions, 0);
}

TEST(ModelCacheTest, UnboundedCacheNeverEvicts) {
  ModelCache::Options opts;
  opts.byte_budget = -1;
  opts.num_shards = 2;
  ModelCache cache(64, TestBuilder(), opts);
  for (int round = 0; round < 3; ++round) {
    for (int g = 0; g < 64; ++g) cache.Get(g);
  }
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.misses, 64);
  EXPECT_EQ(s.hits, 2 * 64);
}

TEST(ModelCacheTest, ResidentBytesMatchesSumOfCachedEntries) {
  ModelCache::Options opts;
  opts.byte_budget = -1;
  ModelCache cache(16, TestBuilder(), opts);
  int64_t expected = 0;
  for (int g = 0; g < 16; ++g) {
    auto handle = cache.Get(g);
    expected += ModelEntryBytes(*handle);
  }
  EXPECT_EQ(cache.resident_bytes(), expected);
  EXPECT_EQ(cache.stats().resident_bytes, expected);
}

TEST(ModelCacheTest, ZeroBudgetDegradesToOneEntryPerShard) {
  ModelCache::Options opts;
  opts.byte_budget = 0;
  opts.num_shards = 4;
  ModelCache cache(32, TestBuilder(), opts);

  for (int g = 0; g < 32; ++g) cache.Get(g);
  // Each shard keeps only its most recently used entry, so at most one
  // model per shard stays resident and everything else was evicted.
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 32);
  EXPECT_EQ(s.evictions, 32 - cache.num_shards());
  const int64_t one_entry = ModelEntryBytes(DirectBuild(0));
  EXPECT_LE(cache.resident_bytes(), 2 * one_entry * cache.num_shards());
  EXPECT_GT(cache.resident_bytes(), 0);

  // A re-fetch after eviction rebuilds a byte-identical model.
  auto again = cache.Get(0);
  ExpectModelsEqual(DirectBuild(0), *again);
}

TEST(ModelCacheTest, EvictionRespectsLruOrderWithinShard) {
  // One shard so every gene shares the same LRU list; budget fits roughly
  // two entries.
  const int64_t entry = ModelEntryBytes(DirectBuild(0));
  ModelCache::Options opts;
  opts.num_shards = 1;
  opts.byte_budget = 2 * entry + entry / 2;
  ModelCache cache(8, TestBuilder(), opts);

  cache.Get(0);
  cache.Get(1);
  cache.Get(0);  // 0 is now MRU, 1 is LRU
  cache.Get(2);  // over budget: 1 must go, 0 must stay
  const ModelCache::Stats after = cache.stats();
  EXPECT_EQ(after.evictions, 1);

  cache.Get(0);
  EXPECT_EQ(cache.stats().hits, after.hits + 1) << "MRU entry was evicted";
  cache.Get(1);
  EXPECT_EQ(cache.stats().misses, after.misses + 1)
      << "LRU entry survived past the budget";
}

TEST(ModelCacheTest, HandlePinsModelAcrossEviction) {
  ModelCache::Options opts;
  opts.byte_budget = 0;  // evict as aggressively as the floor allows
  opts.num_shards = 1;
  ModelCache cache(16, TestBuilder(), opts);

  std::shared_ptr<const RWaveModel> pinned = cache.Get(0);
  for (int g = 1; g < 16; ++g) cache.Get(g);  // flushes gene 0 out
  EXPECT_GT(cache.stats().evictions, 0);
  // The pin keeps the evicted model alive and intact.
  ExpectModelsEqual(DirectBuild(0), *pinned);
}

TEST(ModelCacheTest, ShardCountIsClampedToValidRange) {
  ModelCache::Options opts;
  opts.num_shards = 1000;  // more shards than genes
  ModelCache big(4, TestBuilder(), opts);
  EXPECT_LE(big.num_shards(), 4);
  for (int g = 0; g < 4; ++g) ExpectModelsEqual(DirectBuild(g), *big.Get(g));

  opts.num_shards = 0;  // degenerate
  ModelCache small(4, TestBuilder(), opts);
  EXPECT_GE(small.num_shards(), 1);
  for (int g = 0; g < 4; ++g) {
    ExpectModelsEqual(DirectBuild(g), *small.Get(g));
  }
}

TEST(ModelCacheTest, ParallelHammerKeepsTotalsConsistent) {
  constexpr int kGenes = 24;
  constexpr int kThreads = 4;
  constexpr int kAccessesPerThread = 200;

  ModelCache::Options opts;
  opts.byte_budget = 8 * ModelEntryBytes(DirectBuild(0));
  opts.num_shards = 4;
  ModelCache cache(kGenes, TestBuilder(), opts);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kAccessesPerThread; ++i) {
        const int gene = (t * 7 + i * 11) % kGenes;
        auto handle = cache.Get(gene);
        ASSERT_NE(handle, nullptr);
        ASSERT_EQ(handle->num_conditions(), kConds);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Hit/miss split is schedule-dependent (racing builders both count a
  // miss), but every access is exactly one of the two.
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kAccessesPerThread);
  EXPECT_GE(s.misses, kGenes);  // every gene was built at least once

  // Every model is still byte-identical to a direct build.
  for (int g = 0; g < kGenes; ++g) ExpectModelsEqual(DirectBuild(g), *cache.Get(g));
}

/// A builder over widened rows (one extra condition appended), so an
/// invalidated cache visibly serves different models afterwards.
RWaveModel WidenedBuild(int gene) {
  std::vector<double> v = GeneValues(gene);
  v.push_back(100.0 + gene);
  return RWaveModel::Build(v.data(), kConds + 1, 1.0);
}

TEST(ModelCacheTest, InvalidateDropsStaleEntriesLazily) {
  ModelCache::Options opts;
  opts.byte_budget = -1;
  ModelCache cache(8, TestBuilder(), opts);

  for (int g = 0; g < 8; ++g) cache.Get(g);  // 8 cold misses
  cache.Get(0);                              // 1 hit
  EXPECT_EQ(cache.generation(), 0u);

  cache.Invalidate([](int gene) { return WidenedBuild(gene); });
  EXPECT_EQ(cache.generation(), 1u);
  // Invalidation is lazy: nothing is dropped until an entry is probed.
  EXPECT_EQ(cache.stats().stale_drops, 0);

  // Every old entry is a stale drop followed by a rebuild miss against the
  // NEW builder -- never a stale hit.
  for (int g = 0; g < 8; ++g) {
    auto handle = cache.Get(g);
    ASSERT_NE(handle, nullptr);
    ExpectModelsEqual(WidenedBuild(g), *handle);
  }
  ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.stale_drops, 8);
  EXPECT_EQ(s.misses, 16);
  EXPECT_EQ(s.hits, 1);

  // The rebuilt entries are current-generation: pure hits now.
  for (int g = 0; g < 8; ++g) cache.Get(g);
  s = cache.stats();
  EXPECT_EQ(s.stale_drops, 8);
  EXPECT_EQ(s.hits, 9);

  // A second invalidation bumps the generation again.
  cache.Invalidate(TestBuilder());
  EXPECT_EQ(cache.generation(), 2u);
  ExpectModelsEqual(DirectBuild(5), *cache.Get(5));
  EXPECT_EQ(cache.stats().stale_drops, 9);
}

TEST(ModelCacheTest, InvalidateDuringParallelHammerNeverServesStale) {
  constexpr int kGenes = 16;
  constexpr int kThreads = 8;
  constexpr int kAccessesPerThread = 400;

  ModelCache::Options opts;
  opts.byte_budget = -1;
  opts.num_shards = 4;
  ModelCache cache(kGenes, TestBuilder(), opts);

  // Readers check a structural property that distinguishes the two
  // builders: the widened builder's models have kConds + 1 conditions.
  std::atomic<bool> widened{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAccessesPerThread; ++i) {
        const bool widened_before = widened.load(std::memory_order_acquire);
        auto handle = cache.Get((t * 5 + i * 3) % kGenes);
        ASSERT_NE(handle, nullptr);
        // A Get that starts after Invalidate returned (observed via the
        // flag, released after the swap) must never serve a stale model.
        if (widened_before) {
          ASSERT_EQ(handle->num_conditions(), kConds + 1);
        }
      }
    });
  }
  std::thread invalidator([&] {
    cache.Invalidate([](int gene) { return WidenedBuild(gene); });
    widened.store(true, std::memory_order_release);
  });
  invalidator.join();
  for (auto& th : threads) th.join();

  // Post-quiescence, every entry is the new generation.
  for (int g = 0; g < kGenes; ++g) {
    ExpectModelsEqual(WidenedBuild(g), *cache.Get(g));
  }
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            kThreads * kAccessesPerThread + kGenes);
  EXPECT_LE(s.stale_drops, s.misses);
}

}  // namespace
}  // namespace core
}  // namespace regcluster
