# End-to-end metrics export contract of `regcluster mine`:
#   * --metrics-out + --metrics-format=json writes a machine-parseable JSON
#     document carrying the regcluster_* run record (checked with python3
#     when available, structural regexes otherwise)
#   * --metrics-format=prom writes Prometheus text exposition format 0.0.4
#     (HELP/TYPE comment pairs plus sample lines)
#   * the exit-code contract is unchanged: bad format is usage (2), a
#     truncated mine still writes the metrics file and exits 3
#   * --collect-stats=false zeroes only the detail counters
file(MAKE_DIRECTORY ${WORKDIR})

function(run_expect expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "expected exit ${expected_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/m.tsv
           --genes=200 --conditions=16 --clusters=3 --gene-fraction=0.05
           --seed=9)

# --- JSON format -----------------------------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/found.txt
           --json=${WORKDIR}/found.json
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
           --metrics-out=${WORKDIR}/metrics.json --metrics-format=json)
if(NOT EXISTS ${WORKDIR}/metrics.json)
  message(FATAL_ERROR "mine did not write metrics.json")
endif()

find_program(PYTHON3_PROGRAM python3)
if(PYTHON3_PROGRAM)
  # Real parse: the document must load as JSON and carry positive work
  # counters under the stable names.
  run_expect(0 ${PYTHON3_PROGRAM} -c
"import json, sys
doc = json.load(open(r'${WORKDIR}/metrics.json'))
metrics = {m['name']: m for m in doc['metrics']}
for name in ('regcluster_nodes_expanded_total',
             'regcluster_extensions_tested_total',
             'regcluster_clusters_emitted_total',
             'regcluster_index_word_ops_total',
             'regcluster_dedup_probes_total',
             'regcluster_mine_seconds',
             'regcluster_wall_seconds'):
    assert name in metrics, f'missing metric {name}'
assert metrics['regcluster_nodes_expanded_total']['value'] > 0
assert metrics['regcluster_nodes_expanded_total']['type'] == 'counter'
assert metrics['regcluster_index_word_ops_total']['value'] > 0
assert metrics['regcluster_mine_seconds']['type'] == 'gauge'
print('metrics.json ok:', len(metrics), 'metrics')
")
else()
  file(READ ${WORKDIR}/metrics.json metrics_json)
  if(NOT metrics_json MATCHES "\"name\": \"regcluster_nodes_expanded_total\", \"type\": \"counter\", \"help\": \"[^\"]+\", \"value\": [1-9][0-9]*")
    message(FATAL_ERROR "metrics.json missing nodes_expanded counter:\n${metrics_json}")
  endif()
endif()

# The cluster JSON export gains the "stats" block next to "outcome".
file(READ ${WORKDIR}/found.json found_json)
foreach(key nodes_expanded extensions_tested pruned_coherence index_word_ops
        dedup_probes)
  if(NOT found_json MATCHES "\"${key}\": [0-9]+")
    message(FATAL_ERROR "found.json stats block missing ${key}")
  endif()
endforeach()

# --- Prometheus format -----------------------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/found2.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
           --metrics-out=${WORKDIR}/metrics.prom --metrics-format=prom)
file(READ ${WORKDIR}/metrics.prom prom)
# Every exported family needs its HELP/TYPE comment pair and a sample line.
foreach(fam
        "regcluster_nodes_expanded_total counter"
        "regcluster_pruned_coherence_total counter"
        "regcluster_mine_seconds gauge"
        "regcluster_wall_seconds gauge")
  if(NOT prom MATCHES "# TYPE ${fam}\n")
    message(FATAL_ERROR "metrics.prom missing '# TYPE ${fam}':\n${prom}")
  endif()
endforeach()
if(NOT prom MATCHES "# HELP regcluster_nodes_expanded_total [^\n]+\n")
  message(FATAL_ERROR "metrics.prom missing HELP line:\n${prom}")
endif()
if(NOT prom MATCHES "\nregcluster_nodes_expanded_total [1-9][0-9]*\n")
  message(FATAL_ERROR "metrics.prom missing positive sample line:\n${prom}")
endif()
if(NOT prom MATCHES "\nregcluster_truncated 0\n")
  message(FATAL_ERROR "metrics.prom missing truncated=0 gauge:\n${prom}")
endif()

# --- collect-stats=false: identical clusters, dark detail counters ---------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/nostats.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05 --collect-stats=false
           --metrics-out=${WORKDIR}/nostats.prom --metrics-format=prom)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/found2.txt ${WORKDIR}/nostats.txt
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "collect-stats=false changed the mined archive")
endif()
file(READ ${WORKDIR}/nostats.prom nostats_prom)
if(NOT nostats_prom MATCHES "\nregcluster_index_word_ops_total 0\n")
  message(FATAL_ERROR "collect-stats=false left index_word_ops non-zero:\n${nostats_prom}")
endif()
if(NOT nostats_prom MATCHES "\nregcluster_nodes_expanded_total [1-9][0-9]*\n")
  message(FATAL_ERROR "structural counters must survive collect-stats=false:\n${nostats_prom}")
endif()

# --- exit-code contract (PR3) stays intact ---------------------------------
# Unknown metrics format is a usage error before any mining starts.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/x.txt
           --metrics-out=${WORKDIR}/x.prom --metrics-format=yaml)
if(EXISTS ${WORKDIR}/x.prom)
  message(FATAL_ERROR "usage error must not write a metrics file")
endif()
# ... even when no --metrics-out would consume it: a malformed flag value is
# never silently ignored.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/x2.txt
           --metrics-format=yaml)
if(EXISTS ${WORKDIR}/x2.txt)
  message(FATAL_ERROR "usage error must not mine")
endif()
# A truncated mine still exits 3 and still writes the metrics file, with the
# truncated gauge set.
run_expect(3 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --out=${WORKDIR}/trunc.txt --ming=6 --minc=5 --gamma=0.1
           --epsilon=0.05 --remove-dominated=false --max-nodes=40
           --metrics-out=${WORKDIR}/trunc.prom --metrics-format=prom)
if(NOT EXISTS ${WORKDIR}/trunc.prom)
  message(FATAL_ERROR "truncated mine did not write metrics")
endif()
file(READ ${WORKDIR}/trunc.prom trunc_prom)
if(NOT trunc_prom MATCHES "\nregcluster_truncated 1\n")
  message(FATAL_ERROR "truncated run must export regcluster_truncated 1:\n${trunc_prom}")
endif()
