# End-to-end out-of-core mining contract:
#   * `convert --out-format=bin` produces a binary matrix that round-trips
#     back through `convert --out-format=text`
#   * `mine --matrix-format=bin --model-cache-mb=N` mines the mapped file
#     through the model cache and emits output identical to the resident
#     text-path mine
#   * --matrix-format=auto sniffs the binary magic
#   * the cache telemetry reaches the Prometheus export
#   * misuse (binary + --normalize, bad formats) is a usage error (2)
file(MAKE_DIRECTORY ${WORKDIR})

function(run_expect expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "expected exit ${expected_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/m.tsv
           --genes=200 --conditions=16 --clusters=3 --gene-fraction=0.05
           --seed=11)

# --- convert: text -> bin -> text round-trips ------------------------------
run_expect(0 ${CLI} convert --in=${WORKDIR}/m.tsv
           --out=${WORKDIR}/m.rgx --out-format=bin)
if(NOT EXISTS ${WORKDIR}/m.rgx)
  message(FATAL_ERROR "convert --out-format=bin wrote nothing")
endif()
run_expect(0 ${CLI} convert --in=${WORKDIR}/m.rgx
           --out=${WORKDIR}/roundtrip.tsv --out-format=text)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/m.tsv ${WORKDIR}/roundtrip.tsv
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "text -> bin -> text round-trip changed the matrix")
endif()

# --- resident reference mine ----------------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --out=${WORKDIR}/resident.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05)

# --- out-of-core mine must be byte-identical -------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.rgx --matrix-format=bin
           --model-cache-mb=1 --model-cache-shards=4
           --out=${WORKDIR}/outofcore.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
           --metrics-out=${WORKDIR}/outofcore.prom --metrics-format=prom)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/resident.txt ${WORKDIR}/outofcore.txt
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "out-of-core mine differs from the resident mine")
endif()

# Cache telemetry reaches the export, with real traffic behind it.
file(READ ${WORKDIR}/outofcore.prom prom)
if(NOT prom MATCHES "\nregcluster_model_cache_misses_total [1-9][0-9]*\n")
  message(FATAL_ERROR "out-of-core mine exported no cache misses:\n${prom}")
endif()
if(NOT prom MATCHES "\nregcluster_model_bytes [1-9][0-9]*\n")
  message(FATAL_ERROR "out-of-core mine exported no model bytes:\n${prom}")
endif()

# --- auto-sniffing accepts the binary file without the explicit flag -------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.rgx
           --model-cache-mb=1
           --out=${WORKDIR}/sniffed.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/resident.txt ${WORKDIR}/sniffed.txt
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "auto-sniffed binary mine differs from resident mine")
endif()

# A mapped mine without any cache budget (eager models over the mapping)
# must also agree.
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.rgx --matrix-format=bin
           --out=${WORKDIR}/mapped_eager.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/resident.txt ${WORKDIR}/mapped_eager.txt
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "mapped eager mine differs from resident mine")
endif()

# --- misuse is a usage error (2), before any mining ------------------------
# Normalization would mutate the read-only mapping.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.rgx --matrix-format=bin
           --normalize=zscore --out=${WORKDIR}/x.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05)
if(EXISTS ${WORKDIR}/x.txt)
  message(FATAL_ERROR "usage error must not mine")
endif()
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.rgx --matrix-format=elf
           --out=${WORKDIR}/x2.txt)
run_expect(2 ${CLI} convert --in=${WORKDIR}/m.tsv
           --out=${WORKDIR}/x.rgx --out-format=parquet)

# A text file forced through the binary reader is a data error, not a crash.
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv --matrix-format=bin
           --out=${WORKDIR}/x3.txt
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05)
