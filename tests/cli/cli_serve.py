#!/usr/bin/env python3
"""Daemon lifecycle e2e: `regcluster serve` over real sockets.

Drives a freshly started daemon end to end:
  * readiness line with the ephemeral port;
  * GET /healthz, GET /metrics;
  * POST /mine twice (deterministic) -- byte-identical, second one warm;
  * POST /sweep;
  * named error statuses for bad JSON / unknown endpoints;
  * the binary framing, including a torn frame (disconnect mid-prefix)
    answered with a framed "torn_frame" error -- and the daemon survives;
  * a second daemon with a tiny --memory-budget-mb sheds 503 + Retry-After;
  * SIGTERM while a request is in flight: the in-flight response completes,
    the daemon drains and exits 0.

Usage: cli_serve.py <regcluster-cli> <workdir>
"""

import http.client
import json
import os
import shutil
import signal
import socket
import struct
import subprocess
import sys
import time


def fail(msg):
    print("FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


class Daemon:
    """A `regcluster serve` child plus its parsed readiness line."""

    def __init__(self, cli, workdir, extra_flags=()):
        self.proc = subprocess.Popen(
            [cli, "serve", "--port=0"] + list(extra_flags),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            cwd=workdir,
            text=True,
        )
        line = self.proc.stdout.readline()
        check(line.startswith("listening port="),
              "no readiness line, got: %r" % line)
        self.port = int(line.split("port=")[1].split()[0])

    def http(self, method, target, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        conn.request(method, target, body=body)
        response = conn.getresponse()
        payload = response.read()
        headers = dict((k.lower(), v) for k, v in response.getheaders())
        conn.close()
        return response.status, headers, payload

    def frame_socket(self):
        s = socket.create_connection(("127.0.0.1", self.port), timeout=60)
        s.settimeout(60)
        return s

    def terminate_and_wait(self):
        self.proc.send_signal(signal.SIGTERM)
        out, err = self.proc.communicate(timeout=120)
        return self.proc.returncode, out, err


def send_frame(sock, payload):
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def recv_frame(sock):
    prefix = b""
    while len(prefix) < 4:
        chunk = sock.recv(4 - len(prefix))
        check(chunk, "connection closed before a frame length")
        prefix += chunk
    (length,) = struct.unpack(">I", prefix)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        check(chunk, "connection closed mid frame payload")
        payload += chunk
    return payload


def main():
    # Popen resolves a relative program path against the child's cwd (the
    # workdir), so pin the CLI to an absolute path up front.
    cli, workdir = os.path.abspath(sys.argv[1]), sys.argv[2]
    shutil.rmtree(workdir, ignore_errors=True)
    os.makedirs(workdir)

    rc = subprocess.run(
        [cli, "generate", "--out-matrix=m.tsv", "--out-truth=t.txt",
         "--genes=200", "--conditions=16", "--clusters=3",
         "--gene-fraction=0.05", "--seed=9"],
        cwd=workdir).returncode
    check(rc == 0, "generate failed")
    # Binary copy for the /append battery (appends need the binary format).
    rc = subprocess.run(
        [cli, "convert", "--in=m.tsv", "--out=m.rgx", "--out-format=bin"],
        cwd=workdir).returncode
    check(rc == 0, "convert to binary failed")

    daemon = Daemon(cli, workdir)

    # -- health + metrics ---------------------------------------------------
    status, _, body = daemon.http("GET", "/healthz")
    check(status == 200 and body == b'{"status":"ok"}\n',
          "healthz: %s %r" % (status, body))

    mine_request = json.dumps({
        "matrix": "m.tsv", "ming": 6, "minc": 5, "gamma": 0.1,
        "epsilon": 0.05, "collect_stats": True,
        "deterministic_output": True,
    })

    # -- mine twice: byte-identical, second one served warm -----------------
    status, _, cold = daemon.http("POST", "/mine", mine_request)
    check(status == 200, "cold mine: %s %r" % (status, cold[:200]))
    check(b'"clusters"' in cold, "mine response has no clusters block")
    status, _, warm = daemon.http("POST", "/mine", mine_request)
    check(status == 200, "warm mine failed")
    check(warm == cold, "warm mine is not byte-identical to the cold mine")

    # -- sweep --------------------------------------------------------------
    sweep_request = json.dumps({
        "matrix": "m.tsv", "ming": 6, "epsilon": 0.05,
        "spec": "gamma=0.1;0.15,minc=4;5", "deterministic_output": True,
    })
    status, _, sweep = daemon.http("POST", "/sweep", sweep_request)
    check(status == 200, "sweep: %s %r" % (status, sweep[:200]))
    check(b'"runs_total": 4' in sweep, "sweep did not run the 4-point grid")

    # -- metrics reflect the traffic ----------------------------------------
    status, headers, metrics = daemon.http("GET", "/metrics")
    check(status == 200, "metrics failed")
    check(headers.get("content-type", "").startswith("text/plain"),
          "metrics content type: %r" % headers.get("content-type"))
    text = metrics.decode()
    for needle in ("regcluster_server_requests", "regcluster_server_shed 0",
                   "regcluster_server_cache_hits", "regcluster_server_active",
                   "regcluster_server_queue_depth"):
        check(needle in text, "metrics missing %r:\n%s" % (needle, text))
    # The warm mine hit both cache levels.
    hits = [l for l in text.splitlines()
            if l.startswith("regcluster_server_cache_hits ")]
    check(hits and int(hits[0].split()[1]) >= 2,
          "expected warm-mine cache hits in:\n%s" % text)

    # -- named errors over HTTP ---------------------------------------------
    status, _, body = daemon.http("POST", "/mine", "{not json")
    check(status == 400 and b'"error_name":"bad_json"' in body,
          "bad json: %s %r" % (status, body))
    status, _, body = daemon.http("GET", "/nope")
    check(status == 404 and b'"error_name":"unknown_endpoint"' in body,
          "unknown endpoint: %s %r" % (status, body))
    status, _, body = daemon.http("POST", "/mine",
                                  '{"matrix":"m.tsv","bogus_field":1}')
    check(status == 400 and b'"error_name":"bad_request"' in body,
          "unknown field: %s %r" % (status, body))

    # -- binary framing -----------------------------------------------------
    s = daemon.frame_socket()
    send_frame(s, b'{"op":"health"}')
    check(recv_frame(s) == b'{"status":"ok"}\n', "frame health mismatch")
    # The binary connection is persistent: a second op on the same socket.
    send_frame(s, mine_request.encode())
    # ... which lacks "op": a named bad_request, not a dead daemon.
    reply = recv_frame(s)
    check(b'"error_name":"bad_request"' in reply,
          "op-less frame: %r" % reply[:200])
    send_frame(s, b'{"op":"mine",' + mine_request.encode()[1:])
    framed_mine = recv_frame(s)
    check(framed_mine == cold,
          "frame mine is not byte-identical to the HTTP mine")
    s.close()

    # -- torn frame: disconnect mid length prefix ---------------------------
    s = daemon.frame_socket()
    s.sendall(b"\x00\x00")  # half a length prefix
    s.shutdown(socket.SHUT_WR)  # peer goes away mid-request
    reply = recv_frame(s)
    check(b'"error_name":"torn_frame"' in reply, "torn frame: %r" % reply)
    s.close()

    # -- oversized declared length ------------------------------------------
    s = daemon.frame_socket()
    s.sendall(struct.pack(">I", (16 << 20) + 1))
    reply = recv_frame(s)
    check(b'"error_name":"frame_too_large"' in reply,
          "oversized frame: %r" % reply)
    s.close()

    # The daemon survived every fault above.
    status, _, body = daemon.http("GET", "/healthz")
    check(status == 200, "daemon died after protocol faults")

    # -- append: cache invalidation + warm-mine byte-identity ----------------
    bin_mine_request = json.dumps({
        "matrix": "m.rgx", "ming": 6, "minc": 5, "gamma": 0.1,
        "epsilon": 0.05, "collect_stats": True,
        "deterministic_output": True,
    })
    status, _, before = daemon.http("POST", "/mine", bin_mine_request)
    check(status == 200, "binary mine: %s %r" % (status, before[:200]))
    status, _, before_warm = daemon.http("POST", "/mine", bin_mine_request)
    check(status == 200 and before_warm == before,
          "warm binary mine is not byte-identical")

    append_request = json.dumps({
        "matrix": "m.rgx", "names": ["t_16"],
        "columns": [[0.25 * g for g in range(200)]],
    })
    status, _, body = daemon.http("POST", "/append", append_request)
    check(status == 200, "append: %s %r" % (status, body))
    reply = json.loads(body)
    check(reply["num_conditions"] == 17,
          "append widened to %s conditions" % reply.get("num_conditions"))
    # m.tsv and m.rgx hold the same data, so their models share a content
    # hash: the append drops the m.rgx matrix mapping plus both cached
    # gamma models (0.1 from the mines, 0.15 from the sweep).
    check(reply["invalidated"] == 3,
          "append invalidated %s entries (want matrix + 2 models = 3)"
          % reply.get("invalidated"))

    # The next mine reloads the widened matrix (different output), and the
    # one after that is served warm and byte-identical to it.
    status, _, after = daemon.http("POST", "/mine", bin_mine_request)
    check(status == 200, "post-append mine: %s %r" % (status, after[:200]))
    check(after != before, "mine after append served the stale matrix")
    check(b'"roots_total": 17' in after,
          "post-append report does not show the widened matrix")
    status, _, after_warm = daemon.http("POST", "/mine", bin_mine_request)
    check(status == 200 and after_warm == after,
          "warm mine after append is not byte-identical")

    # The untouched text matrix kept its cache entries: still warm.
    status, _, warm2 = daemon.http("POST", "/mine", mine_request)
    check(status == 200 and warm2 == cold,
          "append invalidated an unrelated matrix's entries")

    # A text matrix cannot append in place: named error, nothing changes.
    status, _, body = daemon.http(
        "POST", "/append",
        json.dumps({"matrix": "m.tsv", "names": ["x"],
                    "columns": [[0.0] * 200]}))
    check(status == 400 and b'"error_name":"append_error"' in body,
          "text append: %s %r" % (status, body))

    # -- SIGTERM drain with a request in flight -----------------------------
    # An explosive search bounded by its own deadline occupies the daemon,
    # SIGTERM arrives mid-mine, and the response must still complete.
    slow_request = json.dumps({
        "matrix": "m.tsv", "ming": 3, "minc": 3, "gamma": 0.35,
        "epsilon": 0.8, "deadline_ms": 3000,
    })
    s = daemon.frame_socket()
    send_frame(s, b'{"op":"mine",' + slow_request.encode()[1:])
    time.sleep(0.3)  # let the mine start
    daemon.proc.send_signal(signal.SIGTERM)
    inflight = recv_frame(s)
    check(b'"clusters"' in inflight,
          "in-flight mine did not complete through the drain: %r"
          % inflight[:200])
    s.close()
    out, err = daemon.proc.communicate(timeout=120)
    check(daemon.proc.returncode == 0,
          "drain exit code %s, stderr: %s" % (daemon.proc.returncode, err))
    check("drained, exiting" in out, "missing drain line in: %r" % out)

    # -- shedding under a tiny memory budget --------------------------------
    shed_daemon = Daemon(cli, workdir, ["--memory-budget-mb=0",
                                        "--retry-after-s=5"])
    status, _, body = shed_daemon.http("POST", "/mine", mine_request)
    check(status == 200, "first mine under tiny budget: %s" % status)
    status, headers, body = shed_daemon.http("POST", "/mine", mine_request)
    check(status == 503, "expected 503 shed, got %s %r" % (status, body))
    check(b'"error_name":"shed_memory"' in body, "shed body: %r" % body)
    check(headers.get("retry-after") == "5",
          "Retry-After header: %r" % headers.get("retry-after"))
    code, out, _ = shed_daemon.terminate_and_wait()
    check(code == 0, "shed daemon exit code %s" % code)

    print("cli_serve: all checks passed")


if __name__ == "__main__":
    main()
