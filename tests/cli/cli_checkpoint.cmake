# End-to-end durable checkpoint/resume contract of `regcluster mine`:
#   * --resume-from with no snapshot yet starts fresh (exit 0, note printed)
#   * a durable run's final output is byte-identical to a plain run, and its
#     final snapshot resumes straight to the same output (exit 0)
#   * a budget-truncated durable run exits 3 and prints the resume command;
#     re-running with the snapshot and no budget completes to the reference
#   * a corrupt snapshot is exit 1 (kCorruption surfaced, not mined through)
#   * resuming a mine snapshot in sweep mode (kind mismatch) is exit 1
#   * resuming under different options is exit 1 (validation, not garbage)
#   * --checkpoint-every-ms=0 is a usage error (exit 2)
# The scenario is stateful (fresh-start depends on no snapshot existing), so
# start from an empty work directory every run.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

function(run_expect expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "expected exit ${expected_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
  set(last_err "${err}" PARENT_SCOPE)
endfunction()

run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/m.tsv
           --genes=300 --conditions=16 --clusters=4 --gene-fraction=0.05
           --seed=23)
set(mine_flags --ming=5 --minc=4 --gamma=0.12 --epsilon=0.08)

# --- plain reference -------------------------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/ref.out --json=${WORKDIR}/ref.json
           --deterministic-output)

# --- usage: non-positive cadence is exit 2, before any work ---------------
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/x.out --checkpoint=${WORKDIR}/x.ckpt
           --checkpoint-every-ms=0)

# --- fresh start: --resume-from with no snapshot is not an error ----------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/durable.out --json=${WORKDIR}/durable.json
           --deterministic-output
           --checkpoint=${WORKDIR}/d.ckpt --checkpoint-every-ms=50
           --resume-from=${WORKDIR}/d.ckpt)
if(NOT last_err MATCHES "no checkpoint at .* starting fresh")
  message(FATAL_ERROR "fresh start note missing:\n${last_err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/ref.out ${WORKDIR}/durable.out
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "durable mine differs from the plain mine")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/ref.json ${WORKDIR}/durable.json
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "durable mine json differs from the plain mine json")
endif()

# The run left a final snapshot; resuming from it replays to the same bytes.
if(NOT EXISTS ${WORKDIR}/d.ckpt.a AND NOT EXISTS ${WORKDIR}/d.ckpt.b)
  message(FATAL_ERROR "durable run wrote no snapshot buffers")
endif()
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/replay.out --json=${WORKDIR}/replay.json
           --deterministic-output --resume-from=${WORKDIR}/d.ckpt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/ref.out ${WORKDIR}/replay.out
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "replayed complete snapshot differs from reference")
endif()

# --- truncation: exit 3, banner names the resume command ------------------
run_expect(3 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --remove-dominated=false
           --out=${WORKDIR}/part.out --json=${WORKDIR}/part.json
           --deterministic-output
           --checkpoint=${WORKDIR}/p.ckpt --checkpoint-every-ms=50
           --max-nodes=200)
if(NOT last_err MATCHES "--resume-from=")
  message(FATAL_ERROR "truncation banner lacks the resume command:\n${last_err}")
endif()

# Re-running from the snapshot without the budget completes to the
# reference (modulo the dominance pass disabled above).
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --remove-dominated=false
           --out=${WORKDIR}/resumed.out --json=${WORKDIR}/resumed.json
           --deterministic-output
           --checkpoint=${WORKDIR}/p.ckpt --checkpoint-every-ms=50
           --resume-from=${WORKDIR}/p.ckpt)
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --remove-dominated=false
           --out=${WORKDIR}/ref_nodom.out --deterministic-output)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/ref_nodom.out ${WORKDIR}/resumed.out
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "budget-truncated resume differs from reference")
endif()

# --- corruption: a damaged snapshot is exit 1, not a silent fresh start ---
if(EXISTS ${WORKDIR}/d.ckpt.a)
  set(buffer ${WORKDIR}/d.ckpt.a)
else()
  set(buffer ${WORKDIR}/d.ckpt.b)
endif()
file(WRITE ${WORKDIR}/corrupt.ckpt.a "RGCXCKP1 this is not a checkpoint")
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/y.out --resume-from=${WORKDIR}/corrupt.ckpt)

# --- kind mismatch: a mine snapshot cannot seed a sweep (and stays 1) -----
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv --ming=5 --minc=4
           --sweep=gamma=0.1:0.2:0.1,eps=0.08 --sweep-out=${WORKDIR}/sw.json
           --resume-from=${WORKDIR}/d.ckpt)

# --- option mismatch: resuming under different options is exit 1 ----------
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --ming=5 --minc=4 --gamma=0.12 --epsilon=0.2
           --out=${WORKDIR}/z.out --resume-from=${WORKDIR}/d.ckpt)

# --- sweep durable path: fresh == plain, and a final snapshot replays -----
set(sweep_spec "gamma=0.1:0.15:0.05,eps=0.08")
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv --ming=5 --minc=4
           --sweep=${sweep_spec} --sweep-out=${WORKDIR}/sw_ref.json
           --sweep-csv=${WORKDIR}/sw_ref.csv --deterministic-output)
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv --ming=5 --minc=4
           --sweep=${sweep_spec} --sweep-out=${WORKDIR}/sw_dur.json
           --sweep-csv=${WORKDIR}/sw_dur.csv --deterministic-output
           --checkpoint=${WORKDIR}/s.ckpt --checkpoint-every-ms=50
           --resume-from=${WORKDIR}/s.ckpt)
foreach(f json csv)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORKDIR}/sw_ref.${f} ${WORKDIR}/sw_dur.${f}
                  RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR "durable sweep ${f} differs from the plain sweep")
  endif()
endforeach()
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv --ming=5 --minc=4
           --sweep=${sweep_spec} --sweep-out=${WORKDIR}/sw_replay.json
           --deterministic-output --resume-from=${WORKDIR}/s.ckpt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/sw_ref.json ${WORKDIR}/sw_replay.json
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "replayed sweep snapshot differs from reference")
endif()

# A sweep snapshot cannot seed a single mine (kind mismatch the other way).
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/w.out --resume-from=${WORKDIR}/s.ckpt)

# The checkpoint metrics are exported (zeros-not-absence contract is unit
# tested; here: a durable run reports real writes).
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/met.out --metrics-out=${WORKDIR}/met.prom
           --metrics-format=prom
           --checkpoint=${WORKDIR}/met.ckpt --checkpoint-every-ms=50)
file(READ ${WORKDIR}/met.prom prom)
if(NOT prom MATCHES "\nregcluster_checkpoint_writes_total [1-9][0-9]*\n")
  message(FATAL_ERROR "durable mine exported no checkpoint writes:\n${prom}")
endif()
# A non-durable run still exports the names, as zeros.
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${mine_flags}
           --out=${WORKDIR}/met0.out --metrics-out=${WORKDIR}/met0.prom
           --metrics-format=prom)
file(READ ${WORKDIR}/met0.prom prom0)
if(NOT prom0 MATCHES "\nregcluster_checkpoint_writes_total 0\n")
  message(FATAL_ERROR "plain mine lost the checkpoint metric names:\n${prom0}")
endif()
