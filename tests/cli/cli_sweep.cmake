# End-to-end contract of `regcluster mine --sweep`:
#   * malformed specs (unknown axis, bad range, bad JSON, missing outputs)
#     are usage errors (exit 2) that write nothing
#   * --sweep-out writes the stable JSON report schema (parsed with python3
#     when available, structural regexes otherwise)
#   * --sweep-csv writes the documented column contract
#   * the report is byte-identical between --threads=1 and --threads=4
#   * a sweep-level budget truncates on a run boundary and exits 3
file(MAKE_DIRECTORY ${WORKDIR})

function(run_expect expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "expected exit ${expected_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/m.tsv
           --genes=200 --conditions=14 --clusters=3 --gene-fraction=0.05
           --seed=11)

# --- malformed specs are fast usage errors ---------------------------------
# (Semicolon value lists are covered by sweep_io_test: a literal `;` cannot
# survive CMake argument lists, so the e2e specs use ranges.)
# Unknown axis.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=delta=0.1 --sweep-out=${WORKDIR}/bad.json)
# Descending range.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=gamma=0.5:0.1:0.1 --sweep-out=${WORKDIR}/bad.json)
# Non-integer MinG.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=ming=2.5 --sweep-out=${WORKDIR}/bad.json)
# Malformed JSON list.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           "--sweep=[{\"gamma\": }]" --sweep-out=${WORKDIR}/bad.json)
# --sweep without any output sink.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv --sweep=gamma=0.1)
# --sweep-out without --sweep.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/x.txt
           --sweep-out=${WORKDIR}/bad.json)
# Single-run output flags do not combine with --sweep.
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/x.txt
           --sweep=gamma=0.1 --sweep-out=${WORKDIR}/bad.json)
if(EXISTS ${WORKDIR}/bad.json)
  message(FATAL_ERROR "a usage error must not write a sweep report")
endif()

# --- a real sweep: JSON + CSV ----------------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=gamma=0.1:0.2:0.05,minc=5:6:1 --ming=6 --epsilon=0.05
           --sweep-out=${WORKDIR}/sweep.json --sweep-csv=${WORKDIR}/sweep.csv)
if(NOT EXISTS ${WORKDIR}/sweep.json OR NOT EXISTS ${WORKDIR}/sweep.csv)
  message(FATAL_ERROR "sweep did not write its report files")
endif()

find_program(PYTHON3_PROGRAM python3)
if(PYTHON3_PROGRAM)
  # Real parse: 3 gammas x 2 MinCs = 6 points, all executed, equal-gamma
  # points sharing 3 engine-built indexes, every point's options recorded.
  run_expect(0 ${PYTHON3_PROGRAM} -c
"import json
doc = json.load(open(r'${WORKDIR}/sweep.json'))
sweep, runs = doc['sweep'], doc['runs']
assert sweep['status'] == 'complete', sweep
assert sweep['runs_total'] == 6 and sweep['runs_executed'] == 6, sweep
assert sweep['first_unfinished'] == -1, sweep
assert sweep['index_builds'] == 3, sweep
assert sweep['nodes_total'] > 0 and sweep['shared_model_bytes'] > 0, sweep
gammas = sorted({round(r['options']['gamma'], 6) for r in runs})
assert gammas == [0.1, 0.15, 0.2], gammas
for r in runs:
    assert r['executed'] and r['shared_model'], r
    assert r['options']['min_genes'] == 6, r
    assert r['options']['min_conditions'] in (5, 6), r
    assert r['stats']['nodes_expanded'] > 0, r
    assert len(r['clusters']) == r['num_clusters'], r
    for c in r['clusters']:
        assert c['chain'] and (c['p_genes'] or c['n_genes']), c
assert sum(r['num_clusters'] for r in runs) == sweep['clusters_total']
print('sweep.json ok:', len(runs), 'runs')
")
else()
  file(READ ${WORKDIR}/sweep.json sweep_json)
  if(NOT sweep_json MATCHES "\"status\": \"complete\"")
    message(FATAL_ERROR "sweep.json not complete:\n${sweep_json}")
  endif()
  if(NOT sweep_json MATCHES "\"index_builds\": 3")
    message(FATAL_ERROR "sweep.json expected 3 index builds:\n${sweep_json}")
  endif()
endif()

# --- CSV column contract ----------------------------------------------------
file(READ ${WORKDIR}/sweep.csv csv)
if(NOT csv MATCHES "^run,gamma,gamma_policy,epsilon,min_genes,min_conditions,executed,shared_model,status,stop_reason,clusters,nodes_expanded,extensions_tested,mine_seconds,wall_seconds\n")
  message(FATAL_ERROR "sweep.csv header drifted:\n${csv}")
endif()
# One header + six data rows, each an executed shared-model run.
string(REGEX MATCHALL "\n[0-9]+,[^\n]*,1,1,complete,none,[^\n]*" rows "${csv}")
list(LENGTH rows num_rows)
if(NOT num_rows EQUAL 6)
  message(FATAL_ERROR "sweep.csv expected 6 executed rows, got ${num_rows}:\n${csv}")
endif()

# --- determinism: --threads=1 vs --threads=4 -------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=gamma=0.1:0.2:0.05,minc=5:6:1 --ming=6 --epsilon=0.05
           --threads=1 --sweep-out=${WORKDIR}/t1.json)
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=gamma=0.1:0.2:0.05,minc=5:6:1 --ming=6 --epsilon=0.05
           --threads=4 --sweep-out=${WORKDIR}/t4.json)
if(PYTHON3_PROGRAM)
  # The deterministic payload (options, stats, clusters) must be identical;
  # wall clocks legitimately differ.
  run_expect(0 ${PYTHON3_PROGRAM} -c
"import json
def payload(path):
    doc = json.load(open(path))
    return [(r['options'], r['executed'], r['stats']['nodes_expanded'],
             r['clusters']) for r in doc['runs']]
a, b = payload(r'${WORKDIR}/t1.json'), payload(r'${WORKDIR}/t4.json')
assert a == b, 'sweep output differs between --threads=1 and --threads=4'
print('thread determinism ok:', len(a), 'runs')
")
endif()

# --- JSON-list spec form ----------------------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           "--sweep=[{\"gamma\": 0.1, \"minc\": 5}, {\"gamma\": 0.1, \"minc\": 6}]"
           --ming=6 --epsilon=0.05 --sweep-out=${WORKDIR}/list.json)
file(READ ${WORKDIR}/list.json list_json)
if(NOT list_json MATCHES "\"runs_total\": 2")
  message(FATAL_ERROR "JSON-list spec expected 2 runs:\n${list_json}")
endif()
if(NOT list_json MATCHES "\"index_builds\": 1")
  message(FATAL_ERROR "equal-gamma JSON list should share one index:\n${list_json}")
endif()

# --- sweep-level budget: run-boundary truncation, exit 3 -------------------
run_expect(3 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --sweep=gamma=0.1,minc=5:6:1 --ming=6 --epsilon=0.05 --max-nodes=10
           --sweep-out=${WORKDIR}/trunc.json)
file(READ ${WORKDIR}/trunc.json trunc_json)
if(NOT trunc_json MATCHES "\"status\": \"truncated\"")
  message(FATAL_ERROR "budgeted sweep must report truncated:\n${trunc_json}")
endif()
if(NOT trunc_json MATCHES "\"stop_reason\": \"node_budget\"")
  message(FATAL_ERROR "budgeted sweep must report node_budget:\n${trunc_json}")
endif()
if(NOT trunc_json MATCHES "\"first_unfinished\": 0")
  message(FATAL_ERROR "10-node budget must truncate before run 0:\n${trunc_json}")
endif()
