# End-to-end budget/cancellation contract of `regcluster mine`:
#   * exit code 3 on truncation, with a valid partial archive + JSON outcome
#   * exit code 2 on usage errors (positional arg, unknown flag)
#   * SIGINT mid-mine -> partial outputs still written, exit code 3
file(MAKE_DIRECTORY ${WORKDIR})

function(run_expect expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "expected exit ${expected_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/m.tsv
           --genes=200 --conditions=16 --clusters=3 --gene-fraction=0.05
           --seed=9)

# Usage errors come back as exit 2, not a mid-parse process abort.
run_expect(2 ${CLI} mine positional-arg)
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/x.txt
           --no-such-flag=1)
run_expect(2 ${CLI} no-such-command)

# Runtime error (missing input file) is exit 1.
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/does-not-exist.tsv
           --out=${WORKDIR}/x.txt)

# An immediate deadline truncates before any root: exit 3, valid (possibly
# empty) archive and a JSON export carrying the outcome block.
run_expect(3 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --out=${WORKDIR}/deadline.txt --json=${WORKDIR}/deadline.json
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
           --remove-dominated=false --deadline-ms=0)
foreach(f deadline.txt deadline.json)
  if(NOT EXISTS ${WORKDIR}/${f})
    message(FATAL_ERROR "truncated run did not write ${f}")
  endif()
endforeach()
file(READ ${WORKDIR}/deadline.json deadline_json)
if(NOT deadline_json MATCHES "\"status\": \"truncated\"")
  message(FATAL_ERROR "deadline.json missing truncated outcome:\n${deadline_json}")
endif()
if(NOT deadline_json MATCHES "\"stop_reason\": \"deadline\"")
  message(FATAL_ERROR "deadline.json missing stop reason:\n${deadline_json}")
endif()

# A node budget truncates deterministically: exit 3 and the archive must load
# back through the summarize subcommand (i.e. it is a *valid* partial file).
run_expect(3 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --out=${WORKDIR}/budget.txt --json=${WORKDIR}/budget.json
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
           --remove-dominated=false --max-nodes=40)
run_expect(0 ${CLI} summarize --clusters=${WORKDIR}/budget.txt)
file(READ ${WORKDIR}/budget.json budget_json)
if(NOT budget_json MATCHES "\"stop_reason\": \"node_budget\"")
  message(FATAL_ERROR "budget.json missing node_budget reason:\n${budget_json}")
endif()

# A generous budget that never trips keeps exit code 0 and a complete outcome.
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --out=${WORKDIR}/full.txt --json=${WORKDIR}/full.json
           --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
           --remove-dominated=false --max-nodes=100000000 --deadline-ms=600000)
file(READ ${WORKDIR}/full.json full_json)
if(NOT full_json MATCHES "\"status\": \"complete\"")
  message(FATAL_ERROR "full.json not complete:\n${full_json}")
endif()

# SIGINT mid-mine: run an explosive configuration (a large matrix with tiny
# MinG/MinC, ~30s+ unbudgeted) under a shell that interrupts it after 1s;
# the handler must trip the token, the partial archive and JSON must land on
# disk, and the exit code must be 3.  --deadline-ms backstops the test on
# platforms where the kill misfires (a deadline stop also exits 3).
find_program(SH_PROGRAM sh)
if(SH_PROGRAM)
  run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/big.tsv
             --genes=800 --conditions=25 --clusters=10 --seed=7)
  execute_process(
      COMMAND ${SH_PROGRAM} -c
      "${CLI} mine --matrix=${WORKDIR}/big.tsv --out=${WORKDIR}/sigint.txt \
         --json=${WORKDIR}/sigint.json --ming=8 --minc=4 --gamma=0.05 \
         --epsilon=1.0 --remove-dominated=false --deadline-ms=120000 & \
       pid=$!; sleep 1; kill -INT $pid 2>/dev/null; wait $pid; echo rc=$?"
      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT out MATCHES "rc=3")
    message(FATAL_ERROR "SIGINT run did not exit 3:\n${out}\n${err}")
  endif()
  foreach(f sigint.txt sigint.json)
    if(NOT EXISTS ${WORKDIR}/${f})
      message(FATAL_ERROR "SIGINT run did not write ${f}")
    endif()
  endforeach()
  file(READ ${WORKDIR}/sigint.json sigint_json)
  if(NOT sigint_json MATCHES "\"stop_reason\": \"(cancelled|deadline)\"")
    message(FATAL_ERROR "sigint.json missing stop reason:\n${sigint_json}")
  endif()
endif()
