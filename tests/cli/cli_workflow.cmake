# End-to-end CLI smoke test: generate -> mine -> evaluate -> summarize.
file(MAKE_DIRECTORY ${WORKDIR})
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

run(${CLI} generate --out-matrix=${WORKDIR}/m.tsv --out-truth=${WORKDIR}/t.txt
    --genes=200 --conditions=16 --clusters=3 --gene-fraction=0.05 --seed=9)
run(${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/found.txt
    --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05
    --report=${WORKDIR}/found.report --json=${WORKDIR}/found.json --threads=2)
run(${CLI} evaluate --found=${WORKDIR}/found.txt --truth=${WORKDIR}/t.txt
    --matrix=${WORKDIR}/m.tsv --gamma=0.1 --epsilon=0.05)
run(${CLI} summarize --clusters=${WORKDIR}/found.txt --matrix=${WORKDIR}/m.tsv)
run(${CLI} enrich --matrix=${WORKDIR}/m.tsv --clusters=${WORKDIR}/found.txt)

foreach(f m.tsv t.txt found.txt found.report found.json)
  if(NOT EXISTS ${WORKDIR}/${f})
    message(FATAL_ERROR "missing expected output ${f}")
  endif()
endforeach()

# Round 2: the analysis subcommands on the mined output.
run(${CLI} significance --matrix=${WORKDIR}/m.tsv --clusters=${WORKDIR}/found.txt
    --gamma=0.1 --epsilon=0.05 --permutations=300)
run(${CLI} rwave --matrix=${WORKDIR}/m.tsv --gene=0 --gamma=0.1)
run(${CLI} mine --matrix=${WORKDIR}/m.tsv --out=${WORKDIR}/targeted.txt
    --ming=6 --minc=5 --gamma=0.1 --epsilon=0.05 --require-gene=0
    --merge-overlap=0.5 --impute=knn --knn-k=4)
if(NOT EXISTS ${WORKDIR}/targeted.txt)
  message(FATAL_ERROR "missing targeted.txt")
endif()
run(${CLI} stats --matrix=${WORKDIR}/m.tsv --worst=3)
run(${CLI} convert --in=${WORKDIR}/m.tsv --out=${WORKDIR}/m.csv
    --out-delimiter=comma --transform=zscore)
if(NOT EXISTS ${WORKDIR}/m.csv)
  message(FATAL_ERROR "missing m.csv")
endif()
