# End-to-end incremental time-course mining contract:
#   * `mine --incremental-out=S` seeds a chain and its output is byte-
#     identical to a plain mine of the same matrix
#   * `mine --append=COLS --prev-outcome=S` widens the matrix, re-mines only
#     the dirty roots, and its archive + JSON report are byte-identical to a
#     from-scratch mine of the widened matrix (--matrix-out persists it)
#   * chains extend across steps and across k-at-a-time appends
#   * misuse (orphan flags, incompatible modes) is a usage error (2); a
#     corrupt state file is a runtime error (1), before any output appears
file(MAKE_DIRECTORY ${WORKDIR})

function(run_expect expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "expected exit ${expected_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} differs from ${b}")
  endif()
endfunction()

set(MINE_FLAGS --ming=4 --minc=4 --gamma=0.15 --epsilon=0.1
    --deterministic-output)

run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/m.tsv
           --genes=80 --conditions=10 --clusters=2 --gene-fraction=0.1
           --seed=7)
# Append batches: matrices over the same 80 genes, one column per new
# condition (gene labels in the file are ignored; counts must match).
run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/cols1.tsv
           --genes=80 --conditions=3 --clusters=1 --gene-fraction=0.1
           --seed=8)
run_expect(0 ${CLI} generate --out-matrix=${WORKDIR}/cols2.tsv
           --genes=80 --conditions=4 --clusters=1 --gene-fraction=0.1
           --seed=9)

# --- seed step: identical to a plain mine ----------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --out=${WORKDIR}/step0.txt --json=${WORKDIR}/step0.json
           --incremental-out=${WORKDIR}/state0.bin)
if(NOT EXISTS ${WORKDIR}/state0.bin)
  message(FATAL_ERROR "--incremental-out wrote no state file")
endif()
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --out=${WORKDIR}/ref0.txt --json=${WORKDIR}/ref0.json)
expect_identical(${WORKDIR}/step0.txt ${WORKDIR}/ref0.txt "seed archive")
expect_identical(${WORKDIR}/step0.json ${WORKDIR}/ref0.json "seed json")

# --- first append (3 columns at once) --------------------------------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --append=${WORKDIR}/cols1.tsv --prev-outcome=${WORKDIR}/state0.bin
           --incremental-out=${WORKDIR}/state1.bin
           --matrix-out=${WORKDIR}/grown1.rgx
           --out=${WORKDIR}/step1.txt --json=${WORKDIR}/step1.json)
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/grown1.rgx ${MINE_FLAGS}
           --out=${WORKDIR}/ref1.txt --json=${WORKDIR}/ref1.json)
expect_identical(${WORKDIR}/step1.txt ${WORKDIR}/ref1.txt "append 1 archive")
expect_identical(${WORKDIR}/step1.json ${WORKDIR}/ref1.json "append 1 json")

# --- second append chains off the widened matrix + new state ---------------
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/grown1.rgx ${MINE_FLAGS}
           --append=${WORKDIR}/cols2.tsv --prev-outcome=${WORKDIR}/state1.bin
           --incremental-out=${WORKDIR}/state2.bin
           --matrix-out=${WORKDIR}/grown2.rgx
           --out=${WORKDIR}/step2.txt --json=${WORKDIR}/step2.json)
run_expect(0 ${CLI} mine --matrix=${WORKDIR}/grown2.rgx ${MINE_FLAGS}
           --out=${WORKDIR}/ref2.txt --json=${WORKDIR}/ref2.json)
expect_identical(${WORKDIR}/step2.txt ${WORKDIR}/ref2.txt "append 2 archive")
expect_identical(${WORKDIR}/step2.json ${WORKDIR}/ref2.json "append 2 json")

# --- misuse is a usage error (2), before any mining -------------------------
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --append=${WORKDIR}/cols1.tsv --out=${WORKDIR}/x.txt)
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --prev-outcome=${WORKDIR}/state0.bin --out=${WORKDIR}/x.txt)
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --matrix-out=${WORKDIR}/x.rgx --out=${WORKDIR}/x.txt)
run_expect(2 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --incremental-out=${WORKDIR}/x.bin
           --checkpoint=${WORKDIR}/x.ckpt --out=${WORKDIR}/x.txt)
if(EXISTS ${WORKDIR}/x.txt)
  message(FATAL_ERROR "usage error must not mine")
endif()

# Budgeted runs cannot be spliced; the rejection is a runtime error with no
# output files.
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --incremental-out=${WORKDIR}/y.bin --max-nodes=100
           --out=${WORKDIR}/y.txt)
if(EXISTS ${WORKDIR}/y.txt OR EXISTS ${WORKDIR}/y.bin)
  message(FATAL_ERROR "rejected incremental run must write nothing")
endif()

# A corrupt state file is a runtime error (1).
file(WRITE ${WORKDIR}/junk.bin "not an incremental state")
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv ${MINE_FLAGS}
           --append=${WORKDIR}/cols1.tsv --prev-outcome=${WORKDIR}/junk.bin
           --out=${WORKDIR}/z.txt)
if(EXISTS ${WORKDIR}/z.txt)
  message(FATAL_ERROR "corrupt state must not mine")
endif()

# Mining the same append under different options than the state is a
# runtime error naming the mismatch.
run_expect(1 ${CLI} mine --matrix=${WORKDIR}/m.tsv
           --ming=4 --minc=4 --gamma=0.2 --epsilon=0.1
           --deterministic-output
           --append=${WORKDIR}/cols1.tsv --prev-outcome=${WORKDIR}/state0.bin
           --out=${WORKDIR}/w.txt)
