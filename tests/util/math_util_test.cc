#include "util/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
}

TEST(DescriptiveTest, Variance) {
  EXPECT_DOUBLE_EQ(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(Variance({3}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5, 5, 5}), 0.0);
}

TEST(DescriptiveTest, StdDev) {
  EXPECT_NEAR(StdDev({1, 3}), std::sqrt(2.0), 1e-12);
}

TEST(PearsonTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {10, 20, 30}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {5, 3, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftScaleInvariance) {
  // r(x, s1*x + s2) = sign(s1).
  const std::vector<double> x{0.3, 1.7, -2.0, 4.1, 0.0};
  std::vector<double> y;
  for (double v : x) y.push_back(-2.5 * v + 7.0);
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantVectorIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-8);
}

TEST(LogBinomialTest, MatchesDirect) {
  EXPECT_NEAR(std::exp(LogBinomial(10, 3)), 120.0, 1e-8);
  EXPECT_NEAR(std::exp(LogBinomial(52, 5)), 2598960.0, 1e-4);
}

TEST(LogBinomialTest, OutOfRangeIsMinusInf) {
  EXPECT_TRUE(std::isinf(LogBinomial(5, 6)));
  EXPECT_TRUE(std::isinf(LogBinomial(5, -1)));
}

TEST(HypergeomTest, PmfSumsToOne) {
  // Population 20, successes 7, draws 5: sum over k of pmf = 1.
  double total = 0.0;
  for (int k = 0; k <= 5; ++k) total += HypergeomPmf(k, 20, 7, 5);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HypergeomTest, PmfKnownValue) {
  // P(X = 2) drawing 4 from population 10 with 5 successes:
  // C(5,2)*C(5,2)/C(10,4) = 10*10/210.
  EXPECT_NEAR(HypergeomPmf(2, 10, 5, 4), 100.0 / 210.0, 1e-12);
}

TEST(HypergeomTest, UpperTailEdges) {
  EXPECT_DOUBLE_EQ(HypergeomUpperTail(0, 100, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(HypergeomUpperTail(-3, 100, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(HypergeomUpperTail(6, 100, 5, 10), 0.0);  // k > successes
  EXPECT_DOUBLE_EQ(HypergeomUpperTail(6, 100, 10, 5), 0.0);  // k > draws
}

TEST(HypergeomTest, UpperTailComplement) {
  // P(X >= 1) = 1 - P(X = 0).
  const double p0 = HypergeomPmf(0, 50, 8, 6);
  EXPECT_NEAR(HypergeomUpperTail(1, 50, 8, 6), 1.0 - p0, 1e-12);
}

TEST(HypergeomTest, EnrichedSetHasTinyPValue) {
  // 18 of 20 sampled genes carry a term annotating only 60 of 6000 genes:
  // astronomically unlikely by chance.
  const double p = HypergeomUpperTail(18, 6000, 60, 20);
  EXPECT_LT(p, 1e-20);
  EXPECT_GT(p, 0.0);
}

TEST(HypergeomTest, RandomSetHasLargePValue) {
  // 1 of 20 genes carrying a term annotating 300 of 6000 is unremarkable.
  EXPECT_GT(HypergeomUpperTail(1, 6000, 300, 20), 0.3);
}

TEST(FitShiftScaleTest, ExactAffine) {
  const std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y;
  for (double v : x) y.push_back(-2.5 * v + 35.0);
  double s1 = 0, s2 = 0;
  ASSERT_TRUE(FitShiftScale(x, y, &s1, &s2));
  EXPECT_NEAR(s1, -2.5, 1e-12);
  EXPECT_NEAR(s2, 35.0, 1e-12);
  EXPECT_NEAR(MaxAbsResidual(x, y, s1, s2), 0.0, 1e-12);
}

TEST(FitShiftScaleTest, PaperFigure2Relationship) {
  // d_1 = 2.5 * d_3 - 5 on conditions {c5, c1, c3, c9, c7} (Section 1.1).
  const std::vector<double> g3{2, 6, 8, 0, -4};
  const std::vector<double> g1{0, 10, 15, -5, -15};
  double s1 = 0, s2 = 0;
  ASSERT_TRUE(FitShiftScale(g3, g1, &s1, &s2));
  EXPECT_NEAR(s1, 2.5, 1e-12);
  EXPECT_NEAR(s2, -5.0, 1e-12);
}

TEST(FitShiftScaleTest, DegenerateConstantX) {
  double s1 = 0, s2 = 0;
  EXPECT_FALSE(FitShiftScale({3, 3, 3}, {1, 2, 3}, &s1, &s2));
}

TEST(FitShiftScaleTest, TooFewPoints) {
  double s1 = 0, s2 = 0;
  EXPECT_FALSE(FitShiftScale({3}, {1}, &s1, &s2));
}

TEST(MaxAbsResidualTest, ReportsWorstPoint) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> y{0, 1, 2.75};
  EXPECT_NEAR(MaxAbsResidual(x, y, 1.0, 0.0), 0.75, 1e-12);
}

}  // namespace
}  // namespace util
}  // namespace regcluster
