// util::TaskPool: completion semantics, recursive submission (the miner's
// root-task-spawns-subtrees pattern), steal correctness under contention,
// batch reuse, and clean shutdown.

#include "util/task_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(TaskPoolTest, ZeroSelectsHardwareConcurrency) {
  TaskPool pool(0);
  EXPECT_GE(pool.num_workers(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count](int) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskPoolTest, WorkerIndexIsInRange) {
  TaskPool pool(3);
  std::atomic<int> bad{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&bad, &pool](int worker) {
      if (worker < 0 || worker >= 3) bad.fetch_add(1);
      if (pool.current_worker() != worker) bad.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
  // From a non-worker thread there is no current worker.
  EXPECT_EQ(pool.current_worker(), -1);
}

TEST(TaskPoolTest, TasksCanSubmitSubtasks) {
  // A binary fan-out submitted entirely from inside tasks: Wait() must
  // cover transitively spawned work, and every leaf must run exactly once.
  TaskPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int, int)> spawn = [&](int depth, int) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    pool.Submit([&spawn, depth](int w) { spawn(depth - 1, w); });
    pool.Submit([&spawn, depth](int w) { spawn(depth - 1, w); });
  };
  pool.Submit([&spawn](int w) { spawn(7, w); });
  pool.Wait();
  EXPECT_EQ(leaves.load(), 128);  // 2^7
}

TEST(TaskPoolTest, StealsFromASingleLoadedQueue) {
  // All tasks are spawned from inside one chain-task, so they pile onto one
  // worker's deque; the other workers can only make progress by stealing.
  // Each task burns a little time so the submitting worker cannot drain its
  // own deque before thieves arrive.  Correctness = exactly-once execution.
  TaskPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  pool.Submit([&](int) {
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&runs, i](int) {
        runs[static_cast<size_t>(i)].fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
    }
  });
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(TaskPoolTest, ReusableAcrossBatches) {
  TaskPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count](int) { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(TaskPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    TaskPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count](int) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPoolTest, WaitOnIdlePoolReturnsImmediately) {
  TaskPool pool(2);
  pool.Wait();  // nothing submitted
  pool.Submit([](int) {});
  pool.Wait();
  pool.Wait();  // already drained
}

TEST(TaskPoolTest, CancelPendingOnIdlePoolIsANoOp) {
  TaskPool pool(2);
  EXPECT_EQ(pool.CancelPending(), 0);
  pool.Wait();
  std::atomic<int> count{0};
  pool.Submit([&count](int) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);  // pool still usable
}

TEST(TaskPoolTest, CancelPendingDropsQueuedButNotRunningTasks) {
  // One long-running blocker per worker pins the pool, a backlog piles up,
  // then CancelPending() drops the backlog: Wait() must return without
  // running any dropped task, and the blockers still finish.
  TaskPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> blockers_done{0};
  std::atomic<int> backlog_run{0};
  std::atomic<int> blockers_started{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&](int) {
      blockers_started.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      blockers_done.fetch_add(1);
    });
  }
  while (blockers_started.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&backlog_run](int) { backlog_run.fetch_add(1); });
  }
  const int64_t dropped = pool.CancelPending();
  EXPECT_EQ(dropped, 50);
  release.store(true);
  pool.Wait();
  EXPECT_EQ(blockers_done.load(), 2);
  EXPECT_EQ(backlog_run.load(), 0);
}

TEST(TaskPoolTest, PoolIsReusableAfterCancelPending) {
  TaskPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  pool.Submit([&](int) {
    started.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (started.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 20; ++i) pool.Submit([](int) {});
  pool.CancelPending();
  pool.CancelPending();  // idempotent
  release.store(true);
  pool.Wait();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace util
}  // namespace regcluster
