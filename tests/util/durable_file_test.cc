// util::durable_file contract: CRC32C correctness (known vectors +
// incremental composition), atomic-replace writes, and the framed record
// stream whose reader reports a distinct kCorruption per malformed shape.
// Torn-write scenarios are simulated by truncating / flipping bytes in an
// encoded stream; the process-level counterpart lives in
// tests/integration/crash_harness.cc.

#include "util/durable_file.h"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "gmock/gmock.h"
#include "gtest/gtest.h"

namespace regcluster {
namespace util {
namespace {

using ::testing::HasSubstr;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Crc32c

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::string digits = "123456789";
  EXPECT_EQ(Crc32c(digits.data(), digits.size()), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalCompositionMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32c(data.data(), split);
    const uint32_t both = Crc32c(data.data() + split, data.size() - split,
                                 head);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::string data = "payload bytes under test";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] ^= 0x01;
    EXPECT_NE(Crc32c(flipped.data(), flipped.size()), clean) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// ReadFileToString / AtomicWriteFile

TEST(AtomicWriteFileTest, RoundTripsContents) {
  const std::string path = TempPath("durable_roundtrip.bin");
  const std::string contents = std::string("binary\0payload\n", 15);
  ASSERT_TRUE(AtomicWriteFile(path, contents).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
}

TEST(AtomicWriteFileTest, ReplacesExistingFileCompletely) {
  const std::string path = TempPath("durable_replace.bin");
  ASSERT_TRUE(AtomicWriteFile(path, std::string(1000, 'x')).ok());
  ASSERT_TRUE(AtomicWriteFile(path, "short").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");  // no stale tail from the longer predecessor
}

TEST(AtomicWriteFileTest, LeavesNoTempFileBehind) {
  const std::string path = TempPath("durable_notemp.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "contents").ok());
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
}

TEST(ReadFileToStringTest, MissingFileIsNotFound) {
  auto read = ReadFileToString(TempPath("durable_never_written.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(AtomicWriteFileTest, MissingDirectoryIsAnError) {
  const std::string path =
      TempPath("no_such_subdir") + "/no_such_file.bin";
  EXPECT_FALSE(AtomicWriteFile(path, "contents").ok());
}

// ---------------------------------------------------------------------------
// AppendRecord / RecordReader

std::string TwoRecordStream() {
  std::string out;
  AppendRecord(&out, "first record");
  AppendRecord(&out, "second");
  return out;
}

TEST(RecordReaderTest, RoundTripsRecordsInOrder) {
  const std::string stream = TwoRecordStream();
  RecordReader reader(stream);
  ASSERT_FALSE(reader.AtEnd());
  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "first record");
  auto second = reader.Next();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "second");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(RecordReaderTest, EmptyPayloadIsAValidRecord) {
  std::string stream;
  AppendRecord(&stream, "");
  RecordReader reader(stream);
  auto rec = reader.Next();
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(RecordReaderTest, NextPastEndIsOutOfRange) {
  const std::string stream = TwoRecordStream();
  RecordReader reader(stream);
  ASSERT_TRUE(reader.Next().ok());
  ASSERT_TRUE(reader.Next().ok());
  auto past = reader.Next();
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kOutOfRange);
}

TEST(RecordReaderTest, TruncatedHeaderIsDistinctCorruption) {
  const std::string stream = TwoRecordStream();
  // Cut inside the second record's 8-byte header.
  const std::string torn = stream.substr(0, stream.size() - 6 - 4);
  RecordReader reader(torn);
  ASSERT_TRUE(reader.Next().ok());
  auto bad = reader.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_THAT(bad.status().message(), HasSubstr("truncated record header"));
}

TEST(RecordReaderTest, TruncatedPayloadIsDistinctCorruption) {
  const std::string stream = TwoRecordStream();
  // Keep the second record's header but cut its payload short.
  const std::string torn = stream.substr(0, stream.size() - 2);
  RecordReader reader(torn);
  ASSERT_TRUE(reader.Next().ok());
  auto bad = reader.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_THAT(bad.status().message(), HasSubstr("truncated record payload"));
}

TEST(RecordReaderTest, BitFlipInPayloadIsChecksumMismatch) {
  std::string stream = TwoRecordStream();
  stream[8] ^= 0x40;  // first byte of the first payload
  RecordReader reader(stream);
  auto bad = reader.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_THAT(bad.status().message(), HasSubstr("record checksum mismatch"));
}

TEST(RecordReaderTest, BitFlipInStoredCrcIsChecksumMismatch) {
  std::string stream = TwoRecordStream();
  stream[4] ^= 0x01;  // low byte of the first record's stored CRC
  RecordReader reader(stream);
  auto bad = reader.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_THAT(bad.status().message(), HasSubstr("record checksum mismatch"));
}

TEST(RecordReaderTest, EveryTruncationPointIsRejectedNotMisread) {
  // A torn write can stop at any byte.  Whatever the cut, the reader must
  // return the intact prefix records and then a kCorruption (never a wrong
  // payload, never a crash).
  const std::string stream = TwoRecordStream();
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    const std::string torn = stream.substr(0, cut);
    RecordReader reader(torn);
    int intact = 0;
    while (true) {
      auto rec = reader.Next();
      if (rec.ok()) {
        ++intact;
        continue;
      }
      if (reader.AtEnd()) {
        EXPECT_EQ(rec.status().code(), StatusCode::kOutOfRange);
      } else {
        EXPECT_EQ(rec.status().code(), StatusCode::kCorruption)
            << "cut at " << cut;
      }
      break;
    }
    EXPECT_LE(intact, 2);
  }
}

TEST(RecordReaderTest, PositionTracksConsumedBytes) {
  const std::string stream = TwoRecordStream();
  RecordReader reader(stream);
  EXPECT_EQ(reader.position(), 0u);
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(reader.position(), 8u + 12u);  // header + "first record"
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(reader.position(), stream.size());
}

}  // namespace
}  // namespace util
}  // namespace regcluster
