#include "util/logging.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  // The library must not spam library users by default.
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kWarning));
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(static_cast<int>(GetLogLevel()), static_cast<int>(level));
  }
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // suppress actual output during the test
  // Must compile and not crash for the usual payload types.
  REGCLUSTER_LOG(kInfo) << "mined " << 42 << " clusters in " << 1.5 << "s "
                        << std::string("ok") << true;
  REGCLUSTER_LOG(kDebug) << "pointer: " << static_cast<void*>(nullptr);
  SUCCEED();
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // A hundred thousand suppressed messages must run in well under a second.
  for (int i = 0; i < 100000; ++i) {
    REGCLUSTER_LOG(kDebug) << i;
  }
  SUCCEED();
}

TEST(LoggingTest, MessagePrefixContainsLevelAndLocation) {
  LogMessage msg(LogLevel::kWarning, "miner.cc", 99);
  msg.stream() << "payload";
  const std::string text = msg.stream().str();
  EXPECT_NE(text.find("WARN"), std::string::npos);
  EXPECT_NE(text.find("miner.cc:99"), std::string::npos);
  EXPECT_NE(text.find("payload"), std::string::npos);
  // Destructor will emit to stderr (level >= warning); that is fine in a
  // test binary.
}

}  // namespace
}  // namespace util
}  // namespace regcluster
