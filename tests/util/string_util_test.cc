#include "util/string_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyString) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, TabDelimiter) {
  EXPECT_EQ(Split("g1\t1.5\t2", '\t'),
            (std::vector<std::string>{"g1", "1.5", "2"}));
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\t\r\nabc\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(TrimTest, AllWhitespace) {
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TrimTest, InternalWhitespaceKept) { EXPECT_EQ(Trim(" a b "), "a b"); }

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("cluster 3", "cluster"));
  EXPECT_FALSE(StartsWith("clu", "cluster"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseDoubleTest, Plain) {
  auto v = ParseDouble("3.25");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 3.25);
}

TEST(ParseDoubleTest, Negative) {
  EXPECT_DOUBLE_EQ(*ParseDouble("-14.5"), -14.5);
}

TEST(ParseDoubleTest, Scientific) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.64e-07"), 3.64e-07);
}

TEST(ParseDoubleTest, LeadingTrailingSpace) {
  EXPECT_DOUBLE_EQ(*ParseDouble("  7.5 "), 7.5);
}

TEST(ParseDoubleTest, MissingValueTokens) {
  for (const char* tok : {"", "NA", "NaN", "nan", "?", "  "}) {
    auto v = ParseDouble(tok);
    ASSERT_TRUE(v.ok()) << tok;
    EXPECT_TRUE(std::isnan(*v)) << tok;
  }
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseIntTest, Basic) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt(" 0 "), 0);
}

TEST(ParseIntTest, Rejects) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("3.5").ok());
  EXPECT_FALSE(ParseInt("12a").ok());
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string s = StrFormat("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '1');
}

}  // namespace
}  // namespace util
}  // namespace regcluster
