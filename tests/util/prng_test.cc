#include "util/prng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng p(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = p.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(PrngTest, UniformRespectsBounds) {
  Prng p(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = p.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(PrngTest, UniformMeanIsCentered) {
  Prng p(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += p.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(PrngTest, UniformIntCoversInclusiveRange) {
  Prng p(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = p.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PrngTest, UniformIntDegenerate) {
  Prng p(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.UniformInt(9, 9), 9);
}

TEST(PrngTest, UniformIntNegativeBounds) {
  Prng p(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = p.UniformInt(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(PrngTest, GaussianMomentsRoughlyStandard) {
  Prng p(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = p.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(PrngTest, GaussianWithParams) {
  Prng p(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += p.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(PrngTest, BernoulliExtremes) {
  Prng p(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(p.Bernoulli(0.0));
    EXPECT_TRUE(p.Bernoulli(1.0));
  }
}

TEST(PrngTest, BernoulliFrequency) {
  Prng p(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += p.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(PrngTest, ShufflePreservesMultiset) {
  Prng p(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  p.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(PrngTest, ShuffleActuallyPermutes) {
  Prng p(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  const std::vector<int> orig = v;
  p.Shuffle(&v);
  EXPECT_NE(v, orig);  // probability of identity is ~1/50!
}

TEST(PrngTest, SampleWithoutReplacementBasics) {
  Prng p(31);
  const std::vector<int> s = p.SampleWithoutReplacement(10, 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (int x : s) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 10);
  }
}

TEST(PrngTest, SampleWithoutReplacementFull) {
  Prng p(37);
  const std::vector<int> s = p.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(PrngTest, SampleWithoutReplacementEmpty) {
  Prng p(37);
  EXPECT_TRUE(p.SampleWithoutReplacement(5, 0).empty());
  EXPECT_TRUE(p.SampleWithoutReplacement(0, 0).empty());
}

TEST(PrngTest, SampleWithoutReplacementUniform) {
  // Every element should appear with frequency ~ k/n.
  Prng p(41);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (int x : p.SampleWithoutReplacement(10, 3)) {
      ++counts[static_cast<size_t>(x)];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

}  // namespace
}  // namespace util
}  // namespace regcluster
