// util::Fnv128 / Hash128: determinism, sensitivity to order and content,
// and the separator property the miner's dedup key relies on.

#include "util/hash128.h"

#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace regcluster {
namespace util {
namespace {

Hash128 HashSeq(const std::vector<int>& xs) {
  Fnv128 h;
  for (int x : xs) h.MixInt(x);
  return h.Digest();
}

TEST(Hash128Test, DeterministicAndNonTrivial) {
  const Hash128 a = HashSeq({1, 2, 3});
  const Hash128 b = HashSeq({1, 2, 3});
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.hi != 0 || a.lo != 0);
  // Empty input hashes to the FNV offset basis, not zero.
  const Hash128 empty = Fnv128().Digest();
  EXPECT_NE(empty, Hash128{});
}

TEST(Hash128Test, OrderAndContentSensitive) {
  EXPECT_NE(HashSeq({1, 2, 3}), HashSeq({3, 2, 1}));
  EXPECT_NE(HashSeq({1, 2, 3}), HashSeq({1, 2, 4}));
  EXPECT_NE(HashSeq({1, 2, 3}), HashSeq({1, 2, 3, 0}));
  EXPECT_NE(HashSeq({0}), HashSeq({}));
}

TEST(Hash128Test, SeparatorDisambiguatesChainFromGenes) {
  // The miner hashes (chain | -1 | genes); moving an id across the
  // separator must change the digest.
  EXPECT_NE(HashSeq({7, 2, -1, 5}), HashSeq({7, -1, 2, 5}));
}

TEST(Hash128Test, NoCollisionsOnRandomKeys) {
  // 100k random short int sequences (the dedup key shape): all distinct.
  Prng prng(2025);
  std::unordered_set<Hash128, Hash128Hasher> seen;
  for (int i = 0; i < 100000; ++i) {
    Fnv128 h;
    const int len = static_cast<int>(prng.UniformInt(2, 10));
    for (int k = 0; k < len; ++k) {
      h.MixInt(static_cast<int>(prng.UniformInt(0, 4000)));
    }
    h.MixInt(-1);
    h.MixInt(static_cast<int>(prng.UniformInt(0, 1000000)));
    seen.insert(h.Digest());
  }
  // Random inputs may repeat; distinct inputs must not collide.  With 100k
  // draws from this space the expected number of *input* repeats is tiny,
  // so require near-total uniqueness rather than an exact count.
  EXPECT_GT(seen.size(), 99900u);
}

}  // namespace
}  // namespace util
}  // namespace regcluster
