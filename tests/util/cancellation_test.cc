// util::CancellationToken / DeadlineSource / BudgetGuard: trip semantics,
// first-reason-wins latching, hard/soft severity split, the fault-injection
// poll countdown, and thread-safety of concurrent cancellation.

#include "util/cancellation.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

TEST(StopReasonTest, NamesAreStable) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "none");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kMemoryBudget), "memory_budget");
  EXPECT_STREQ(StopReasonName(StopReason::kNodeBudget), "node_budget");
  EXPECT_STREQ(StopReasonName(StopReason::kClusterBudget), "cluster_budget");
}

TEST(StopReasonTest, HardnessSplit) {
  EXPECT_FALSE(IsHardStop(StopReason::kNone));
  EXPECT_TRUE(IsHardStop(StopReason::kCancelled));
  EXPECT_TRUE(IsHardStop(StopReason::kDeadline));
  EXPECT_TRUE(IsHardStop(StopReason::kMemoryBudget));
  EXPECT_FALSE(IsHardStop(StopReason::kNodeBudget));
  EXPECT_FALSE(IsHardStop(StopReason::kClusterBudget));
}

TEST(CancellationTokenTest, StartsClean) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::kNone);
  EXPECT_FALSE(token.Poll());  // unarmed Poll is a no-op
}

TEST(CancellationTokenTest, CancelIsIdempotentFirstReasonWins) {
  CancellationToken token;
  token.Cancel(StopReason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
  token.Cancel(StopReason::kCancelled);  // too late; ignored
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
}

TEST(CancellationTokenTest, CancelAfterPollsTripsOnExactPoll) {
  CancellationToken token;
  token.CancelAfterPolls(3);
  EXPECT_FALSE(token.Poll());  // 1st
  EXPECT_FALSE(token.Poll());  // 2nd
  EXPECT_TRUE(token.Poll());   // 3rd trips
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::kCancelled);
  EXPECT_TRUE(token.Poll());  // stays tripped
}

TEST(CancellationTokenTest, CancelAfterOnePollTripsImmediately) {
  CancellationToken token;
  token.CancelAfterPolls(1);
  EXPECT_TRUE(token.Poll());
}

TEST(CancellationTokenTest, ConcurrentCancelLatchesExactlyOneReason) {
  for (int round = 0; round < 20; ++round) {
    CancellationToken token;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&token, t] {
        token.Cancel(t % 2 == 0 ? StopReason::kCancelled
                                : StopReason::kDeadline);
      });
    }
    for (auto& th : threads) th.join();
    const StopReason r = token.reason();
    EXPECT_TRUE(r == StopReason::kCancelled || r == StopReason::kDeadline);
  }
}

TEST(CancellationTokenTest, ConcurrentPollCountdownTripsExactlyOnce) {
  // 4 threads x 100 polls against a countdown of 200: the token must trip
  // exactly at the 200th global poll, never twice, never not at all.
  CancellationToken token;
  token.CancelAfterPolls(200);
  std::atomic<int> trips{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      bool was_cancelled = false;
      for (int i = 0; i < 100; ++i) {
        const bool now = token.Poll();
        if (now && !was_cancelled) was_cancelled = true;
      }
      if (was_cancelled) trips.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(trips.load(), 1);
}

TEST(DeadlineSourceTest, DefaultNeverExpires) {
  DeadlineSource d;
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1e12);
}

TEST(DeadlineSourceTest, ZeroDeadlineExpiresImmediately) {
  DeadlineSource d = DeadlineSource::AfterMillis(0.0);
  EXPECT_TRUE(d.active());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineSourceTest, GenerousDeadlineStillPending) {
  DeadlineSource d = DeadlineSource::AfterMillis(60'000.0);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0.0);
}

TEST(BudgetGuardTest, LimitsAnyDetectsEachSource) {
  EXPECT_FALSE(BudgetGuard::Limits{}.any());
  BudgetGuard::Limits nodes;
  nodes.max_nodes = 10;
  EXPECT_TRUE(nodes.any());
  BudgetGuard::Limits clusters;
  clusters.max_clusters = 0;
  EXPECT_TRUE(clusters.any());
  BudgetGuard::Limits deadline;
  deadline.deadline_ms = 5.0;
  EXPECT_TRUE(deadline.any());
  BudgetGuard::Limits memory;
  memory.soft_memory_limit_bytes = 1 << 20;
  EXPECT_TRUE(memory.any());
  BudgetGuard::Limits token;
  token.token = std::make_shared<CancellationToken>();
  EXPECT_TRUE(token.any());
}

TEST(BudgetGuardTest, UnlimitedGuardNeverStops) {
  BudgetGuard guard(BudgetGuard::Limits{}, 2);
  EXPECT_FALSE(guard.ShouldStop());
  guard.AddNodes(1'000'000);
  guard.AddClusters(1'000'000);
  EXPECT_EQ(guard.Poll(0, 1 << 30), StopReason::kNone);
  EXPECT_FALSE(guard.ShouldStop());
}

TEST(BudgetGuardTest, NodeBudgetTripsAtLimit) {
  BudgetGuard::Limits limits;
  limits.max_nodes = 100;
  BudgetGuard guard(limits, 1);
  guard.AddNodes(99);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kNone);
  guard.AddNodes(1);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kNodeBudget);
  EXPECT_TRUE(guard.ShouldStop());
  EXPECT_EQ(guard.hard_reason(), StopReason::kNone);  // soft stop only
  EXPECT_EQ(guard.total_nodes(), 100);
}

TEST(BudgetGuardTest, ClusterBudgetTripsAtLimit) {
  BudgetGuard::Limits limits;
  limits.max_clusters = 5;
  BudgetGuard guard(limits, 1);
  guard.AddClusters(5);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kClusterBudget);
  EXPECT_EQ(guard.hard_reason(), StopReason::kNone);
}

TEST(BudgetGuardTest, MemoryLimitSumsSlotsAndRecordsPeak) {
  BudgetGuard::Limits limits;
  limits.soft_memory_limit_bytes = 1000;
  BudgetGuard guard(limits, 3);
  EXPECT_EQ(guard.Poll(0, 400), StopReason::kNone);
  EXPECT_EQ(guard.Poll(1, 500), StopReason::kNone);
  EXPECT_EQ(guard.peak_bytes(), 900);
  // Third slot pushes the sum over the limit -> hard stop.
  EXPECT_EQ(guard.Poll(2, 200), StopReason::kMemoryBudget);
  EXPECT_EQ(guard.hard_reason(), StopReason::kMemoryBudget);
  EXPECT_EQ(guard.peak_bytes(), 1100);
}

TEST(BudgetGuardTest, TokenCancellationIsHard) {
  BudgetGuard::Limits limits;
  limits.token = std::make_shared<CancellationToken>();
  BudgetGuard guard(limits, 1);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kNone);
  limits.token->Cancel();
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kCancelled);
  EXPECT_EQ(guard.hard_reason(), StopReason::kCancelled);
}

TEST(BudgetGuardTest, ArmedTokenCountsGuardPolls) {
  BudgetGuard::Limits limits;
  limits.token = std::make_shared<CancellationToken>();
  limits.token->CancelAfterPolls(2);
  BudgetGuard guard(limits, 1);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kNone);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kCancelled);
}

TEST(BudgetGuardTest, ExpiredDeadlineTripsOnPoll) {
  BudgetGuard::Limits limits;
  limits.deadline_ms = 0.0;
  BudgetGuard guard(limits, 1);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kDeadline);
  EXPECT_EQ(guard.hard_reason(), StopReason::kDeadline);
}

TEST(BudgetGuardTest, HardReasonShadowsEarlierSoftReason) {
  // A soft node-budget trip must not mask a later hard cancellation:
  // reason() reports hard reasons with precedence so that recovery phases
  // keyed on hard_reason() and callers keyed on reason() agree.
  BudgetGuard::Limits limits;
  limits.max_nodes = 1;
  limits.token = std::make_shared<CancellationToken>();
  BudgetGuard guard(limits, 1);
  guard.AddNodes(5);
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kNodeBudget);
  limits.token->Cancel();
  EXPECT_EQ(guard.Poll(0, 0), StopReason::kCancelled);
  EXPECT_EQ(guard.reason(), StopReason::kCancelled);
}

TEST(BudgetGuardTest, TripLatchesFirstReasonPerSeverity) {
  BudgetGuard guard(BudgetGuard::Limits{}, 1);
  guard.Trip(StopReason::kNodeBudget);
  guard.Trip(StopReason::kClusterBudget);  // second soft reason ignored
  EXPECT_EQ(guard.reason(), StopReason::kNodeBudget);
  guard.Trip(StopReason::kDeadline);
  guard.Trip(StopReason::kCancelled);  // second hard reason ignored
  EXPECT_EQ(guard.reason(), StopReason::kDeadline);
  EXPECT_EQ(guard.hard_reason(), StopReason::kDeadline);
}

TEST(BudgetGuardTest, ConcurrentPollsAreRaceFree) {
  // 4 workers each report 10k nodes in chunks against a 20k budget; the
  // guard must latch kNodeBudget exactly once and totals must be exact.
  BudgetGuard::Limits limits;
  limits.max_nodes = 20'000;
  BudgetGuard guard(limits, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&guard, t] {
      for (int i = 0; i < 100; ++i) {
        guard.AddNodes(100);
        guard.Poll(t, 64 * i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(guard.total_nodes(), 40'000);
  EXPECT_EQ(guard.reason(), StopReason::kNodeBudget);
  EXPECT_GE(guard.peak_bytes(), 64 * 99);
}

}  // namespace
}  // namespace util
}  // namespace regcluster
