// Unit tests for the flat uint64 bitset helpers, with particular attention
// to the word boundary (bits 63/64/65) and the tail-word masking invariant
// FillOnes promises.

#include "util/bitset.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace regcluster {
namespace util {
namespace {

TEST(BitsetTest, WordsForBits) {
  EXPECT_EQ(WordsForBits(0), 0);
  EXPECT_EQ(WordsForBits(1), 1);
  EXPECT_EQ(WordsForBits(63), 1);
  EXPECT_EQ(WordsForBits(64), 1);
  EXPECT_EQ(WordsForBits(65), 2);
  EXPECT_EQ(WordsForBits(128), 2);
  EXPECT_EQ(WordsForBits(129), 3);
}

TEST(BitsetTest, SetAndTestRoundTrip) {
  std::vector<uint64_t> words(static_cast<size_t>(WordsForBits(130)), 0);
  const int probes[] = {0, 1, 62, 63, 64, 65, 127, 128, 129};
  for (int b : probes) SetBit(words.data(), b);
  for (int b = 0; b < 130; ++b) {
    const bool expected =
        std::find(std::begin(probes), std::end(probes), b) != std::end(probes);
    EXPECT_EQ(TestBit(words.data(), b), expected) << "bit " << b;
  }
}

TEST(BitsetTest, SetBitIsIdempotent) {
  uint64_t word = 0;
  SetBit(&word, 5);
  SetBit(&word, 5);
  EXPECT_EQ(word, uint64_t{1} << 5);
}

TEST(BitsetTest, FillOnesMasksTheTailWord) {
  for (int bits : {1, 63, 64, 65, 100, 128, 130}) {
    std::vector<uint64_t> words(static_cast<size_t>(WordsForBits(bits)),
                                ~uint64_t{0});  // dirty start
    FillOnes(words.data(), bits);
    for (int b = 0; b < bits; ++b) {
      EXPECT_TRUE(TestBit(words.data(), b)) << "bits=" << bits << " b=" << b;
    }
    // Bits beyond `bits` in the tail word must be zero.
    const int tail = bits % kBitsPerWord;
    if (tail != 0) {
      EXPECT_EQ(words.back() >> tail, 0u) << "bits=" << bits;
    }
  }
}

TEST(BitsetTest, ForEachSetBitVisitsAscending) {
  std::vector<uint64_t> words(3, 0);
  const std::vector<int> expected = {0, 31, 63, 64, 100, 128, 191};
  for (int b : expected) SetBit(words.data(), b);
  std::vector<int> seen;
  ForEachSetBit(words.data(), 3, [&](int b) { seen.push_back(b); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, ForEachSetBitOnEmptyAndZeroWords) {
  std::vector<uint64_t> words(2, 0);
  int calls = 0;
  ForEachSetBit(words.data(), 2, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  ForEachSetBit(words.data(), 0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BitsetTest, ForEachSetBitFullWords) {
  std::vector<uint64_t> words(2, ~uint64_t{0});
  int calls = 0;
  int last = -1;
  ForEachSetBit(words.data(), 2, [&](int b) {
    EXPECT_EQ(b, last + 1);  // dense ascending
    last = b;
    ++calls;
  });
  EXPECT_EQ(calls, 128);
}

}  // namespace
}  // namespace util
}  // namespace regcluster
