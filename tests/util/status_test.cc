#include "util/status.h"

#include <gtest/gtest.h>

namespace regcluster {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad gamma").message(), "bad gamma");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IoError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, DefaultConstructedIsError) {
  StatusOr<int> v;
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    REGCLUSTER_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

TEST(StatusOrTest, ReturnIfErrorMacroPassesOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    REGCLUSTER_RETURN_IF_ERROR(inner());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace util
}  // namespace regcluster
