// Property tests for the runtime-dispatched SIMD kernel layer.
//
// The layer's contract is *bit-identical output across levels*: every
// accelerated kernel must reproduce the scalar reference exactly, and the
// radix sort pipeline must reproduce the legacy comparator std::sort byte
// for byte.  The suites here drive the edge cases where that contract is
// easiest to break -- signed zeros, denormals, equal-score ties, negative
// values (key complementing), and bitset rows straddling the 64-bit word
// boundary -- and run every compiled-in level against the scalar kernels.
// The ASan+UBSan CI job runs this binary to catch out-of-bounds lanes and
// misaligned vector loads.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "util/bitset.h"
#include "util/prng.h"
#include "util/simd/dispatch.h"
#include "util/simd/radix_sort.h"

namespace regcluster {
namespace util {
namespace simd {
namespace {

// Every level compiled in and supported on this machine.  Scalar is always
// present; accelerated levels join when the build + CPU allow.
std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  for (Level l : {Level::kAvx2, Level::kNeon}) {
    if (LevelAvailable(l)) levels.push_back(l);
  }
  return levels;
}

const SimdOps& OpsFor(Level level) {
  EXPECT_TRUE(SetLevel(level).ok());
  const SimdOps& ops = Ops();
  EXPECT_EQ(ops.level, level);
  return ops;
}

// Restores auto-detection after each test so suites cannot leak a pinned
// level into each other.
class SimdKernelsTest : public ::testing::Test {
 protected:
  ~SimdKernelsTest() override { EXPECT_TRUE(ApplySimdFlag("auto").ok()); }
};

// ---------------------------------------------------------------------------
// OrderKey / InverseOrderKey
// ---------------------------------------------------------------------------

TEST_F(SimdKernelsTest, OrderKeyPreservesNumericOrder) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const std::vector<double> ascending = {
      -std::numeric_limits<double>::max(), -1.0, -1e-300, -denorm,
      0.0,  // and -0.0 shares this key (tested separately)
      denorm, 2 * denorm, 1e-300, 1.0, 1.0 + 1e-15,
      std::numeric_limits<double>::max()};
  for (size_t i = 1; i < ascending.size(); ++i) {
    EXPECT_LT(OrderKey(ascending[i - 1]), OrderKey(ascending[i]))
        << ascending[i - 1] << " vs " << ascending[i];
  }
}

TEST_F(SimdKernelsTest, OrderKeyCollapsesSignedZeros) {
  EXPECT_EQ(OrderKey(0.0), OrderKey(-0.0));
}

TEST_F(SimdKernelsTest, InverseOrderKeyRoundTripsExactly) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const std::vector<double> values = {0.0,    denorm, -denorm, 1.5,
                                      -2.75,  1e-308, -1e-308, 42.0,
                                      -1e300, 1e300};
  for (double d : values) {
    const double back = InverseOrderKey(OrderKey(d));
    EXPECT_EQ(std::bit_cast<uint64_t>(d), std::bit_cast<uint64_t>(back)) << d;
  }
  // The one deliberate exception: -0.0 canonicalizes to +0.0.
  EXPECT_EQ(std::bit_cast<uint64_t>(0.0),
            std::bit_cast<uint64_t>(InverseOrderKey(OrderKey(-0.0))));
}

// ---------------------------------------------------------------------------
// Radix sort vs the reference comparator sort
// ---------------------------------------------------------------------------

// Reference: the legacy comparator index-sort the radix pipeline replaces,
// plus the canonicalized sorted column every level promises.
void ComparatorSort(const std::vector<double>& h, const std::vector<int>& gene,
                    std::vector<int>* order, std::vector<double>* sorted_h) {
  const int n = static_cast<int>(h.size());
  order->resize(h.size());
  sorted_h->resize(h.size());
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(), [&](int a, int b) {
    if (h[a] != h[b]) return h[a] < h[b];
    return gene[a] < gene[b];
  });
  for (int i = 0; i < n; ++i) {
    (*sorted_h)[i] = InverseOrderKey(OrderKey(h[(*order)[i]]));
  }
}

// Builds a miner-shaped scored column: two gene-ascending halves with
// disjoint gene sets ([0, split) even ids, [split, n) odd ids).
struct ScoredColumn {
  std::vector<double> h;
  std::vector<int> gene;
  int split = 0;
};

ScoredColumn MakeColumn(int n, int split, Prng* prng,
                        bool clustered_scores = false) {
  ScoredColumn col;
  col.split = split;
  col.h.resize(n);
  col.gene.resize(n);
  for (int i = 0; i < split; ++i) col.gene[i] = 2 * i;
  for (int i = split; i < n; ++i) col.gene[i] = 2 * (i - split) + 1;
  for (int i = 0; i < n; ++i) {
    col.h[i] = clustered_scores ? 1.0 + prng->Uniform(0.0, 1e-3)
                                : prng->Uniform(-10.0, 10.0);
  }
  return col;
}

void ExpectRadixMatchesComparator(const ScoredColumn& col) {
  const int n = static_cast<int>(col.h.size());
  std::vector<int> want_order;
  std::vector<double> want_h;
  ComparatorSort(col.h, col.gene, &want_order, &want_h);

  SortScratch scratch;
  std::vector<int> got_order(col.h.size());
  std::vector<double> got_h(col.h.size());
  RadixSortScored(col.h.data(), col.gene.data(), col.split, n,
                  got_order.data(), got_h.data(), &scratch);
  ASSERT_EQ(want_order, got_order) << "n=" << n << " split=" << col.split;
  // memcmp, not operator==: sorted_h must match bit for bit (-0.0 vs 0.0).
  // Guard n == 0 -- data() may be null there and memcmp(null, ...) is UB.
  if (n > 0) {
    ASSERT_EQ(0, std::memcmp(want_h.data(), got_h.data(),
                             want_h.size() * sizeof(double)))
        << "sorted_h differs, n=" << n;
  }
}

TEST_F(SimdKernelsTest, RadixMatchesComparatorAcrossSizes) {
  Prng prng(7);
  // Sizes bracketing every pipeline tier: insertion (<= 32), hybrid
  // (<= 320), full LSD, plus the empty and singleton edges.
  for (int n : {0, 1, 2, 3, 31, 32, 33, 64, 80, 127, 319, 320, 321, 1000}) {
    for (int rep = 0; rep < 8; ++rep) {
      const int split = static_cast<int>(prng.UniformInt(0, n));
      ExpectRadixMatchesComparator(MakeColumn(n, split, &prng));
    }
  }
}

TEST_F(SimdKernelsTest, RadixMatchesComparatorOnClusteredScores) {
  // The miner's real columns: tightly clustered values whose keys agree on
  // most high bytes (exercises the byte-skipping and the occupied-digit
  // range of the hybrid's prefix sums).
  Prng prng(11);
  for (int n : {40, 80, 160, 320, 640}) {
    for (int rep = 0; rep < 8; ++rep) {
      const int split = static_cast<int>(prng.UniformInt(0, n));
      ExpectRadixMatchesComparator(
          MakeColumn(n, split, &prng, /*clustered_scores=*/true));
    }
  }
}

TEST_F(SimdKernelsTest, RadixHandlesSignedZerosDenormalsAndTies) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  Prng prng(13);
  for (int n : {8, 33, 100, 400}) {
    ScoredColumn col = MakeColumn(n, n / 2, &prng);
    // Sprinkle the adversarial values, including exact duplicates so the
    // gene tiebreak (stability) is load-bearing.
    const double specials[] = {0.0,     -0.0,  denorm, -denorm, 1.0,
                               1.0,     -1.0,  5e-324, 2.5,     2.5,
                               -denorm, -0.0,  0.0,    1e-308};
    for (int i = 0; i < n; ++i) {
      if (i % 3 != 0) {
        col.h[i] = specials[static_cast<size_t>(i) % std::size(specials)];
      }
    }
    ExpectRadixMatchesComparator(col);
  }
}

TEST_F(SimdKernelsTest, RadixHandlesAllEqualColumn) {
  Prng prng(17);
  for (int n : {5, 64, 350}) {
    ScoredColumn col = MakeColumn(n, n / 3, &prng);
    std::fill(col.h.begin(), col.h.end(), 3.25);
    ExpectRadixMatchesComparator(col);  // pure gene-tiebreak permutation
  }
}

// ---------------------------------------------------------------------------
// Cross-level differentials: every kernel vs the scalar reference
// ---------------------------------------------------------------------------

TEST_F(SimdKernelsTest, SortScoredBitIdenticalAcrossLevels) {
  Prng prng(19);
  for (int n : {0, 1, 7, 32, 64, 80, 321, 700}) {
    const int split = static_cast<int>(prng.UniformInt(0, n));
    const ScoredColumn col = MakeColumn(n, split, &prng);
    std::vector<int> ref_order(col.h.size());
    std::vector<double> ref_h(col.h.size());
    SortScratch scratch;
    OpsFor(Level::kScalar)
        .sort_scored(col.h.data(), col.gene.data(), split, n, ref_order.data(),
                     ref_h.data(), &scratch);
    for (Level level : AvailableLevels()) {
      std::vector<int> order(col.h.size());
      std::vector<double> sorted_h(col.h.size());
      OpsFor(level).sort_scored(col.h.data(), col.gene.data(), split, n,
                                order.data(), sorted_h.data(), &scratch);
      EXPECT_EQ(ref_order, order) << LevelName(level) << " n=" << n;
      if (n > 0) {  // data() may be null at n == 0; memcmp(null, ...) is UB
        EXPECT_EQ(0, std::memcmp(ref_h.data(), sorted_h.data(),
                                 ref_h.size() * sizeof(double)))
            << LevelName(level) << " n=" << n;
      }
    }
  }
}

TEST_F(SimdKernelsTest, DivideColumnsBitIdenticalAcrossLevels) {
  Prng prng(23);
  // Lengths around the 4-lane AVX2 boundary plus a long tail.
  for (int n : {0, 1, 3, 4, 5, 7, 8, 63, 64, 65, 1000}) {
    std::vector<double> base(static_cast<size_t>(n));
    std::vector<double> denom(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      base[i] = prng.Uniform(-100.0, 100.0);
      denom[i] = prng.Uniform(0.5, 10.0) * (i % 2 == 0 ? 1.0 : -1.0);
    }
    std::vector<double> ref = base;
    OpsFor(Level::kScalar).divide_columns(ref.data(), denom.data(), n);
    for (Level level : AvailableLevels()) {
      std::vector<double> h = base;
      OpsFor(level).divide_columns(h.data(), denom.data(), n);
      if (n > 0) {  // data() may be null at n == 0; memcmp(null, ...) is UB
        ASSERT_EQ(0,
                  std::memcmp(ref.data(), h.data(), ref.size() * sizeof(double)))
            << LevelName(level) << " n=" << n;
      }
    }
  }
}

TEST_F(SimdKernelsTest, GatherScoredBitIdenticalAcrossLevels) {
  Prng prng(29);
  const int num_genes = 40;
  const int num_conds = 17;
  std::vector<double> matrix(static_cast<size_t>(num_genes * num_conds));
  for (double& v : matrix) v = prng.Uniform(-5.0, 5.0);
  for (int count : {0, 1, 3, 4, 5, 9, 40}) {
    std::vector<int> genes;
    std::vector<double> denoms;
    std::vector<double> bases;
    std::vector<int64_t> row_off;
    std::vector<int> idx;
    for (int m = 0; m < num_genes; ++m) {
      genes.push_back(m);
      denoms.push_back(prng.Uniform(0.5, 4.0));
      bases.push_back(matrix[static_cast<size_t>(m * num_conds)]);
      row_off.push_back(static_cast<int64_t>(m) * num_conds);
    }
    for (int k = 0; k < count; ++k) {
      idx.push_back(static_cast<int>(prng.UniformInt(0, num_genes - 1)));
    }
    GatherScoredArgs args;
    args.genes = genes.data();
    args.denoms = denoms.data();
    args.bases = bases.data();
    args.row_off = row_off.data();
    args.matrix = matrix.data();
    args.cand = static_cast<int>(prng.UniformInt(0, num_conds - 1));

    std::vector<int> ref_gene(static_cast<size_t>(count) + 1, -7);
    std::vector<double> ref_denom(static_cast<size_t>(count) + 1, -7.0);
    std::vector<double> ref_h(static_cast<size_t>(count) + 1, -7.0);
    OpsFor(Level::kScalar)
        .gather_scored(args, count, idx.data(), ref_gene.data(),
                       ref_denom.data(), ref_h.data());
    for (Level level : AvailableLevels()) {
      std::vector<int> out_gene(static_cast<size_t>(count) + 1, -7);
      std::vector<double> out_denom(static_cast<size_t>(count) + 1, -7.0);
      std::vector<double> out_h(static_cast<size_t>(count) + 1, -7.0);
      OpsFor(level).gather_scored(args, count, idx.data(), out_gene.data(),
                                  out_denom.data(), out_h.data());
      EXPECT_EQ(ref_gene, out_gene) << LevelName(level) << " count=" << count;
      EXPECT_EQ(0, std::memcmp(ref_denom.data(), out_denom.data(),
                               ref_denom.size() * sizeof(double)))
          << LevelName(level);
      EXPECT_EQ(0, std::memcmp(ref_h.data(), out_h.data(),
                               ref_h.size() * sizeof(double)))
          << LevelName(level);
    }
  }
}

TEST_F(SimdKernelsTest, BitsetKernelsBitIdenticalAcrossLevels) {
  Prng prng(31);
  // Word counts straddling the 64-bit boundary (bits 63/64/65 live in 1, 1,
  // and 2 words) and the kWideRowWords dispatch threshold.
  for (int bits : {63, 64, 65, 128, 500, 1024}) {
    const int words = WordsForBits(bits);
    std::vector<uint64_t> a(static_cast<size_t>(words));
    std::vector<uint64_t> b(static_cast<size_t>(words));
    std::vector<uint64_t> mask(static_cast<size_t>(words));
    for (int w = 0; w < words; ++w) {
      a[w] = prng.Next64();
      b[w] = prng.Next64();
      mask[w] = prng.Next64();
    }

    std::vector<uint64_t> ref_and(static_cast<size_t>(words));
    std::vector<uint64_t> ref_or = mask;
    std::vector<uint64_t> ref_copy(static_cast<size_t>(words), 0xABu);
    const SimdOps& scalar = OpsFor(Level::kScalar);
    scalar.and_words(ref_and.data(), a.data(), b.data(), words);
    scalar.or_words_into(ref_or.data(), a.data(), words);
    scalar.copy_words(ref_copy.data(), b.data(), words);
    const int64_t ref_pop =
        scalar.andnot_mask_popcount(a.data(), b.data(), mask.data(), words);

    for (Level level : AvailableLevels()) {
      const SimdOps& ops = OpsFor(level);
      std::vector<uint64_t> got_and(static_cast<size_t>(words));
      std::vector<uint64_t> got_or = mask;
      std::vector<uint64_t> got_copy(static_cast<size_t>(words), 0xABu);
      ops.and_words(got_and.data(), a.data(), b.data(), words);
      ops.or_words_into(got_or.data(), a.data(), words);
      ops.copy_words(got_copy.data(), b.data(), words);
      EXPECT_EQ(ref_and, got_and) << LevelName(level) << " bits=" << bits;
      EXPECT_EQ(ref_or, got_or) << LevelName(level) << " bits=" << bits;
      EXPECT_EQ(ref_copy, got_copy) << LevelName(level) << " bits=" << bits;
      EXPECT_EQ(ref_pop, ops.andnot_mask_popcount(a.data(), b.data(),
                                                  mask.data(), words))
          << LevelName(level) << " bits=" << bits;

      // The Auto wrappers must agree with direct dispatch at every width
      // (they inline the scalar loop below kWideRowWords).
      std::vector<uint64_t> auto_and(static_cast<size_t>(words));
      AndWordsAuto(ops, auto_and.data(), a.data(), b.data(), words);
      EXPECT_EQ(ref_and, auto_and) << LevelName(level) << " bits=" << bits;
      EXPECT_EQ(ref_pop, AndNotMaskPopcountAuto(ops, a.data(), b.data(),
                                                mask.data(), words))
          << LevelName(level) << " bits=" << bits;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST_F(SimdKernelsTest, ParseLevelAcceptsKnownNamesOnly) {
  for (const auto& [name, level] :
       {std::pair<const char*, Level>{"scalar", Level::kScalar},
        {"avx2", Level::kAvx2},
        {"neon", Level::kNeon}}) {
    auto parsed = ParseLevel(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, level);
    EXPECT_STREQ(LevelName(level), name);
  }
  EXPECT_TRUE(ParseLevel("auto").ok());
  for (const char* bad : {"", "AVX2", "sse", "scalar ", "3"}) {
    EXPECT_FALSE(ParseLevel(bad).ok()) << "'" << bad << "'";
  }
}

TEST_F(SimdKernelsTest, SetLevelRejectsUnavailableLevels) {
  ASSERT_TRUE(SetLevel(Level::kScalar).ok());
  EXPECT_EQ(CurrentLevel(), Level::kScalar);
  for (Level l : {Level::kAvx2, Level::kNeon}) {
    if (LevelAvailable(l)) {
      EXPECT_TRUE(SetLevel(l).ok());
      EXPECT_EQ(CurrentLevel(), l);
    } else {
      EXPECT_FALSE(SetLevel(l).ok());
      // A failed pin leaves the current set unchanged.
      EXPECT_NE(CurrentLevel(), l);
    }
  }
}

TEST_F(SimdKernelsTest, ApplySimdFlagRoutesNames) {
  ASSERT_TRUE(ApplySimdFlag("scalar").ok());
  EXPECT_EQ(CurrentLevel(), Level::kScalar);
  ASSERT_TRUE(ApplySimdFlag("auto").ok());
  EXPECT_EQ(CurrentLevel(), DetectBestLevel());
  EXPECT_FALSE(ApplySimdFlag("turbo").ok());
}

TEST_F(SimdKernelsTest, DetectBestLevelIsAvailable) {
  EXPECT_TRUE(LevelAvailable(DetectBestLevel()));
  EXPECT_TRUE(LevelAvailable(Level::kScalar));
}

}  // namespace
}  // namespace simd
}  // namespace util
}  // namespace regcluster
