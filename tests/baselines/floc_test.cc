#include "baselines/floc.h"

#include <gtest/gtest.h>

#include "baselines/cheng_church.h"
#include "eval/match.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

matrix::ExpressionMatrix NoiseWithAdditiveBlock(int genes, int conds,
                                                int block_genes,
                                                int block_conds,
                                                uint64_t seed) {
  util::Prng prng(seed);
  matrix::ExpressionMatrix m(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  for (int g = 0; g < block_genes; ++g) {
    for (int c = 0; c < block_conds; ++c) m(g, c) = 2.0 * g + 1.5 * c;
  }
  return m;
}

TEST(FlocTest, ReducesMeanResidue) {
  const auto data = NoiseWithAdditiveBlock(40, 12, 8, 6, 5);
  FlocOptions o;
  o.num_clusters = 4;
  FlocStats stats;
  auto out = MineFloc(data, o, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 4u);
  EXPECT_GT(stats.sweeps, 0);
  EXPECT_LT(stats.final_mean_residue, stats.initial_mean_residue);
}

TEST(FlocTest, RespectsMinimumSizes) {
  const auto data = NoiseWithAdditiveBlock(30, 10, 6, 5, 6);
  FlocOptions o;
  o.num_clusters = 3;
  o.min_genes = 3;
  o.min_conditions = 3;
  auto out = MineFloc(data, o);
  ASSERT_TRUE(out.ok());
  for (const core::Bicluster& b : *out) {
    EXPECT_GE(b.num_genes(), 3);
    EXPECT_GE(b.num_conditions(), 3);
  }
}

TEST(FlocTest, FindsTheAdditiveBlock) {
  const auto data = NoiseWithAdditiveBlock(40, 12, 10, 6, 7);
  FlocOptions o;
  o.num_clusters = 5;
  o.max_sweeps = 80;
  auto out = MineFloc(data, o);
  ASSERT_TRUE(out.ok());
  core::Bicluster truth;
  for (int g = 0; g < 10; ++g) truth.genes.push_back(g);
  for (int c = 0; c < 6; ++c) truth.conditions.push_back(c);
  double best = 0.0;
  for (const core::Bicluster& b : *out) {
    best = std::max(best, eval::CellJaccard(b, truth));
  }
  // Move-based local search from a random start is approximate (this is
  // the known weakness of the delta-cluster/FLOC family); demand clearly
  // more overlap than a random 10x6 placement (~0.05 expected Jaccard).
  EXPECT_GT(best, 0.25);
}

TEST(FlocTest, FinalClustersHaveLowResidue) {
  const auto data = NoiseWithAdditiveBlock(30, 10, 8, 5, 8);
  FlocOptions o;
  o.num_clusters = 3;
  auto out = MineFloc(data, o);
  ASSERT_TRUE(out.ok());
  for (const core::Bicluster& b : *out) {
    // Background uniform noise has MSR ~ variance ~ 8.3; converged clusters
    // must be well below it.
    EXPECT_LT(MeanSquaredResidue(data, b.genes, b.conditions), 6.0);
  }
}

TEST(FlocTest, DeterministicForSeed) {
  const auto data = NoiseWithAdditiveBlock(25, 8, 5, 4, 9);
  FlocOptions o;
  o.num_clusters = 3;
  auto a = MineFloc(data, o);
  auto b = MineFloc(data, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(FlocTest, RejectsBadOptions) {
  const auto data = NoiseWithAdditiveBlock(10, 5, 2, 2, 10);
  FlocOptions o;
  o.num_clusters = 0;
  EXPECT_FALSE(MineFloc(data, o).ok());
  o = FlocOptions();
  o.min_genes = 100;
  EXPECT_FALSE(MineFloc(data, o).ok());
  o = FlocOptions();
  o.init_row_probability = 0.0;
  EXPECT_FALSE(MineFloc(data, o).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
