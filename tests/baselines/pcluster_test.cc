#include "baselines/pcluster.h"

#include <gtest/gtest.h>

#include "matrix/expression_matrix.h"
#include "matrix/transforms.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace baselines {
namespace {

TEST(IsDeltaPClusterTest, PureShiftingScoresZero) {
  auto m = *matrix::ExpressionMatrix::FromRows(
      {{0, 5, 2, 9}, {10, 15, 12, 19}});
  EXPECT_TRUE(IsDeltaPCluster(m, {0, 1}, {0, 1, 2, 3}, 0.0));
}

TEST(IsDeltaPClusterTest, ScalingViolates) {
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 2, 4}, {3, 6, 12}});
  EXPECT_FALSE(IsDeltaPCluster(m, {0, 1}, {0, 1, 2}, 1.0));
}

TEST(IsDeltaPClusterTest, ToleranceBoundary) {
  auto m = *matrix::ExpressionMatrix::FromRows({{0, 1}, {0, 1.5}});
  // pScore = |(0-1) - (0-1.5)| = 0.5.
  EXPECT_TRUE(IsDeltaPCluster(m, {0, 1}, {0, 1}, 0.5));
  EXPECT_FALSE(IsDeltaPCluster(m, {0, 1}, {0, 1}, 0.49));
}

TEST(PClusterMinerTest, FindsEmbeddedShiftingCluster) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 5, 2, 9, 100},
      {10, 15, 12, 19, -3},
      {20, 25, 22, 29, 55},
      {0, 99, 1, 17, 2},  // unrelated
  });
  PClusterOptions o;
  o.delta = 0.01;
  o.min_genes = 3;
  o.min_conditions = 4;
  PClusterMiner miner(m, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_FALSE(out->empty());
  bool found = false;
  for (const core::Bicluster& b : *out) {
    if (b.genes == std::vector<int>{0, 1, 2} &&
        b.conditions == std::vector<int>{0, 1, 2, 3}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PClusterMinerTest, MissesShiftAndScalePattern) {
  // d2 = 2*d1 + 5: a perfect reg-cluster pattern invisible to pScore.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 25, 40},
      {5, 25, 55, 85},
  });
  PClusterOptions o;
  o.delta = 1.0;
  o.min_genes = 2;
  o.min_conditions = 3;
  PClusterMiner miner(m, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(PClusterMinerTest, MissesNegativeCorrelation) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {0, 10, 20, 30},
      {30, 20, 10, 0},
  });
  PClusterOptions o;
  o.delta = 1.0;
  o.min_genes = 2;
  o.min_conditions = 3;
  auto out = PClusterMiner(m, o).Mine();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(PClusterMinerTest, EveryOutputVerifiesExactly) {
  auto data = regcluster::testing::RunningDataset();
  PClusterOptions o;
  o.delta = 2.0;
  o.min_genes = 2;
  o.min_conditions = 2;
  PClusterMiner miner(data, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok());
  for (const core::Bicluster& b : *out) {
    EXPECT_TRUE(IsDeltaPCluster(data, b.genes, b.conditions, o.delta));
    EXPECT_GE(b.num_genes(), o.min_genes);
    EXPECT_GE(b.num_conditions(), o.min_conditions);
  }
}

TEST(PClusterMinerTest, RejectsBadOptions) {
  auto data = regcluster::testing::RunningDataset();
  PClusterOptions o;
  o.delta = -1;
  EXPECT_FALSE(PClusterMiner(data, o).Mine().ok());
  o = PClusterOptions();
  o.min_genes = 1;
  EXPECT_FALSE(PClusterMiner(data, o).Mine().ok());
}

TEST(PClusterMinerTest, LogTransformRecoversScalingAsShifting) {
  // The Eq. 1 pipeline: log-transform makes pure scaling minable by
  // pCluster -- but only because the pattern was *pure* scaling.
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 2, 4, 8}, {3, 6, 12, 24}});
  auto logm = matrix::LogTransform(m);
  ASSERT_TRUE(logm.ok());
  PClusterOptions o;
  o.delta = 1e-9;
  o.min_genes = 2;
  o.min_conditions = 4;
  auto out = PClusterMiner(*logm, o).Mine();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].genes, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
