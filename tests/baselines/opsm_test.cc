#include "baselines/opsm.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

/// 50x10 noise; genes 0-11 share the hidden order c7 < c2 < c9 < c4 < c0.
matrix::ExpressionMatrix PlantedOrder(uint64_t seed) {
  util::Prng prng(seed);
  matrix::ExpressionMatrix m(50, 10);
  for (int g = 0; g < 50; ++g) {
    for (int c = 0; c < 10; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  const std::vector<int> order{7, 2, 9, 4, 0};
  for (int g = 0; g < 12; ++g) {
    double v = prng.Uniform(0, 2);
    for (int c : order) {
      m(g, c) = v;
      v += prng.Uniform(0.5, 2.0);  // strictly increasing, gene-specific
    }
  }
  return m;
}

TEST(OpsmTest, RecoversThePlantedOrder) {
  const auto data = PlantedOrder(5);
  OpsmOptions o;
  o.sequence_length = 5;
  o.beam_width = 64;
  auto models = MineOpsm(data, o);
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  ASSERT_FALSE(models->empty());
  const OpsmModel& best = (*models)[0];
  EXPECT_EQ(best.sequence, (std::vector<int>{7, 2, 9, 4, 0}));
  // All 12 planted genes support it.
  int planted = 0;
  for (int g : best.genes) planted += g < 12;
  EXPECT_EQ(planted, 12);
}

TEST(OpsmTest, SupportsAreActuallyOrdered) {
  const auto data = PlantedOrder(6);
  OpsmOptions o;
  o.sequence_length = 4;
  auto models = MineOpsm(data, o);
  ASSERT_TRUE(models.ok());
  for (const OpsmModel& model : *models) {
    ASSERT_EQ(model.sequence.size(), 4u);
    for (int g : model.genes) {
      for (size_t k = 0; k + 1 < model.sequence.size(); ++k) {
        ASSERT_GE(data(g, model.sequence[k + 1]),
                  data(g, model.sequence[k]));
      }
    }
  }
}

TEST(OpsmTest, PlantedOrderIsStatisticallySurprising) {
  const auto data = PlantedOrder(7);
  OpsmOptions o;
  o.sequence_length = 5;
  o.beam_width = 64;
  auto models = MineOpsm(data, o);
  ASSERT_TRUE(models.ok());
  ASSERT_FALSE(models->empty());
  // 12 planted + random supporters out of 50 genes at 1/120 per gene: the
  // upper-tail probability is astronomically small.
  EXPECT_GT((*models)[0].neg_log10_p, 6.0);
}

TEST(OpsmTest, ModelsSortedBySupport) {
  const auto data = PlantedOrder(8);
  OpsmOptions o;
  o.sequence_length = 3;
  o.max_models = 5;
  auto models = MineOpsm(data, o);
  ASSERT_TRUE(models.ok());
  for (size_t i = 1; i < models->size(); ++i) {
    EXPECT_GE((*models)[i - 1].genes.size(), (*models)[i].genes.size());
  }
}

TEST(OpsmTest, BeamWidthOneStillReturnsAModel) {
  const auto data = PlantedOrder(9);
  OpsmOptions o;
  o.sequence_length = 3;
  o.beam_width = 1;
  o.max_models = 1;
  auto models = MineOpsm(data, o);
  ASSERT_TRUE(models.ok());
  EXPECT_EQ(models->size(), 1u);
}

TEST(OpsmTest, ToOpClusterBridgesToTheTendencyTypes) {
  OpsmModel model;
  model.sequence = {3, 1, 2};
  model.genes = {0, 5};
  const OpCluster c = model.ToOpCluster();
  EXPECT_EQ(c.sequence, model.sequence);
  EXPECT_EQ(c.genes, model.genes);
  EXPECT_EQ(c.ToBicluster().conditions, (std::vector<int>{1, 2, 3}));
}

TEST(OpsmTest, RejectsBadOptions) {
  const auto data = PlantedOrder(10);
  OpsmOptions o;
  o.sequence_length = 1;
  EXPECT_FALSE(MineOpsm(data, o).ok());
  o = OpsmOptions();
  o.sequence_length = 99;
  EXPECT_FALSE(MineOpsm(data, o).ok());
  o = OpsmOptions();
  o.beam_width = 0;
  EXPECT_FALSE(MineOpsm(data, o).ok());
  o = OpsmOptions();
  o.tie_tolerance = -1;
  EXPECT_FALSE(MineOpsm(data, o).ok());
}

TEST(OpsmTest, NoCoherenceGuarantee) {
  // The reg-cluster paper's point about tendency models: wildly
  // disproportionate genes share an OPSM.  Construct two genes with the
  // same order but a 100x step disparity; both support the best model.
  matrix::ExpressionMatrix m(2, 4);
  const double a[4] = {0, 1, 2, 3};
  const double b[4] = {0, 100, 101, 300};
  for (int c = 0; c < 4; ++c) {
    m(0, c) = a[c];
    m(1, c) = b[c];
  }
  OpsmOptions o;
  o.sequence_length = 4;
  auto models = MineOpsm(m, o);
  ASSERT_TRUE(models.ok());
  ASSERT_FALSE(models->empty());
  EXPECT_EQ((*models)[0].genes, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
