#include "baselines/opcluster.h"

#include <gtest/gtest.h>

#include "matrix/expression_matrix.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace baselines {
namespace {

using regcluster::testing::C;
using regcluster::testing::RunningDataset;

TEST(OpClusterMinerTest, FindsCommonOrder) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 3, 2, 4},
      {10, 30, 20, 40},
      {5, 100, 50, 200},
      {4, 3, 2, 1},  // reversed
  });
  OpClusterOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  OpClusterMiner miner(m, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  bool found = false;
  for (const OpCluster& c : *out) {
    if (c.sequence == std::vector<int>{0, 2, 1, 3} &&
        c.genes == std::vector<int>{0, 1, 2}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(OpClusterMinerTest, SupportsAreActuallyMonotone) {
  auto data = RunningDataset();
  OpClusterOptions o;
  o.min_genes = 2;
  o.min_conditions = 4;
  OpClusterMiner miner(data, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->empty());
  for (const OpCluster& c : *out) {
    for (int g : c.genes) {
      for (size_t k = 0; k + 1 < c.sequence.size(); ++k) {
        EXPECT_GE(data(g, c.sequence[k + 1]), data(g, c.sequence[k]));
      }
    }
  }
}

TEST(OpClusterMinerTest, TendencyIgnoresDisproportion) {
  // The Section 3.3 contrast: tendency models cluster genes with the same
  // order even when coherence is wildly violated.  g1, g2, g3 share the
  // order c2 < c10 < c8 < c4 (Figure 4) despite g2's different geometry.
  auto data = RunningDataset();
  OpClusterOptions o;
  o.min_genes = 3;
  o.min_conditions = 4;
  OpClusterMiner miner(data, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok());
  bool clustered_together = false;
  for (const OpCluster& c : *out) {
    if (c.genes == std::vector<int>{0, 1, 2}) {
      // Check the Figure 4 condition set is inside the sequence.
      int hits = 0;
      for (int cond : c.sequence) {
        for (int want : {C(2), C(10), C(8), C(4)}) {
          if (cond == want) ++hits;
        }
      }
      if (hits == 4) clustered_together = true;
    }
  }
  EXPECT_TRUE(clustered_together);
}

TEST(OpClusterMinerTest, GroupingThresholdMergesNearTies) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 2, 1.95, 3},  // slight dip breaks strict order at c1->c2
      {1, 2, 2.05, 3},
  });
  OpClusterOptions strict;
  strict.min_genes = 2;
  strict.min_conditions = 4;
  strict.grouping_threshold = 0.0;
  auto out_strict = OpClusterMiner(m, strict).Mine();
  ASSERT_TRUE(out_strict.ok());
  bool strict_has_full = false;
  for (const OpCluster& c : *out_strict) {
    if (c.sequence == std::vector<int>{0, 1, 2, 3} && c.genes.size() == 2) {
      strict_has_full = true;
    }
  }
  EXPECT_FALSE(strict_has_full);

  OpClusterOptions loose = strict;
  loose.grouping_threshold = 0.1;
  auto out_loose = OpClusterMiner(m, loose).Mine();
  ASSERT_TRUE(out_loose.ok());
  bool loose_has_full = false;
  for (const OpCluster& c : *out_loose) {
    if (c.sequence == std::vector<int>{0, 1, 2, 3} && c.genes.size() == 2) {
      loose_has_full = true;
    }
  }
  EXPECT_TRUE(loose_has_full);
}

TEST(OpClusterMinerTest, EmitsOnlyEndClosedPatterns) {
  // Closure is with respect to appending: an emitted sequence must not be
  // extensible at the end without losing a supporting gene.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 2, 3},
      {10, 20, 30},
  });
  OpClusterOptions o;
  o.min_genes = 2;
  o.min_conditions = 2;
  OpClusterMiner miner(m, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok());
  // The full ascending order and its end-closed subsequences [0,2], [1,2].
  ASSERT_EQ(out->size(), 3u);
  bool has_full = false;
  for (const OpCluster& c : *out) {
    if (c.sequence == std::vector<int>{0, 1, 2}) has_full = true;
    // End-closure: every condition not in the sequence must break support.
    for (int cand = 0; cand < 3; ++cand) {
      bool in_seq = false;
      for (int s : c.sequence) in_seq |= (s == cand);
      if (in_seq) continue;
      int supporters = 0;
      for (int g : c.genes) {
        if (m(g, cand) >= m(g, c.sequence.back())) ++supporters;
      }
      EXPECT_LT(supporters, static_cast<int>(c.genes.size()));
    }
  }
  EXPECT_TRUE(has_full);
}

TEST(OpClusterMinerTest, ToBiclusterSortsConditions) {
  OpCluster c;
  c.sequence = {3, 0, 2};
  c.genes = {1, 5};
  const core::Bicluster b = c.ToBicluster();
  EXPECT_EQ(b.conditions, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(b.genes, (std::vector<int>{1, 5}));
}

TEST(OpClusterMinerTest, RejectsBadOptions) {
  auto data = RunningDataset();
  OpClusterOptions o;
  o.min_conditions = 1;
  EXPECT_FALSE(OpClusterMiner(data, o).Mine().ok());
  o = OpClusterOptions();
  o.grouping_threshold = -1;
  EXPECT_FALSE(OpClusterMiner(data, o).Mine().ok());
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
