#include "baselines/fullspace.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "eval/match.h"
#include "synth/generator.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

/// Three well-separated full-space groups of 5 genes each.
matrix::ExpressionMatrix ThreeBlobs() {
  util::Prng prng(4);
  matrix::ExpressionMatrix m(15, 8);
  for (int g = 0; g < 15; ++g) {
    const double center = (g / 5) * 50.0;
    for (int c = 0; c < 8; ++c) {
      m(g, c) = center + c + prng.Uniform(-0.5, 0.5);
    }
  }
  return m;
}

TEST(KMeansTest, SeparatesCleanBlobs) {
  const auto data = ThreeBlobs();
  KMeansOptions o;
  o.k = 3;
  o.zscore_rows = false;  // the blobs differ by offset, keep it
  auto result = KMeansRows(data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every blob must map to a single cluster id.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<int> ids;
    for (int g = blob * 5; g < (blob + 1) * 5; ++g) {
      ids.insert(result->assignment[static_cast<size_t>(g)]);
    }
    EXPECT_EQ(ids.size(), 1u) << "blob " << blob;
  }
}

TEST(KMeansTest, ClusterListsPartitionGenes) {
  const auto data = ThreeBlobs();
  KMeansOptions o;
  o.k = 4;
  auto result = KMeansRows(data, o);
  ASSERT_TRUE(result.ok());
  int total = 0;
  std::set<int> seen;
  for (const auto& cluster : result->clusters) {
    for (int g : cluster) {
      EXPECT_TRUE(seen.insert(g).second);
      ++total;
    }
    EXPECT_TRUE(std::is_sorted(cluster.begin(), cluster.end()));
  }
  EXPECT_EQ(total, data.num_genes());
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto data = ThreeBlobs();
  KMeansOptions o;
  o.k = 3;
  auto a = KMeansRows(data, o);
  auto b = KMeansRows(data, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(KMeansTest, RejectsBadOptions) {
  const auto data = ThreeBlobs();
  KMeansOptions o;
  o.k = 0;
  EXPECT_FALSE(KMeansRows(data, o).ok());
  o.k = 100;
  EXPECT_FALSE(KMeansRows(data, o).ok());
}

TEST(HierarchicalTest, CorrelationDistanceGroupsScaledProfiles) {
  // Genes 0-2 share one shape (scaled copies), 3-5 another; correlation
  // distance ignores the scaling.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 2, 3, 4},
      {2, 4, 6, 8},
      {0.5, 1, 1.5, 2},
      {4, 3, 2, 1},
      {8, 6, 4, 2},
      {2, 1.5, 1, 0.5},
  });
  HierarchicalOptions o;
  o.num_clusters = 2;
  auto clusters = HierarchicalRows(m, o);
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();
  ASSERT_EQ(clusters->size(), 2u);
  std::set<std::vector<int>> got((*clusters).begin(), (*clusters).end());
  EXPECT_TRUE(got.count({0, 1, 2}));
  EXPECT_TRUE(got.count({3, 4, 5}));
}

TEST(HierarchicalTest, LinkageVariantsRun) {
  const auto data = ThreeBlobs();
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    HierarchicalOptions o;
    o.num_clusters = 3;
    o.linkage = linkage;
    o.correlation_distance = false;
    auto clusters = HierarchicalRows(data, o);
    ASSERT_TRUE(clusters.ok());
    EXPECT_EQ(clusters->size(), 3u);
  }
}

TEST(HierarchicalTest, RejectsBadOptions) {
  const auto data = ThreeBlobs();
  HierarchicalOptions o;
  o.num_clusters = 0;
  EXPECT_FALSE(HierarchicalRows(data, o).ok());
  o.num_clusters = 100;
  EXPECT_FALSE(HierarchicalRows(data, o).ok());
}

TEST(FullSpaceBiclustersTest, SpansAllConditions) {
  const auto b = ToFullSpaceBiclusters({{2, 0}, {1}}, 4);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].genes, (std::vector<int>{0, 2}));
  EXPECT_EQ(b[0].conditions, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FullSpaceVsSubspaceTest, FullSpaceMissesSubspaceModules) {
  // The Section 2 motivation: modules co-regulated on 6 of 24 conditions
  // drown in full-space distance.  Cell recovery must be far below the
  // reg-cluster miner's.
  synth::SyntheticConfig cfg;
  cfg.num_genes = 150;
  cfg.num_conditions = 24;
  cfg.num_clusters = 3;
  cfg.avg_cluster_genes_fraction = 0.06;
  cfg.seed = 99;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  std::vector<core::Bicluster> truth;
  for (const auto& imp : ds->implants) truth.push_back(imp.Footprint());

  KMeansOptions ko;
  ko.k = 6;
  auto km = KMeansRows(ds->data, ko);
  ASSERT_TRUE(km.ok());
  const double km_recovery = eval::CellMatchScore(
      truth, ToFullSpaceBiclusters(km->clusters, ds->data.num_conditions()));

  core::MinerOptions mo;
  mo.min_genes = 6;
  mo.min_conditions = 5;
  mo.gamma = 0.1;
  mo.epsilon = 0.01;
  mo.remove_dominated = true;
  auto mined = core::RegClusterMiner(ds->data, mo).Mine();
  ASSERT_TRUE(mined.ok());
  std::vector<core::Bicluster> found;
  for (const auto& c : *mined) found.push_back(core::ToBicluster(c));
  const double reg_recovery = eval::CellMatchScore(truth, found);

  EXPECT_GT(reg_recovery, 0.75);
  EXPECT_LT(km_recovery, 0.4);
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
