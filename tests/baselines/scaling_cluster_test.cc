#include "baselines/scaling_cluster.h"

#include <gtest/gtest.h>

#include "matrix/expression_matrix.h"
#include "testing/paper_data.h"

namespace regcluster {
namespace baselines {
namespace {

TEST(IsScalingClusterTest, PureScalingPasses) {
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 2, 4}, {3, 6, 12}});
  EXPECT_TRUE(IsScalingCluster(m, {0, 1}, {0, 1, 2}, 1e-9, 1e-9));
}

TEST(IsScalingClusterTest, ShiftingViolates) {
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 2, 3}, {11, 12, 13}});
  EXPECT_FALSE(IsScalingCluster(m, {0, 1}, {0, 1, 2}, 0.05, 1e-9));
}

TEST(IsScalingClusterTest, MixedSignRatiosViolate) {
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 2}, {1, -2}});
  EXPECT_FALSE(IsScalingCluster(m, {0, 1}, {0, 1}, 10.0, 1e-9));
}

TEST(IsScalingClusterTest, ZeroCellViolates) {
  auto m = *matrix::ExpressionMatrix::FromRows({{1, 0}, {2, 0}});
  EXPECT_FALSE(IsScalingCluster(m, {0, 1}, {0, 1}, 10.0, 1e-9));
}

TEST(ScalingClusterMinerTest, FindsEmbeddedScalingCluster) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 2, 4, 8},
      {3, 6, 12, 24},
      {0.5, 1, 2, 4},
      {7, 1, 9, 2},  // unrelated
  });
  ScalingClusterOptions o;
  o.epsilon = 0.01;
  o.min_genes = 3;
  o.min_conditions = 4;
  ScalingClusterMiner miner(m, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  bool found = false;
  for (const core::Bicluster& b : *out) {
    if (b.genes == std::vector<int>{0, 1, 2} &&
        b.conditions == std::vector<int>{0, 1, 2, 3}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScalingClusterMinerTest, MissesShiftAndScalePattern) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 10, 25, 40},
      {7, 25, 55, 85},  // = 2*x + 5
  });
  ScalingClusterOptions o;
  o.epsilon = 0.05;
  o.min_genes = 2;
  o.min_conditions = 3;
  auto out = ScalingClusterMiner(m, o).Mine();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ScalingClusterMinerTest, MissesPureShifting) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 5, 9},
      {11, 15, 19},
  });
  ScalingClusterOptions o;
  o.epsilon = 0.05;
  o.min_genes = 2;
  o.min_conditions = 3;
  auto out = ScalingClusterMiner(m, o).Mine();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ScalingClusterMinerTest, EveryOutputVerifies) {
  auto data = regcluster::testing::RunningDataset();
  ScalingClusterOptions o;
  o.epsilon = 0.3;
  o.min_genes = 2;
  o.min_conditions = 2;
  ScalingClusterMiner miner(data, o);
  auto out = miner.Mine();
  ASSERT_TRUE(out.ok());
  for (const core::Bicluster& b : *out) {
    EXPECT_TRUE(IsScalingCluster(data, b.genes, b.conditions, o.epsilon,
                                 o.zero_tolerance));
  }
}

TEST(ScalingClusterMinerTest, RejectsBadOptions) {
  auto data = regcluster::testing::RunningDataset();
  ScalingClusterOptions o;
  o.epsilon = -0.5;
  EXPECT_FALSE(ScalingClusterMiner(data, o).Mine().ok());
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
