// Property sweeps over the pattern-based baselines, including the paper's
// Equation 1 / Equation 2 duality: a pure-scaling dataset becomes
// pCluster-minable after a log transform (Eq. 1) and a pure-shifting
// dataset becomes scaling-minable after an exp transform (Eq. 2) -- while
// shifting-AND-scaling data is reachable through neither transform, which
// is the paper's central argument for the reg-cluster model.

#include <gtest/gtest.h>

#include "baselines/pcluster.h"
#include "baselines/scaling_cluster.h"
#include "core/miner.h"
#include "eval/match.h"
#include "matrix/transforms.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

/// 60x12 noise with a 8x5 implanted block of the requested kind.
struct Planted {
  matrix::ExpressionMatrix data;
  core::Bicluster truth;
};

enum class Kind { kShift, kScale, kShiftScale };

Planted Plant(Kind kind, uint64_t seed) {
  util::Prng prng(seed);
  Planted out;
  out.data = matrix::ExpressionMatrix(60, 12);
  for (int g = 0; g < 60; ++g) {
    for (int c = 0; c < 12; ++c) {
      out.data(g, c) = prng.Uniform(1.0, 10.0);  // positive (logs must work)
    }
  }
  const std::vector<double> base{1.0, 2.0, 3.5, 5.0, 7.0};
  for (int g = 0; g < 8; ++g) {
    double s1 = 1.0, s2 = 0.0;
    if (kind == Kind::kShift) s2 = prng.Uniform(0.5, 5.0);
    if (kind == Kind::kScale) s1 = prng.Uniform(0.5, 2.0);
    if (kind == Kind::kShiftScale) {
      s1 = prng.Uniform(0.5, 2.0);
      s2 = prng.Uniform(0.5, 5.0);
    }
    for (int c = 0; c < 5; ++c) {
      out.data(g, c) = s1 * base[static_cast<size_t>(c)] + s2;
    }
    out.truth.genes.push_back(g);
  }
  for (int c = 0; c < 5; ++c) out.truth.conditions.push_back(c);
  return out;
}

double PClusterRecovery(const matrix::ExpressionMatrix& data,
                        const core::Bicluster& truth) {
  PClusterOptions o;
  o.delta = 0.02;
  o.min_genes = 5;
  o.min_conditions = 4;
  o.max_nodes = 300000;
  auto found = PClusterMiner(data, o).Mine();
  if (!found.ok()) return 0.0;
  return eval::CellMatchScore({truth}, *found);
}

double ScalingRecovery(const matrix::ExpressionMatrix& data,
                       const core::Bicluster& truth) {
  ScalingClusterOptions o;
  o.epsilon = 0.01;
  o.min_genes = 5;
  o.min_conditions = 4;
  o.max_nodes = 300000;
  auto found = ScalingClusterMiner(data, o).Mine();
  if (!found.ok()) return 0.0;
  return eval::CellMatchScore({truth}, *found);
}

TEST(Equation1Test, LogTransformMakesScalingMinableByPCluster) {
  const Planted planted = Plant(Kind::kScale, 71);
  // Raw: pCluster misses the scaling block...
  EXPECT_LT(PClusterRecovery(planted.data, planted.truth), 0.3);
  // ...after the global log transform it recovers it (Eq. 1).
  auto logged = matrix::LogTransform(planted.data);
  ASSERT_TRUE(logged.ok());
  EXPECT_GT(PClusterRecovery(*logged, planted.truth), 0.8);
}

TEST(Equation2Test, ExpTransformMakesShiftingMinableByScalingMiner) {
  const Planted planted = Plant(Kind::kShift, 72);
  EXPECT_LT(ScalingRecovery(planted.data, planted.truth), 0.3);
  auto exped = matrix::ExpTransform(planted.data);
  ASSERT_TRUE(exped.ok());
  EXPECT_GT(ScalingRecovery(*exped, planted.truth), 0.8);
}

TEST(ShiftScaleGapTest, NeitherTransformRescuesTheBaselines) {
  // The Section 1.1 punchline: shifting-AND-scaling blocks stay invisible
  // to the pure models in raw, log and exp space -- but not to reg-cluster.
  const Planted planted = Plant(Kind::kShiftScale, 73);
  EXPECT_LT(PClusterRecovery(planted.data, planted.truth), 0.3);
  EXPECT_LT(ScalingRecovery(planted.data, planted.truth), 0.3);
  auto logged = matrix::LogTransform(planted.data);
  ASSERT_TRUE(logged.ok());
  EXPECT_LT(PClusterRecovery(*logged, planted.truth), 0.3);
  auto exped = matrix::ExpTransform(planted.data);
  ASSERT_TRUE(exped.ok());
  EXPECT_LT(ScalingRecovery(*exped, planted.truth), 0.3);

  core::MinerOptions o;
  o.min_genes = 5;
  o.min_conditions = 4;
  o.gamma = 0.1;
  o.epsilon = 0.02;
  o.remove_dominated = true;
  auto found = core::RegClusterMiner(planted.data, o).Mine();
  ASSERT_TRUE(found.ok());
  std::vector<core::Bicluster> feet;
  for (const auto& c : *found) feet.push_back(core::ToBicluster(c));
  EXPECT_GE(eval::CellMatchScore({planted.truth}, feet), 0.6);
}

// Verification sweep: every emitted baseline cluster satisfies its model
// definition across a threshold grid.
class BaselineVerificationSweep : public ::testing::TestWithParam<double> {};

TEST_P(BaselineVerificationSweep, PClusterOutputsAlwaysVerify) {
  const double delta = GetParam();
  util::Prng prng(200 + static_cast<uint64_t>(delta * 100));
  matrix::ExpressionMatrix data(25, 8);
  for (int g = 0; g < 25; ++g) {
    for (int c = 0; c < 8; ++c) data(g, c) = prng.Uniform(0, 10);
  }
  PClusterOptions o;
  o.delta = delta;
  o.min_genes = 2;
  o.min_conditions = 2;
  o.max_nodes = 100000;
  auto found = PClusterMiner(data, o).Mine();
  ASSERT_TRUE(found.ok());
  for (const core::Bicluster& b : *found) {
    ASSERT_TRUE(IsDeltaPCluster(data, b.genes, b.conditions, delta));
  }
}

TEST_P(BaselineVerificationSweep, ScalingOutputsAlwaysVerify) {
  const double eps = GetParam();
  util::Prng prng(300 + static_cast<uint64_t>(eps * 100));
  matrix::ExpressionMatrix data(25, 8);
  for (int g = 0; g < 25; ++g) {
    for (int c = 0; c < 8; ++c) data(g, c) = prng.Uniform(0.5, 10);
  }
  ScalingClusterOptions o;
  o.epsilon = eps;
  o.min_genes = 2;
  o.min_conditions = 2;
  o.max_nodes = 100000;
  auto found = ScalingClusterMiner(data, o).Mine();
  ASSERT_TRUE(found.ok());
  for (const core::Bicluster& b : *found) {
    ASSERT_TRUE(
        IsScalingCluster(data, b.genes, b.conditions, eps, o.zero_tolerance));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BaselineVerificationSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace baselines
}  // namespace regcluster
