// Property sweeps for the MSR-based baselines (Cheng-Church, FLOC) and the
// order-preserving miner: model-definition invariants over random inputs.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/cheng_church.h"
#include "baselines/floc.h"
#include "baselines/opcluster.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

matrix::ExpressionMatrix RandomMatrix(uint64_t seed, int genes, int conds) {
  util::Prng prng(seed);
  matrix::ExpressionMatrix m(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  return m;
}

class MsrAxioms : public ::testing::TestWithParam<int> {};

TEST_P(MsrAxioms, MsrIsNonNegativeAndZeroForAdditiveModels) {
  util::Prng prng(GetParam());
  const auto m = RandomMatrix(GetParam(), 20, 8);
  // Random submatrices: MSR >= 0.
  for (int t = 0; t < 10; ++t) {
    const auto genes = prng.SampleWithoutReplacement(
        20, 2 + static_cast<int>(prng.UniformInt(0, 10)));
    const auto conds = prng.SampleWithoutReplacement(
        8, 2 + static_cast<int>(prng.UniformInt(0, 5)));
    ASSERT_GE(MeanSquaredResidue(m, genes, conds), 0.0);
  }
  // Additive construction: MSR == 0.
  matrix::ExpressionMatrix additive(6, 5);
  for (int g = 0; g < 6; ++g) {
    for (int c = 0; c < 5; ++c) {
      additive(g, c) = 3.0 * g + 1.7 * c + static_cast<double>(GetParam());
    }
  }
  ASSERT_NEAR(MeanSquaredResidue(additive, {0, 1, 2, 3, 4, 5},
                                 {0, 1, 2, 3, 4}),
              0.0, 1e-18);
}

TEST_P(MsrAxioms, MsrInvariantUnderRowAndColumnShifts) {
  // Adding per-row or per-column constants never changes the residue.
  const auto m = RandomMatrix(40 + GetParam(), 10, 6);
  util::Prng prng(77 + GetParam());
  matrix::ExpressionMatrix shifted = m;
  for (int g = 0; g < 10; ++g) {
    const double row_shift = prng.Uniform(-5, 5);
    for (int c = 0; c < 6; ++c) shifted(g, c) += row_shift;
  }
  for (int c = 0; c < 6; ++c) {
    const double col_shift = prng.Uniform(-5, 5);
    for (int g = 0; g < 10; ++g) shifted(g, c) += col_shift;
  }
  std::vector<int> genes{0, 2, 4, 6, 8};
  std::vector<int> conds{1, 3, 5};
  EXPECT_NEAR(MeanSquaredResidue(m, genes, conds),
              MeanSquaredResidue(shifted, genes, conds), 1e-9);
}

TEST_P(MsrAxioms, ChengChurchOutputsMeetDeltaWithoutInvertedRows) {
  const auto m = RandomMatrix(90 + GetParam(), 30, 10);
  ChengChurchOptions o;
  o.delta = 1.5;
  o.num_biclusters = 2;
  o.add_inverted_rows = false;
  auto out = MineChengChurch(m, o);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->empty());
  // The first bicluster is measured against untouched data; later ones
  // against masked data, so only the first is externally checkable.
  EXPECT_LE(MeanSquaredResidue(m, (*out)[0].genes, (*out)[0].conditions),
            o.delta + 1e-9);
}

TEST_P(MsrAxioms, FlocNeverWorsensTheMeanResidue) {
  const auto m = RandomMatrix(130 + GetParam(), 25, 8);
  FlocOptions o;
  o.num_clusters = 3;
  o.seed = static_cast<uint64_t>(GetParam());
  FlocStats stats;
  auto out = MineFloc(m, o, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(stats.final_mean_residue, stats.initial_mean_residue + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsrAxioms, ::testing::Range(1, 6));

class OpClusterSweep : public ::testing::TestWithParam<double> {};

TEST_P(OpClusterSweep, EverySupportIsOrderCompatible) {
  const double grouping = GetParam();
  const auto m = RandomMatrix(500 + static_cast<uint64_t>(grouping * 100),
                              15, 7);
  OpClusterOptions o;
  o.min_genes = 2;
  o.min_conditions = 3;
  o.grouping_threshold = grouping;
  o.max_nodes = 50000;
  auto out = OpClusterMiner(m, o).Mine();
  ASSERT_TRUE(out.ok());
  for (const OpCluster& c : *out) {
    ASSERT_GE(c.genes.size(), 2u);
    ASSERT_GE(c.sequence.size(), 3u);
    for (int g : c.genes) {
      for (size_t k = 0; k + 1 < c.sequence.size(); ++k) {
        ASSERT_GE(m(g, c.sequence[k + 1]),
                  m(g, c.sequence[k]) - grouping - 1e-12);
      }
    }
  }
}

TEST_P(OpClusterSweep, LargerGroupingNeverShrinksBestSupport) {
  // The grouping threshold only relaxes the order constraint, so the
  // largest support over full-length sequences cannot shrink.
  const auto m = RandomMatrix(4242, 12, 5);
  auto best_support = [&](double grouping) {
    OpClusterOptions o;
    o.min_genes = 1;
    o.min_conditions = 5;
    o.grouping_threshold = grouping;
    o.max_nodes = 100000;
    auto out = OpClusterMiner(m, o).Mine();
    size_t best = 0;
    if (out.ok()) {
      for (const OpCluster& c : *out) best = std::max(best, c.genes.size());
    }
    return best;
  };
  const double grouping = GetParam();
  EXPECT_GE(best_support(grouping + 0.5), best_support(grouping));
}

INSTANTIATE_TEST_SUITE_P(Groupings, OpClusterSweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace baselines
}  // namespace regcluster
