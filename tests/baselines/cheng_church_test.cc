#include "baselines/cheng_church.h"

#include <gtest/gtest.h>

#include "matrix/expression_matrix.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

TEST(MsrTest, PerfectShiftingIsZero) {
  // Additive model rows/cols: residue identically zero.
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 2, 3},
      {11, 12, 13},
      {21, 22, 23},
  });
  EXPECT_NEAR(MeanSquaredResidue(m, {0, 1, 2}, {0, 1, 2}), 0.0, 1e-18);
}

TEST(MsrTest, ScalingIsNotZero) {
  auto m = *matrix::ExpressionMatrix::FromRows({
      {1, 2, 4},
      {3, 6, 12},
  });
  EXPECT_GT(MeanSquaredResidue(m, {0, 1}, {0, 1, 2}), 0.1);
}

TEST(MsrTest, SingleCellIsZero) {
  auto m = *matrix::ExpressionMatrix::FromRows({{5.0}});
  EXPECT_DOUBLE_EQ(MeanSquaredResidue(m, {0}, {0}), 0.0);
}

TEST(ChengChurchTest, FindsLowResidueBicluster) {
  // A clean additive block inside noise.
  util::Prng prng(3);
  matrix::ExpressionMatrix m(30, 10);
  for (int g = 0; g < 30; ++g) {
    for (int c = 0; c < 10; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  for (int g = 0; g < 8; ++g) {
    for (int c = 0; c < 5; ++c) m(g, c) = g * 2.0 + c * 1.5;
  }
  ChengChurchOptions o;
  o.delta = 0.25;
  o.num_biclusters = 1;
  auto out = MineChengChurch(m, o);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_LE(MeanSquaredResidue(m, (*out)[0].genes, (*out)[0].conditions),
            o.delta + 1e-9);
  EXPECT_GE((*out)[0].num_genes(), 2);
}

TEST(ChengChurchTest, OutputsRequestedCount) {
  util::Prng prng(9);
  matrix::ExpressionMatrix m(40, 12);
  for (int g = 0; g < 40; ++g) {
    for (int c = 0; c < 12; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  ChengChurchOptions o;
  o.delta = 2.0;
  o.num_biclusters = 4;
  auto out = MineChengChurch(m, o);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);
  for (const core::Bicluster& b : *out) {
    EXPECT_GT(b.num_genes(), 0);
    EXPECT_GT(b.num_conditions(), 0);
  }
}

TEST(ChengChurchTest, AllOutputsMeetDelta) {
  util::Prng prng(11);
  matrix::ExpressionMatrix m(25, 8);
  for (int g = 0; g < 25; ++g) {
    for (int c = 0; c < 8; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  ChengChurchOptions o;
  o.delta = 1.0;
  o.num_biclusters = 3;
  // With inverted rows the MSR criterion applies to the sign-adjusted
  // submatrix; disable them so the plain MSR is checkable from outside.
  o.add_inverted_rows = false;
  auto out = MineChengChurch(m, o);
  ASSERT_TRUE(out.ok());
  // Verifying against the *masked* sequence is impossible from outside;
  // checking the first bicluster against the original data is exact.
  ASSERT_FALSE(out->empty());
  EXPECT_LE(MeanSquaredResidue(m, (*out)[0].genes, (*out)[0].conditions),
            o.delta + 1e-9);
}

TEST(ChengChurchTest, InvertedRowsCaptureMirrorPattern) {
  // Rows 0-3 additive; rows 4-5 are their negation (shift-type negative
  // correlation).  With add_inverted_rows the final bicluster includes them.
  matrix::ExpressionMatrix m(6, 6);
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < 6; ++c) m(g, c) = g + c;
  }
  for (int g = 4; g < 6; ++g) {
    for (int c = 0; c < 6; ++c) m(g, c) = -(g + c);
  }
  ChengChurchOptions o;
  o.delta = 0.01;
  o.num_biclusters = 1;
  o.add_inverted_rows = true;
  auto out = MineChengChurch(m, o);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_GE((*out)[0].num_genes(), 4);
}

TEST(ChengChurchTest, RejectsBadOptions) {
  matrix::ExpressionMatrix m(4, 4, 1.0);
  ChengChurchOptions o;
  o.delta = -1;
  EXPECT_FALSE(MineChengChurch(m, o).ok());
  o = ChengChurchOptions();
  o.alpha = 0.5;
  EXPECT_FALSE(MineChengChurch(m, o).ok());
  o = ChengChurchOptions();
  o.num_biclusters = 0;
  EXPECT_FALSE(MineChengChurch(m, o).ok());
}

TEST(ChengChurchTest, DoesNotMutateInput) {
  util::Prng prng(13);
  matrix::ExpressionMatrix m(10, 6);
  for (int g = 0; g < 10; ++g) {
    for (int c = 0; c < 6; ++c) m(g, c) = prng.Uniform(0, 10);
  }
  const matrix::ExpressionMatrix copy = m;
  ChengChurchOptions o;
  o.delta = 1.0;
  o.num_biclusters = 2;
  ASSERT_TRUE(MineChengChurch(m, o).ok());
  for (int g = 0; g < 10; ++g) {
    for (int c = 0; c < 6; ++c) ASSERT_DOUBLE_EQ(m(g, c), copy(g, c));
  }
}

}  // namespace
}  // namespace baselines
}  // namespace regcluster
