// Integration of the analysis stack on one yeast-scale run: ranking,
// indexing, significance, consensus and enrichment must compose -- the
// full post-mining workflow a user chains after RegClusterMiner::Mine().

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "eval/annotation_gen.h"
#include "eval/cluster_index.h"
#include "eval/consensus.h"
#include "eval/go_enrichment.h"
#include "eval/quality.h"
#include "eval/significance.h"
#include "synth/yeast_surrogate.h"

namespace regcluster {
namespace {

struct Stack {
  synth::SyntheticDataset ds;
  std::vector<core::RegCluster> clusters;
  core::MinerOptions options;
};

const Stack& GetStack() {
  static const Stack* stack = [] {
    auto* s = new Stack();
    synth::YeastSurrogateConfig cfg;
    cfg.num_genes = 400;
    cfg.num_conditions = 17;
    cfg.num_modules = 5;
    cfg.background = synth::YeastBackground::kCellCycle;
    auto ds = synth::MakeYeastSurrogate(cfg);
    EXPECT_TRUE(ds.ok());
    s->ds = *std::move(ds);
    s->options.min_genes = 12;
    s->options.min_conditions = 5;
    s->options.gamma = 0.08;
    s->options.epsilon = 0.25;
    s->options.remove_dominated = true;
    auto clusters = core::RegClusterMiner(s->ds.data, s->options).Mine();
    EXPECT_TRUE(clusters.ok());
    s->clusters = *std::move(clusters);
    EXPECT_FALSE(s->clusters.empty());
    return s;
  }();
  return *stack;
}

TEST(AnalysisStack, MiningWorksOnCellCycleBackground) {
  const Stack& s = GetStack();
  ASSERT_GE(s.clusters.size(), 3u);
  std::string why;
  for (const auto& c : s.clusters) {
    ASSERT_TRUE(core::ValidateRegCluster(s.ds.data, c, s.options.gamma,
                                         s.options.epsilon, &why))
        << why;
  }
}

TEST(AnalysisStack, RankingPutsLargestTightestFirst) {
  const Stack& s = GetStack();
  const auto order = eval::RankClusters(s.ds.data, s.clusters);
  ASSERT_EQ(order.size(), s.clusters.size());
  // Ranking is a permutation.
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), order.size());
  // Non-increasing in cell count.
  for (size_t i = 1; i < order.size(); ++i) {
    const auto& prev = s.clusters[static_cast<size_t>(order[i - 1])];
    const auto& curr = s.clusters[static_cast<size_t>(order[i])];
    EXPECT_GE(
        static_cast<int64_t>(prev.num_genes()) * prev.num_conditions(),
        static_cast<int64_t>(curr.num_genes()) * curr.num_conditions());
  }
}

TEST(AnalysisStack, IndexAnswersMembershipConsistently) {
  const Stack& s = GetStack();
  const eval::ClusterIndex index(s.clusters, s.ds.data.num_genes(),
                                 s.ds.data.num_conditions());
  for (size_t k = 0; k < s.clusters.size(); ++k) {
    for (int g : s.clusters[k].AllGenes()) {
      const auto& hits = index.ClustersWithGene(g);
      EXPECT_TRUE(std::find(hits.begin(), hits.end(),
                            static_cast<int>(k)) != hits.end());
    }
    for (int c : s.clusters[k].chain) {
      const auto& hits = index.ClustersWithCondition(c);
      EXPECT_TRUE(std::find(hits.begin(), hits.end(),
                            static_cast<int>(k)) != hits.end());
    }
  }
  // Co-clustered genes of any member include its fellow members.
  const auto& first = s.clusters[0];
  const auto genes = first.AllGenes();
  const auto partners = index.CoClusteredGenes(genes[0]);
  for (size_t i = 1; i < genes.size(); ++i) {
    EXPECT_TRUE(std::binary_search(partners.begin(), partners.end(),
                                   genes[i]));
  }
}

TEST(AnalysisStack, TopRankedClusterIsSignificant) {
  const Stack& s = GetStack();
  const auto order = eval::RankClusters(s.ds.data, s.clusters);
  eval::SignificanceOptions opts;
  opts.gamma_spec = {core::GammaPolicy::kRangeFraction, s.options.gamma};
  opts.epsilon = s.options.epsilon;
  opts.permutations = 1500;
  auto result = eval::PermutationSignificance(
      s.ds.data, s.clusters[static_cast<size_t>(order[0])], opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 1e-6);
}

TEST(AnalysisStack, ConsensusThenEnrichmentStillFindsModules) {
  const Stack& s = GetStack();
  eval::ConsensusOptions copts;
  copts.min_overlap = 0.5;
  copts.gamma_spec = {core::GammaPolicy::kRangeFraction, s.options.gamma};
  copts.epsilon = s.options.epsilon;
  const auto merged = eval::MergeOverlapping(s.ds.data, s.clusters, copts);
  ASSERT_FALSE(merged.empty());
  EXPECT_LE(merged.size(), s.clusters.size());

  std::vector<std::vector<int>> modules;
  for (const auto& imp : s.ds.implants) {
    modules.push_back(imp.Footprint().genes);
  }
  const eval::GoAnnotationDb db =
      eval::GenerateAnnotations(s.ds.data.num_genes(), modules);
  int enriched = 0;
  for (const auto& c : merged) {
    auto results = eval::FindEnrichedTerms(db, c.AllGenes());
    ASSERT_TRUE(results.ok());
    enriched += !results->empty() && (*results)[0].p_value < 1e-6;
  }
  EXPECT_GT(enriched, 0);
}

TEST(AnalysisStack, TargetedMiningAgreesWithTheIndex) {
  // Mining with required_genes = {g} must produce exactly the clusters the
  // full run's index attributes to g.
  const Stack& s = GetStack();
  const eval::ClusterIndex index(s.clusters, s.ds.data.num_genes(),
                                 s.ds.data.num_conditions());
  // Pick a gene that is clustered at least once.
  int probe = -1;
  for (int g = 0; g < s.ds.data.num_genes() && probe < 0; ++g) {
    if (index.MembershipDegree(g) > 0) probe = g;
  }
  ASSERT_GE(probe, 0);

  core::MinerOptions o = s.options;
  o.required_genes = {probe};
  auto targeted = core::RegClusterMiner(s.ds.data, o).Mine();
  ASSERT_TRUE(targeted.ok());

  std::set<std::string> expected;
  for (int k : index.ClustersWithGene(probe)) {
    expected.insert(s.clusters[static_cast<size_t>(k)].Key());
  }
  std::set<std::string> got;
  for (const auto& c : *targeted) got.insert(c.Key());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace regcluster
