// End-to-end pipeline: generate -> save matrix -> load -> impute -> mine ->
// save clusters -> load -> enrich.  Exercises every module boundary the way
// a downstream user would.

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "eval/annotation_gen.h"
#include "eval/go_enrichment.h"
#include "io/cluster_io.h"
#include "matrix/matrix_io.h"
#include "matrix/transforms.h"
#include "synth/generator.h"

namespace regcluster {
namespace {

TEST(PipelineTest, FullWorkflow) {
  // 1. Generate synthetic data with ground truth.
  synth::SyntheticConfig cfg;
  cfg.num_genes = 120;
  cfg.num_conditions = 14;
  cfg.num_clusters = 3;
  cfg.avg_cluster_genes_fraction = 0.08;
  cfg.seed = 424242;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());

  // 2. Round-trip the matrix through disk.
  const std::string matrix_path = ::testing::TempDir() + "/pipeline.tsv";
  ASSERT_TRUE(matrix::SaveMatrix(ds->data, matrix_path).ok());
  auto loaded = matrix::LoadMatrix(matrix_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_genes(), 120);

  // 3. Impute (no-op here, but the real pipeline always runs it).
  const matrix::ExpressionMatrix clean = matrix::ImputeRowMean(*loaded);

  // 4. Mine.
  core::MinerOptions o;
  o.min_genes = 6;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.05;
  o.remove_dominated = true;
  core::RegClusterMiner miner(clean, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  ASSERT_FALSE(clusters->empty());

  // 5. Round-trip the clusters through disk.
  const std::string cluster_path = ::testing::TempDir() + "/pipeline.clusters";
  ASSERT_TRUE(io::SaveClusters(*clusters, cluster_path).ok());
  auto reloaded = io::LoadClusters(cluster_path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), clusters->size());

  // 6. Human-readable report renders without error.
  std::ostringstream report;
  ASSERT_TRUE(io::WriteReport(*reloaded, &clean, report).ok());
  EXPECT_FALSE(report.str().empty());

  // 7. GO enrichment against annotations seeded from the ground truth: the
  // mined clusters (which recover the implants) must be enriched.
  std::vector<std::vector<int>> modules;
  for (const auto& imp : ds->implants) modules.push_back(imp.Footprint().genes);
  const eval::GoAnnotationDb db =
      eval::GenerateAnnotations(clean.num_genes(), modules);
  int enriched_clusters = 0;
  for (const auto& c : *reloaded) {
    auto results = eval::FindEnrichedTerms(db, c.AllGenes());
    ASSERT_TRUE(results.ok());
    if (!results->empty() && (*results)[0].p_value < 1e-6) {
      ++enriched_clusters;
    }
  }
  EXPECT_GT(enriched_clusters, 0);

  std::remove(matrix_path.c_str());
  std::remove(cluster_path.c_str());
}

TEST(PipelineTest, MissingValuePipelineRequiresImputation) {
  auto m = *matrix::ExpressionMatrix::FromRows(
      {{1, std::numeric_limits<double>::quiet_NaN(), 3, 4},
       {2, 3, 4, 5}});
  core::MinerOptions o;
  auto direct = core::RegClusterMiner(m, o).Mine();
  EXPECT_FALSE(direct.ok());

  const matrix::ExpressionMatrix clean = matrix::ImputeRowMean(m);
  auto imputed = core::RegClusterMiner(clean, o).Mine();
  EXPECT_TRUE(imputed.ok());
}

}  // namespace
}  // namespace regcluster
