// Integration: the reg-cluster miner must recover implanted
// shifting-and-scaling clusters from synthetic data, while the baseline
// models (pure shifting / pure scaling) recover pure patterns but miss
// shifting-and-scaling and negative correlation -- the paper's central
// comparative claim (Sections 1.1, 3.3, 5.2).

#include <gtest/gtest.h>

#include "baselines/pcluster.h"
#include "baselines/scaling_cluster.h"
#include "core/coherence.h"
#include "core/miner.h"
#include "eval/match.h"
#include "synth/generator.h"

namespace regcluster {
namespace {

synth::SyntheticConfig SmallConfig(uint64_t seed) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 150;
  cfg.num_conditions = 16;
  cfg.num_clusters = 4;
  cfg.avg_cluster_genes_fraction = 0.06;  // ~9 genes each
  cfg.avg_cluster_conditions = 6;
  cfg.seed = seed;
  return cfg;
}

std::vector<core::Bicluster> Footprints(const synth::SyntheticDataset& ds) {
  std::vector<core::Bicluster> out;
  for (const auto& imp : ds.implants) out.push_back(imp.Footprint());
  return out;
}

/// The recovery tests interrogate one dataset under one option set; mine it
/// once and cache the clusters together with the run's MinerStats, so each
/// assertion reads the cached record instead of re-mining.
struct RecoveryRun {
  synth::SyntheticDataset ds;
  std::vector<core::RegCluster> clusters;
  core::MinerStats stats;
};

const RecoveryRun& CachedRecoveryRun() {
  static const RecoveryRun* run = [] {
    auto ds = synth::GenerateSynthetic(SmallConfig(101));
    EXPECT_TRUE(ds.ok());
    core::MinerOptions o;
    o.min_genes = 6;
    o.min_conditions = 5;
    o.gamma = 0.1;
    o.epsilon = 0.01;
    o.remove_dominated = true;
    core::RegClusterMiner miner(ds->data, o);
    auto clusters = miner.Mine();
    EXPECT_TRUE(clusters.ok()) << clusters.status().ToString();
    return new RecoveryRun{*std::move(ds), *std::move(clusters),
                           miner.stats()};
  }();
  return *run;
}

TEST(RecoveryTest, MinerRecoversAllImplants) {
  const RecoveryRun& run = CachedRecoveryRun();
  ASSERT_FALSE(run.clusters.empty());

  std::vector<core::Bicluster> found;
  for (const auto& c : run.clusters) found.push_back(core::ToBicluster(c));
  const auto report = eval::ScoreAgainstTruth(found, Footprints(run.ds));
  EXPECT_GT(report.gene_recovery, 0.95);
  EXPECT_GT(report.cell_recovery, 0.8);

  // The cached run's node accounting is self-consistent: the search did
  // real work and emitted at least the clusters that survived the
  // dominated-removal post-pass.
  EXPECT_GT(run.stats.nodes_expanded, 0);
  EXPECT_GE(run.stats.clusters_emitted,
            static_cast<int64_t>(run.clusters.size()));
}

TEST(RecoveryTest, MinerSeparatesPAndNMembersCorrectly) {
  const RecoveryRun& run = CachedRecoveryRun();
  const auto* clusters = &run.clusters;

  // For each implant, find the best-matching output and check the p/n split
  // matches (up to global inversion of the chain).
  for (const auto& imp : run.ds.implants) {
    const auto truth = imp.Footprint();
    const core::RegCluster* best = nullptr;
    double best_score = 0;
    for (const auto& c : *clusters) {
      const double s = eval::CellJaccard(core::ToBicluster(c), truth);
      if (s > best_score) {
        best_score = s;
        best = &c;
      }
    }
    ASSERT_NE(best, nullptr);
    ASSERT_GT(best_score, 0.5);
    const bool same = best->p_genes == imp.p_genes &&
                      best->n_genes == imp.n_genes;
    const bool flipped = best->p_genes == imp.n_genes &&
                         best->n_genes == imp.p_genes;
    EXPECT_TRUE(same || flipped)
        << "member split mismatch for implant chain of size "
        << imp.chain.size();
  }
}

TEST(RecoveryTest, PClusterMissesShiftAndScaleImplants) {
  auto ds = synth::GenerateSynthetic(SmallConfig(303));
  ASSERT_TRUE(ds.ok());

  baselines::PClusterOptions o;
  o.delta = 0.5;
  o.min_genes = 6;
  o.min_conditions = 5;
  o.max_nodes = 200000;
  baselines::PClusterMiner miner(ds->data, o);
  auto found = miner.Mine();
  ASSERT_TRUE(found.ok());
  const double recovery = eval::CellMatchScore(Footprints(*ds), *found);
  EXPECT_LT(recovery, 0.2);
}

TEST(RecoveryTest, ScalingMinerMissesShiftAndScaleImplants) {
  auto ds = synth::GenerateSynthetic(SmallConfig(404));
  ASSERT_TRUE(ds.ok());

  baselines::ScalingClusterOptions o;
  o.epsilon = 0.05;
  o.min_genes = 6;
  o.min_conditions = 5;
  o.max_nodes = 200000;
  baselines::ScalingClusterMiner miner(ds->data, o);
  auto found = miner.Mine();
  ASSERT_TRUE(found.ok());
  const double recovery = eval::CellMatchScore(Footprints(*ds), *found);
  EXPECT_LT(recovery, 0.2);
}

TEST(RecoveryTest, MinerOutputsAllValidateOnSynthetic) {
  auto ds = synth::GenerateSynthetic(SmallConfig(505));
  ASSERT_TRUE(ds.ok());
  core::MinerOptions o;
  o.min_genes = 6;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.01;
  core::RegClusterMiner miner(ds->data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok());
  std::string why;
  for (const auto& c : *clusters) {
    ASSERT_TRUE(core::ValidateRegCluster(ds->data, c, o.gamma, o.epsilon,
                                         &why))
        << why;
  }
}

TEST(RecoveryTest, NoisyImplantsRecoveredWithLooserEpsilon) {
  synth::SyntheticConfig cfg = SmallConfig(606);
  cfg.noise_fraction = 0.05;
  auto ds = synth::GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());

  core::MinerOptions strict;
  strict.min_genes = 6;
  strict.min_conditions = 5;
  strict.gamma = 0.1;
  strict.epsilon = 1e-6;
  auto strict_out = core::RegClusterMiner(ds->data, strict).Mine();
  ASSERT_TRUE(strict_out.ok());
  std::vector<core::Bicluster> strict_found;
  for (const auto& c : *strict_out) {
    strict_found.push_back(core::ToBicluster(c));
  }

  core::MinerOptions loose = strict;
  loose.epsilon = 0.5;
  auto loose_out = core::RegClusterMiner(ds->data, loose).Mine();
  ASSERT_TRUE(loose_out.ok());
  std::vector<core::Bicluster> loose_found;
  for (const auto& c : *loose_out) {
    loose_found.push_back(core::ToBicluster(c));
  }

  const double strict_rec =
      eval::CellMatchScore(Footprints(*ds), strict_found);
  const double loose_rec = eval::CellMatchScore(Footprints(*ds), loose_found);
  EXPECT_GT(loose_rec, strict_rec);
  EXPECT_GT(loose_rec, 0.6);
}

}  // namespace
}  // namespace regcluster
