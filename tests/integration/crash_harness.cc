// Process-level kill-resume fault injection for the durable checkpoint
// subsystem (src/io/checkpoint.h).
//
// Each scenario spawns the real CLI as a child process and SIGKILLs it at a
// PRNG-scheduled instant -- no cooperation from the victim, exactly the
// failure a crash, OOM kill or preemption delivers.  Every killed attempt
// restarts with `--checkpoint=P --resume-from=P`; after a bounded number of
// kills the final attempt runs uninterrupted (mine resume is root-granular,
// so a kill cadence shorter than the longest root would otherwise livelock).
// The contract under test: the surviving run's --deterministic-output JSON
// and cluster archive are byte-identical to an uninterrupted reference run,
// regardless of where the kills landed, at 1 and 4 threads, on both the
// resident text path and the mmap + model-cache out-of-core path.
//
// The suite schedules >= 100 kill points in total (25 per mine scenario x 4
// scenarios, plus the sweep scenario's kills).
//
// The CLI binary comes from the REGCLUSTER_CLI environment variable (set by
// tests/CMakeLists.txt); the suite skips when it is absent so the bare test
// binary stays runnable.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/durable_file.h"
#include "util/prng.h"

namespace regcluster {
namespace {

const char* CliPath() { return std::getenv("REGCLUSTER_CLI"); }

std::string WorkDir() {
  // Per-process: ctest runs each discovered test as its own filtered
  // process, and concurrent instances (ctest -j) must not race on the
  // shared dataset + reference files SetUpTestSuite writes here.
  static const std::string dir = [] {
    std::string d = ::testing::TempDir() + "/crash_harness_" +
                    std::to_string(static_cast<long>(::getpid()));
    ::mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

struct RunResult {
  bool exited = false;   // child left via exit(), not a signal
  int exit_code = -1;    // valid when exited
  bool killed = false;   // we delivered SIGKILL before it finished
};

/// Spawns the CLI with `args`, output to /dev/null.  When `kill_after_us`
/// >= 0, sleeps that long and SIGKILLs the child; the child racing to
/// completion first is fine (killed=false, exited=true).
RunResult RunCli(const std::vector<std::string>& args, int64_t kill_after_us) {
  std::vector<std::string> full;
  full.push_back(CliPath());
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (std::string& a : full) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  RunResult result;
  if (pid < 0) return result;
  if (kill_after_us >= 0) {
    ::usleep(static_cast<useconds_t>(kill_after_us));
    if (::kill(pid, SIGKILL) == 0) result.killed = true;
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
    // Delivered after exit but before the reap: not an interrupted run.
    result.killed = result.killed && false;
  }
  if (WIFSIGNALED(status)) result.killed = true;
  return result;
}

void ExpectFilesIdentical(const std::string& got_path,
                          const std::string& want_path, const char* what) {
  auto got = util::ReadFileToString(got_path);
  auto want = util::ReadFileToString(want_path);
  ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
  ASSERT_TRUE(want.ok()) << what << ": " << want.status().ToString();
  EXPECT_EQ(*got, *want) << what << " differs from the uninterrupted reference";
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// One-time dataset + reference setup shared by every scenario.
class CrashHarness : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (CliPath() == nullptr) return;
    const std::string dir = WorkDir();
    matrix_tsv_ = dir + "/m.tsv";
    matrix_bin_ = dir + "/m.rgx";
    auto gen = RunCli({"generate", "--out-matrix=" + matrix_tsv_,
                       "--genes=800", "--conditions=24", "--clusters=6",
                       "--gene-fraction=0.04", "--seed=17"},
                      -1);
    ASSERT_TRUE(gen.exited && gen.exit_code == 0) << "generate failed";
    auto conv = RunCli({"convert", "--in=" + matrix_tsv_,
                        "--out=" + matrix_bin_, "--out-format=bin"},
                       -1);
    ASSERT_TRUE(conv.exited && conv.exit_code == 0) << "convert failed";

    // Uninterrupted reference (threads/store-path invariant by the PR-2/6
    // determinism contract; asserted again per scenario via byte compare).
    ref_json_ = dir + "/ref.json";
    ref_out_ = dir + "/ref.out";
    std::vector<std::string> ref_args = {"mine", "--matrix=" + matrix_tsv_};
    AppendMineFlags(&ref_args);
    ref_args.push_back("--out=" + ref_out_);
    ref_args.push_back("--json=" + ref_json_);
    ref_args.push_back("--deterministic-output");
    auto ref = RunCli(ref_args, -1);
    ASSERT_TRUE(ref.exited && ref.exit_code == 0) << "reference mine failed";
  }

  // Calibrated so one uninterrupted mine takes roughly 100-200 ms: long
  // enough that most scheduled kills land mid-run, short enough that a
  // scenario's kill loop stays in seconds.
  static void AppendMineFlags(std::vector<std::string>* args) {
    args->push_back("--ming=5");
    args->push_back("--minc=4");
    args->push_back("--gamma=0.15");
    args->push_back("--epsilon=0.1");
  }

  void SetUp() override {
    if (CliPath() == nullptr) {
      GTEST_SKIP() << "REGCLUSTER_CLI not set; run via ctest";
    }
  }

  static std::string matrix_tsv_;
  static std::string matrix_bin_;
  static std::string ref_json_;
  static std::string ref_out_;
};

std::string CrashHarness::matrix_tsv_;
std::string CrashHarness::matrix_bin_;
std::string CrashHarness::ref_json_;
std::string CrashHarness::ref_out_;

struct MineScenario {
  const char* name;
  int threads;
  bool out_of_core;
};

class MineKillResume : public CrashHarness,
                       public ::testing::WithParamInterface<MineScenario> {};

TEST_P(MineKillResume, FinalOutputByteIdenticalToUninterruptedRun) {
  const MineScenario& sc = GetParam();
  const std::string dir = WorkDir();
  const std::string tag = std::string("mine_") + sc.name;
  const std::string ckpt = dir + "/" + tag + ".ckpt";
  const std::string json = dir + "/" + tag + ".json";
  const std::string out = dir + "/" + tag + ".out";

  std::vector<std::string> args = {"mine"};
  if (sc.out_of_core) {
    args.push_back("--matrix=" + matrix_bin_);
    args.push_back("--matrix-format=bin");
    args.push_back("--model-cache-mb=1");
  } else {
    args.push_back("--matrix=" + matrix_tsv_);
  }
  AppendMineFlags(&args);
  args.push_back("--threads=" + std::to_string(sc.threads));
  args.push_back("--out=" + out);
  args.push_back("--json=" + json);
  args.push_back("--deterministic-output");
  args.push_back("--checkpoint=" + ckpt);
  args.push_back("--checkpoint-every-ms=20");
  args.push_back("--resume-from=" + ckpt);

  // 25 PRNG kill points per scenario (seeded per scenario so the schedules
  // differ but reproduce).  Kills are bounded: if the run survives them
  // all, the last attempt runs uninterrupted -- mine resume is
  // root-granular, so an unbounded kill cadence shorter than the longest
  // root would livelock by design.
  util::Prng prng(4242 + sc.threads * 100 + (sc.out_of_core ? 1 : 0));
  constexpr int kKills = 25;
  int kills_delivered = 0;
  bool saw_checkpoint = false;
  bool completed = false;
  for (int attempt = 0; attempt < kKills && !completed; ++attempt) {
    const int64_t delay_us = prng.UniformInt(10'000, 160'000);
    RunResult r = RunCli(args, delay_us);
    if (r.killed) ++kills_delivered;
    saw_checkpoint =
        saw_checkpoint || FileExists(ckpt + ".a") || FileExists(ckpt + ".b");
    if (r.exited) {
      ASSERT_EQ(r.exit_code, 0) << tag << " attempt " << attempt;
      completed = true;
    }
  }
  if (!completed) {
    RunResult last = RunCli(args, -1);
    ASSERT_TRUE(last.exited) << tag << " final attempt did not exit";
    ASSERT_EQ(last.exit_code, 0) << tag << " final attempt failed";
  }

  EXPECT_GT(kills_delivered, 0) << "no kill landed; scenario is vacuous";
  EXPECT_TRUE(saw_checkpoint) << "no snapshot was ever written";
  ExpectFilesIdentical(json, ref_json_, "mine json");
  ExpectFilesIdentical(out, ref_out_, "cluster archive");
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, MineKillResume,
    ::testing::Values(MineScenario{"t1_resident", 1, false},
                      MineScenario{"t4_resident", 4, false},
                      MineScenario{"t1_outofcore", 1, true},
                      MineScenario{"t4_outofcore", 4, true}),
    [](const ::testing::TestParamInfo<MineScenario>& info) {
      return info.param.name;
    });

TEST_F(CrashHarness, SweepKillResumeByteIdentical) {
  const std::string dir = WorkDir();
  const std::string spec = "gamma=0.1;0.12;0.15;0.18;0.2,eps=0.1";

  // Uninterrupted sweep reference, timed: the kill window below is scaled
  // to the measured duration so the scenario stays non-vacuous on hosts
  // where the sweep runs in tens of milliseconds.
  const std::string ref_json = dir + "/sweep_ref.json";
  const std::string ref_csv = dir + "/sweep_ref.csv";
  const auto ref_start = std::chrono::steady_clock::now();
  auto ref = RunCli({"mine", "--matrix=" + matrix_tsv_, "--ming=5",
                     "--minc=4", "--sweep=" + spec,
                     "--sweep-out=" + ref_json, "--sweep-csv=" + ref_csv,
                     "--deterministic-output"},
                    -1);
  const int64_t ref_us = std::max<int64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ref_start)
          .count(),
      20'000);
  ASSERT_TRUE(ref.exited && ref.exit_code == 0) << "reference sweep failed";

  const std::string ckpt = dir + "/sweep.ckpt";
  const std::string json = dir + "/sweep.json";
  const std::string csv = dir + "/sweep.csv";
  const std::vector<std::string> args = {
      "mine", "--matrix=" + matrix_tsv_, "--ming=5", "--minc=4",
      "--sweep=" + spec, "--sweep-out=" + json, "--sweep-csv=" + csv,
      "--deterministic-output", "--checkpoint=" + ckpt,
      "--checkpoint-every-ms=20", "--resume-from=" + ckpt};

  // Sweep snapshots land at gamma-group boundaries, so the kill delays
  // span the measured sweep duration; kills are bounded like the mine's.
  // A run that completes before its kill lands is re-armed with a halved
  // window (and cleared snapshot buffers, so the retry is a real re-run,
  // not a fast replay of the completed snapshot) until a kill connects.
  util::Prng prng(777);
  constexpr int kKills = 10;
  int64_t window_us = ref_us;
  int kills_delivered = 0;
  bool completed = false;
  for (int attempt = 0; attempt < kKills && !completed; ++attempt) {
    const int64_t delay_us =
        prng.UniformInt(window_us / 10 + 1, window_us * 9 / 10 + 2);
    RunResult r = RunCli(args, delay_us);
    if (r.killed) ++kills_delivered;
    if (r.exited) {
      ASSERT_EQ(r.exit_code, 0) << "sweep attempt " << attempt;
      if (kills_delivered > 0) {
        completed = true;
      } else {
        std::remove((ckpt + ".a").c_str());
        std::remove((ckpt + ".b").c_str());
        window_us = std::max<int64_t>(window_us / 2, 10'000);
      }
    }
  }
  if (!completed) {
    RunResult last = RunCli(args, -1);
    ASSERT_TRUE(last.exited && last.exit_code == 0)
        << "final sweep attempt failed";
  }

  EXPECT_GT(kills_delivered, 0) << "no kill landed; scenario is vacuous";
  ExpectFilesIdentical(json, ref_json, "sweep json");
  ExpectFilesIdentical(csv, ref_csv, "sweep csv");
}

TEST_F(CrashHarness, TornSnapshotFilesFallBackOrFailLoud) {
  // Simulate the worst crash artifact: both buffers present, the newer one
  // torn mid-write.  The resume must use the older buffer (exit 0 and
  // byte-identical output), never the torn one.
  const std::string dir = WorkDir();
  const std::string ckpt = dir + "/torn.ckpt";
  const std::string json = dir + "/torn.json";
  const std::string out = dir + "/torn.out";

  std::vector<std::string> args = {"mine", "--matrix=" + matrix_tsv_};
  AppendMineFlags(&args);
  args.push_back("--out=" + out);
  args.push_back("--json=" + json);
  args.push_back("--deterministic-output");
  args.push_back("--checkpoint=" + ckpt);
  args.push_back("--checkpoint-every-ms=20");
  args.push_back("--resume-from=" + ckpt);

  // Kill mid-run until BOTH snapshot buffers exist: tearing one buffer
  // only exercises the fallback when the other remains on disk.  A kill
  // that lands before the second generation leaves a single buffer, and
  // tearing the only snapshot is the (separately pinned) refusal path,
  // not this test.
  util::Prng prng(99);
  for (int attempt = 0; attempt < 10; ++attempt) {
    RunResult r = RunCli(args, prng.UniformInt(40'000, 120'000));
    if (FileExists(ckpt + ".a") && FileExists(ckpt + ".b")) break;
    if (r.exited && r.exit_code == 0) break;
  }
  if (FileExists(ckpt + ".a") && FileExists(ckpt + ".b")) {
    const std::string torn_buffer = ckpt + ".b";
    auto bytes = util::ReadFileToString(torn_buffer);
    if (bytes.ok() && bytes->size() > 8) {
      ASSERT_TRUE(util::AtomicWriteFile(torn_buffer,
                                        bytes->substr(0, bytes->size() / 2))
                      .ok());
    }
  }

  RunResult r = RunCli(args, -1);
  ASSERT_TRUE(r.exited);
  ASSERT_EQ(r.exit_code, 0) << "resume after torn buffer failed";
  ExpectFilesIdentical(json, ref_json_, "post-torn json");
  ExpectFilesIdentical(out, ref_out_, "post-torn archive");
}

}  // namespace
}  // namespace regcluster
