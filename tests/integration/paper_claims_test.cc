// The paper's Section 5 claims, encoded as fast regression tests (the
// bench/ binaries print the full tables; these tests pin the shapes so
// `ctest` alone guards the reproduction).

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "eval/annotation_gen.h"
#include "eval/go_enrichment.h"
#include "eval/match.h"
#include "eval/quality.h"
#include "synth/yeast_surrogate.h"
#include "util/prng.h"

namespace regcluster {
namespace {

/// Shared small-scale yeast-style run (Section 5.2 parameters on a reduced
/// surrogate so the suite stays fast).
struct YeastRun {
  synth::SyntheticDataset ds;
  std::vector<core::RegCluster> clusters;
};

const YeastRun& GetYeastRun() {
  static const YeastRun* run = [] {
    auto* r = new YeastRun();
    synth::YeastSurrogateConfig cfg;
    cfg.num_genes = 800;
    cfg.num_conditions = 17;
    cfg.num_modules = 8;
    auto ds = synth::MakeYeastSurrogate(cfg);
    EXPECT_TRUE(ds.ok());
    r->ds = *std::move(ds);
    core::MinerOptions o;
    o.min_genes = 15;
    o.min_conditions = 6;
    o.gamma = 0.05;
    o.epsilon = 1.0;
    o.remove_dominated = true;
    auto clusters = core::RegClusterMiner(r->ds.data, o).Mine();
    EXPECT_TRUE(clusters.ok());
    r->clusters = *std::move(clusters);
    return r;
  }();
  return *run;
}

TEST(PaperClaims, Section52_FindsClustersOnYeastScaleData) {
  const YeastRun& run = GetYeastRun();
  EXPECT_GE(run.clusters.size(), 4u);
  // Output is real: gene-level relevance vs the implanted truth is high.
  std::vector<core::Bicluster> found, truth;
  for (const auto& c : run.clusters) found.push_back(core::ToBicluster(c));
  for (const auto& imp : run.ds.implants) truth.push_back(imp.Footprint());
  const auto report = eval::ScoreAgainstTruth(found, truth);
  EXPECT_GT(report.gene_relevance, 0.8);
}

TEST(PaperClaims, Section52_EveryClusterValidates) {
  const YeastRun& run = GetYeastRun();
  std::string why;
  for (const auto& c : run.clusters) {
    ASSERT_TRUE(core::ValidateRegCluster(run.ds.data, c, 0.05, 1.0, &why))
        << why;
  }
}

TEST(PaperClaims, Figure8_ClustersMixPositiveAndNegativeMembers) {
  const YeastRun& run = GetYeastRun();
  int with_negative = 0;
  for (const auto& c : run.clusters) with_negative += !c.n_genes.empty();
  EXPECT_GT(with_negative, 0);
  // Crossovers: a p-member and n-member profile must cross somewhere on the
  // chain (the "remarkable characteristic" the paper highlights).
  int crossovers = 0;
  for (const auto& c : run.clusters) {
    if (c.p_genes.empty() || c.n_genes.empty()) continue;
    const int p = c.p_genes[0], n = c.n_genes[0];
    bool p_above_somewhere = false, n_above_somewhere = false;
    for (int cond : c.chain) {
      if (run.ds.data(p, cond) > run.ds.data(n, cond)) p_above_somewhere = true;
      if (run.ds.data(n, cond) > run.ds.data(p, cond)) n_above_somewhere = true;
    }
    crossovers += p_above_somewhere && n_above_somewhere;
  }
  EXPECT_GT(crossovers, 0);
}

TEST(PaperClaims, Section52_OverlapWithinReportedBand) {
  const YeastRun& run = GetYeastRun();
  const auto summary = eval::Summarize(run.clusters);
  EXPECT_GE(summary.min_overlap, 0.0);
  EXPECT_LE(summary.max_overlap, 1.0);
}

TEST(PaperClaims, Table2_MinedClustersAreGoEnriched) {
  const YeastRun& run = GetYeastRun();
  std::vector<std::vector<int>> modules;
  for (const auto& imp : run.ds.implants) {
    modules.push_back(imp.Footprint().genes);
  }
  const eval::GoAnnotationDb db =
      eval::GenerateAnnotations(run.ds.data.num_genes(), modules);
  int enriched = 0;
  for (const auto& c : run.clusters) {
    auto results = eval::FindEnrichedTerms(db, c.AllGenes());
    ASSERT_TRUE(results.ok());
    if (!results->empty() && (*results)[0].p_value < 1e-4) ++enriched;
  }
  EXPECT_GT(enriched, 0);
  // Negative control: random sets are not enriched at that level.
  util::Prng prng(17);
  int control_hits = 0;
  for (int t = 0; t < 10; ++t) {
    auto random_set =
        prng.SampleWithoutReplacement(run.ds.data.num_genes(), 20);
    auto results = eval::FindEnrichedTerms(db, random_set);
    ASSERT_TRUE(results.ok());
    if (!results->empty() && (*results)[0].p_value < 1e-4) ++control_hits;
  }
  EXPECT_EQ(control_hits, 0);
}

TEST(PaperClaims, Figure7a_RuntimeRoughlyLinearInGenes) {
  // Mine two sizes; the runtime ratio must stay well below quadratic.
  auto run_one = [](int genes) {
    synth::SyntheticConfig cfg;
    cfg.num_genes = genes;
    cfg.num_conditions = 24;
    cfg.num_clusters = genes / 100;
    cfg.seed = 5;
    auto ds = synth::GenerateSynthetic(cfg);
    EXPECT_TRUE(ds.ok());
    core::MinerOptions o;
    o.min_genes = std::max(2, genes / 100);
    o.min_conditions = 6;
    o.gamma = 0.1;
    o.epsilon = 0.01;
    core::RegClusterMiner miner(ds->data, o);
    EXPECT_TRUE(miner.Mine().ok());
    return miner.stats().mine_seconds;
  };
  const double t1 = run_one(600);
  const double t4 = run_one(2400);
  // 4x genes: linear predicts 4x; demand < 10x to keep the test robust on
  // noisy CI machines.
  EXPECT_LT(t4, 10.0 * t1 + 0.05);
}

}  // namespace
}  // namespace regcluster
