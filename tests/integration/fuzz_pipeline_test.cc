// Randomized robustness sweep: many generator/preprocessing/miner
// configurations, including missing values, constant rows, extreme
// thresholds and tiny matrices.  The pipeline must never crash, every
// Status must be propagated (not silently ignored), and every successful
// run's outputs must satisfy Definition 3.2.

#include <cmath>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/miner.h"
#include "matrix/transforms.h"
#include "synth/generator.h"
#include "util/prng.h"

namespace regcluster {
namespace {

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, NeverCrashesOutputsAlwaysValid) {
  util::Prng prng(static_cast<uint64_t>(GetParam()) * 7919 + 13);

  // Random dataset: sometimes synthetic-with-implants, sometimes raw noise,
  // with random holes, constants and ties.
  matrix::ExpressionMatrix data;
  if (prng.Bernoulli(0.5)) {
    synth::SyntheticConfig cfg;
    cfg.num_genes = static_cast<int>(prng.UniformInt(5, 120));
    cfg.num_conditions = static_cast<int>(prng.UniformInt(4, 20));
    cfg.num_clusters = static_cast<int>(prng.UniformInt(0, 3));
    cfg.avg_cluster_genes_fraction =
        std::min(0.4, 4.0 / cfg.num_genes + 0.05);
    cfg.avg_cluster_conditions =
        static_cast<int>(prng.UniformInt(2, 5));
    cfg.noise_fraction = prng.Uniform(0.0, 0.2);
    cfg.gene_reuse_fraction = prng.Bernoulli(0.3) ? 0.4 : 0.0;
    cfg.seed = prng.Next64();
    auto ds = synth::GenerateSynthetic(cfg);
    if (!ds.ok()) {
      // Over-demand configurations are legitimate Status failures.
      SUCCEED() << ds.status().ToString();
      return;
    }
    data = std::move(ds->data);
  } else {
    const int genes = static_cast<int>(prng.UniformInt(1, 60));
    const int conds = static_cast<int>(prng.UniformInt(2, 16));
    data = matrix::ExpressionMatrix(genes, conds);
    for (int g = 0; g < genes; ++g) {
      const bool constant_row = prng.Bernoulli(0.1);
      const double c0 = prng.Uniform(0, 10);
      for (int c = 0; c < conds; ++c) {
        data(g, c) = constant_row
                         ? c0
                         : (prng.Bernoulli(0.25)
                                ? static_cast<double>(prng.UniformInt(0, 4))
                                : prng.Uniform(0, 10));
      }
    }
  }

  // Random holes.
  if (prng.Bernoulli(0.5)) {
    for (int g = 0; g < data.num_genes(); ++g) {
      for (int c = 0; c < data.num_conditions(); ++c) {
        if (prng.Bernoulli(0.05)) {
          data(g, c) = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }

  // Random preprocessing.
  if (data.HasMissingValues()) {
    if (prng.Bernoulli(0.5)) {
      auto imputed = matrix::ImputeKnn(data, 1 + static_cast<int>(
                                                 prng.UniformInt(0, 5)));
      ASSERT_TRUE(imputed.ok());
      data = *std::move(imputed);
    } else {
      data = matrix::ImputeRowMean(data);
    }
  }
  if (prng.Bernoulli(0.3)) {
    auto normalized = matrix::QuantileNormalizeColumns(data);
    ASSERT_TRUE(normalized.ok());
    data = *std::move(normalized);
  }

  // Random miner configuration.
  core::MinerOptions o;
  o.min_genes = static_cast<int>(prng.UniformInt(1, 6));
  o.min_conditions = static_cast<int>(prng.UniformInt(2, 6));
  o.gamma = prng.Uniform(0.0, 1.0);
  o.epsilon = prng.Uniform(0.0, 2.0);
  o.gamma_policy = static_cast<core::GammaPolicy>(prng.UniformInt(0, 4));
  if (o.gamma_policy == core::GammaPolicy::kAbsolute) {
    o.gamma = prng.Uniform(0.0, 10.0);
  }
  o.num_threads = static_cast<int>(prng.UniformInt(1, 4));
  o.remove_dominated = prng.Bernoulli(0.5);
  // Bound the gamma ~ 0 corner: node and output caps keep the worst random
  // configuration (everything regulated, huge epsilon) test-sized.
  o.max_nodes = 50000;
  o.max_clusters = 2000;

  core::RegClusterMiner miner(data, o);
  auto clusters = miner.Mine();
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();

  const core::GammaSpec spec{o.gamma_policy, o.gamma};
  std::string why;
  for (const auto& c : *clusters) {
    ASSERT_GE(c.num_genes(), o.min_genes);
    ASSERT_GE(c.num_conditions(), o.min_conditions);
    ASSERT_TRUE(core::ValidateRegCluster(data, c, spec, o.epsilon, &why))
        << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(0, 24));

}  // namespace
}  // namespace regcluster
