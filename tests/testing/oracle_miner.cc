#include "testing/oracle_miner.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace regcluster {
namespace testing {
namespace {

// +1 when gene g's raw values rise by more than gamma_g at *every* adjacent
// chain step, -1 when the exact inversion holds at every step, 0 otherwise.
// Always evaluated over the full chain -- no incremental head positions.
int ChainDirection(const matrix::ExpressionMatrix& data, int g,
                   const std::vector<int>& chain, double gamma_g) {
  bool up = true;
  bool down = true;
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    const double delta = data(g, chain[k + 1]) - data(g, chain[k]);
    if (!(delta > gamma_g)) up = false;
    if (!(-delta > gamma_g)) down = false;
  }
  if (up) return 1;
  if (down) return -1;
  return 0;
}

// Eq. 7, written out from the paper: the adjacent step (ck, ck1) scored
// against the chain's baseline pair (c1, c2).
double CoherenceScore(const matrix::ExpressionMatrix& data, int g, int c1,
                      int c2, int ck, int ck1) {
  return (data(g, ck1) - data(g, ck)) / (data(g, c2) - data(g, c1));
}

// The representative-chain rule's tie-breaker: a chain represents itself
// (rather than its reversal) when it is lexicographically smaller.
bool LexSmallerThanReversed(const std::vector<int>& chain) {
  const size_t n = chain.size();
  for (size_t i = 0; i < n; ++i) {
    if (chain[i] != chain[n - 1 - i]) return chain[i] < chain[n - 1 - i];
  }
  return false;
}

class Oracle {
 public:
  Oracle(const matrix::ExpressionMatrix& data, const OracleOptions& options)
      : data_(data), options_(options) {
    gamma_abs_.reserve(data.num_genes());
    for (int g = 0; g < data.num_genes(); ++g) {
      gamma_abs_.push_back(core::AbsoluteGamma(data, g, options.gamma));
    }
  }

  std::vector<core::RegCluster> Mine() {
    std::vector<int> all_genes(data_.num_genes());
    for (int g = 0; g < data_.num_genes(); ++g) all_genes[g] = g;
    for (int c = 0; c < data_.num_conditions(); ++c) {
      Enumerate({c}, {all_genes});
    }
    std::vector<core::RegCluster> out;
    out.reserve(found_.size());
    for (auto& [key, cluster] : found_) out.push_back(std::move(cluster));
    return out;  // map order == Key() order
  }

 private:
  /// Walks every ordered condition sequence extending `chain`.  `sets` are
  /// the candidate member sets surviving the definition's refinement at
  /// `chain`; each extension re-checks regulation over the *whole* extended
  /// chain for every gene and re-derives the coherence windows from
  /// scratch.
  void Enumerate(const std::vector<int>& chain,
                 const std::vector<std::vector<int>>& sets) {
    if (static_cast<int>(chain.size()) >= options_.min_conditions) {
      for (const std::vector<int>& members : sets) Emit(chain, members);
    }
    if (static_cast<int>(chain.size()) == data_.num_conditions()) return;

    for (int cand = 0; cand < data_.num_conditions(); ++cand) {
      if (std::find(chain.begin(), chain.end(), cand) != chain.end()) {
        continue;
      }
      std::vector<int> extended = chain;
      extended.push_back(cand);
      std::set<std::vector<int>> next;  // dedup across parent sets
      for (const std::vector<int>& members : sets) {
        Refine(extended, members, &next);
      }
      if (next.empty()) continue;  // member sets only shrink
      Enumerate(extended,
                std::vector<std::vector<int>>(next.begin(), next.end()));
    }
  }

  /// One refinement step of Definition 3.3: keep the genes regulating along
  /// the full extended chain, then split into maximal epsilon-coherent
  /// windows (windows below MinG can never grow back and are dropped).
  void Refine(const std::vector<int>& extended,
              const std::vector<int>& members,
              std::set<std::vector<int>>* out) const {
    std::vector<int> kept;
    for (int g : members) {
      if (ChainDirection(data_, g, extended, gamma_abs_[g]) != 0) {
        kept.push_back(g);
      }
    }
    if (static_cast<int>(kept.size()) < options_.min_genes) return;
    if (extended.size() == 2) {
      // The baseline pair itself: every surviving gene scores exactly 1,
      // so there is a single all-inclusive window.
      out->insert(std::move(kept));
      return;
    }

    struct Scored {
      double h;
      int gene;
    };
    std::vector<Scored> scored;
    scored.reserve(kept.size());
    const int c1 = extended[0], c2 = extended[1];
    const int ck = extended[extended.size() - 2];
    const int ck1 = extended.back();
    for (int g : kept) {
      scored.push_back(Scored{CoherenceScore(data_, g, c1, c2, ck, ck1), g});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.h != b.h) return a.h < b.h;
                return a.gene < b.gene;
              });
    const size_t n = scored.size();
    size_t hi = 0, prev_hi = 0;
    for (size_t lo = 0; lo < n; ++lo) {
      if (hi < lo + 1) hi = lo + 1;
      while (hi < n && scored[hi].h - scored[lo].h <= options_.epsilon) ++hi;
      const bool maximal = lo == 0 || hi > prev_hi;
      prev_hi = hi;
      if (!maximal || static_cast<int>(hi - lo) < options_.min_genes) {
        continue;
      }
      std::vector<int> window;
      window.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) window.push_back(scored[i].gene);
      std::sort(window.begin(), window.end());
      out->insert(std::move(window));
    }
  }

  /// Definition 3.3's final checks at an enumerated (chain, members) pair:
  /// every member is a p-member (strictly up beyond gamma_i at every step)
  /// or an n-member (the exact inversion), sizes meet MinG/MinC, and the
  /// chain is the representative of the (chain, reversal) pair.
  void Emit(const std::vector<int>& chain, const std::vector<int>& members) {
    if (static_cast<int>(members.size()) < options_.min_genes) return;
    std::vector<int> p, n;
    for (int g : members) {
      const int dir = ChainDirection(data_, g, chain, gamma_abs_[g]);
      if (dir > 0) {
        p.push_back(g);
      } else if (dir < 0) {
        n.push_back(g);
      } else {
        return;  // not a member under the definition
      }
    }
    if (!(p.size() > n.size() ||
          (p.size() == n.size() && LexSmallerThanReversed(chain)))) {
      return;  // the reversed chain represents this cluster
    }
    core::RegCluster cluster;
    cluster.chain = chain;
    cluster.p_genes = std::move(p);
    cluster.n_genes = std::move(n);
    found_.emplace(cluster.Key(), std::move(cluster));
  }

  const matrix::ExpressionMatrix& data_;
  const OracleOptions& options_;
  std::vector<double> gamma_abs_;
  std::map<std::string, core::RegCluster> found_;
};

}  // namespace

std::vector<core::RegCluster> OracleMine(const matrix::ExpressionMatrix& data,
                                         const OracleOptions& options) {
  return Oracle(data, options).Mine();
}

std::vector<core::RegCluster> Canonicalize(
    std::vector<core::RegCluster> clusters) {
  std::sort(clusters.begin(), clusters.end(),
            [](const core::RegCluster& a, const core::RegCluster& b) {
              return a.Key() < b.Key();
            });
  return clusters;
}

}  // namespace testing
}  // namespace regcluster
