// Shared fixtures: the paper's running dataset (Table 1) and expected
// artifacts from its worked examples (Figures 2, 3, 4, 6).

#ifndef REGCLUSTER_TESTS_TESTING_PAPER_DATA_H_
#define REGCLUSTER_TESTS_TESTING_PAPER_DATA_H_

#include <vector>

#include "matrix/expression_matrix.h"

namespace regcluster {
namespace testing {

/// Table 1: 3 genes x 10 conditions.  Index i corresponds to the paper's
/// g_{i+1}; condition index j to c_{j+1}.
inline matrix::ExpressionMatrix RunningDataset() {
  auto m = matrix::ExpressionMatrix::FromRows({
      /* g1 */ {10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5},
      /* g2 */ {20, 15, 15, 43.5, 30, 44, 45, 43, 35, 20},
      /* g3 */ {6, -3.8, 8, 6.2, 2, 7.8, -4, 2, 0, 0},
  });
  return *std::move(m);
}

/// The paper's condition naming: c1..c10 map to indices 0..9.
inline constexpr int C(int paper_id) { return paper_id - 1; }
/// Gene naming: g1..g3 map to indices 0..2.
inline constexpr int G(int paper_id) { return paper_id - 1; }

/// Figure 2 / Section 4: the only reg-cluster of the running dataset at
/// gamma=0.15, epsilon=0.1, MinG=3, MinC=5 is the chain c7 c9 c5 c1 c3 with
/// p-members {g1, g3} and n-members {g2}.
inline std::vector<int> ExpectedChain() {
  return {C(7), C(9), C(5), C(1), C(3)};
}
inline std::vector<int> ExpectedPMembers() { return {G(1), G(3)}; }
inline std::vector<int> ExpectedNMembers() { return {G(2)}; }

}  // namespace testing
}  // namespace regcluster

#endif  // REGCLUSTER_TESTS_TESTING_PAPER_DATA_H_
