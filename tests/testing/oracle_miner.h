// Brute-force oracle miner for differential testing.
//
// A deliberately naive reference: it enumerates *every ordered condition
// subset* of the matrix (O(sum_k |C|!/(|C|-k)!), exponential in |C| -- tiny
// matrices only) and checks Definition 3.3 directly against the raw
// expression values at each one -- per-gene regulation along the chain
// (p-members strictly up by more than gamma_i per step, n-members the exact
// inversion), the epsilon window over Eq. 7 coherence scores, MinG/MinC, and
// the representative-chain rule.  No RWave models, no bitmap index, no
// pruning strategies, no incremental search state: the only things shared
// with src/core are public value types (RegCluster, GammaSpec) and the
// matrix container, so a bug in the optimized search machinery cannot also
// hide here.
//
// The member sets at a chain are derived exactly as the definition's
// recursive refinement prescribes: start from all genes, and for each chain
// prefix drop the genes that stop regulating, then split the survivors into
// maximal epsilon-coherent windows (the score sort is tie-broken by gene id,
// matching the miner's canonical order).  Everything is recomputed from the
// full prefix at every enumerated sequence.

#ifndef REGCLUSTER_TESTS_TESTING_ORACLE_MINER_H_
#define REGCLUSTER_TESTS_TESTING_ORACLE_MINER_H_

#include <vector>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "matrix/expression_matrix.h"

namespace regcluster {
namespace testing {

struct OracleOptions {
  core::GammaSpec gamma;         // policy + scale (default: range fraction)
  double epsilon = 0.1;
  int min_genes = 2;             // MinG
  int min_conditions = 2;        // MinC
};

/// Mines every reg-cluster of `data` by exhaustive enumeration.  The result
/// is canonical: unique clusters sorted by RegCluster::Key().  Cost is
/// exponential in num_conditions -- keep matrices at or below ~12 genes x
/// ~8 conditions.
std::vector<core::RegCluster> OracleMine(const matrix::ExpressionMatrix& data,
                                         const OracleOptions& options);

/// Canonicalizes any cluster list the same way OracleMine orders its output
/// (sort by Key()), so two mines compare with operator== on the vectors.
std::vector<core::RegCluster> Canonicalize(
    std::vector<core::RegCluster> clusters);

}  // namespace testing
}  // namespace regcluster

#endif  // REGCLUSTER_TESTS_TESTING_ORACLE_MINER_H_
