// MatrixStore / binary-format behavior: write-read roundtrips, the mmap
// path serving the identical payload, base-pointer rebinding across
// copy/move of the concrete stores, and the byte-accounting split between
// resident and mapped storage.

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "matrix/expression_matrix.h"
#include "matrix/store.h"

namespace regcluster {
namespace matrix {
namespace {

ExpressionMatrix MakeMatrix(int genes, int conds) {
  ExpressionMatrix m(genes, conds);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < conds; ++c) {
      m(g, c) = g * 100.0 + c + 0.25;
    }
  }
  std::vector<std::string> gnames;
  std::vector<std::string> cnames;
  for (int g = 0; g < genes; ++g) gnames.push_back("gene_" + std::to_string(g));
  for (int c = 0; c < conds; ++c) cnames.push_back("cond_" + std::to_string(c));
  EXPECT_TRUE(m.SetGeneNames(gnames).ok());
  EXPECT_TRUE(m.SetConditionNames(cnames).ok());
  return m;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameContents(const MatrixStore& a, const MatrixStore& b) {
  ASSERT_EQ(a.num_genes(), b.num_genes());
  ASSERT_EQ(a.num_conditions(), b.num_conditions());
  for (int g = 0; g < a.num_genes(); ++g) {
    for (int c = 0; c < a.num_conditions(); ++c) {
      EXPECT_EQ(a(g, c), b(g, c)) << "cell (" << g << ", " << c << ")";
    }
  }
  EXPECT_EQ(a.gene_names(), b.gene_names());
  EXPECT_EQ(a.condition_names(), b.condition_names());
}

TEST(MatrixStoreTest, BinaryRoundtripViaHeapReader) {
  const ExpressionMatrix m = MakeMatrix(7, 5);
  const std::string path = TempPath("store_roundtrip.rgx");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  auto back = ReadBinaryMatrix(path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ExpectSameContents(m, *back);
  std::remove(path.c_str());
}

TEST(MatrixStoreTest, MappedMatrixServesIdenticalPayload) {
  const ExpressionMatrix m = MakeMatrix(11, 4);
  const std::string path = TempPath("store_mapped.rgx");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  auto mapped = MappedMatrix::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  ExpectSameContents(m, *mapped);
  // The mapped payload must be the flat base pointer the miner walks.
  const double* base = mapped->row_data(0);
  for (int g = 0; g < mapped->num_genes(); ++g) {
    EXPECT_EQ(mapped->row_data(g), base + g * mapped->num_conditions());
  }
  std::remove(path.c_str());
}

TEST(MatrixStoreTest, MappedByteAccountingSplitsFromResident) {
  const ExpressionMatrix m = MakeMatrix(16, 8);
  EXPECT_EQ(m.mapped_bytes(), 0);
  EXPECT_GE(m.resident_bytes(),
            static_cast<int64_t>(16 * 8 * sizeof(double)));

  const std::string path = TempPath("store_bytes.rgx");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  auto mapped = MappedMatrix::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  if (mapped->is_mapped()) {
    // Payload bytes live in the mapping, not the heap.
    EXPECT_GE(mapped->mapped_bytes(),
              static_cast<int64_t>(16 * 8 * sizeof(double)));
    EXPECT_LT(mapped->resident_bytes(), mapped->mapped_bytes());
  } else {
    EXPECT_EQ(mapped->mapped_bytes(), 0);
    EXPECT_GE(mapped->resident_bytes(),
              static_cast<int64_t>(16 * 8 * sizeof(double)));
  }
  std::remove(path.c_str());
}

TEST(MatrixStoreTest, NaNsRoundtripVerbatim) {
  ExpressionMatrix m = MakeMatrix(3, 3);
  m(1, 2) = std::numeric_limits<double>::quiet_NaN();
  const std::string path = TempPath("store_nan.rgx");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  auto back = ReadBinaryMatrix(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->HasMissingValues());
  EXPECT_TRUE(std::isnan((*back)(1, 2)));
  EXPECT_EQ((*back)(0, 0), m(0, 0));
  std::remove(path.c_str());
}

TEST(MatrixStoreTest, IsBinaryMatrixFileSniffsMagic) {
  const ExpressionMatrix m = MakeMatrix(2, 2);
  const std::string bin_path = TempPath("store_sniff.rgx");
  ASSERT_TRUE(WriteBinaryMatrix(m, bin_path).ok());
  auto is_bin = IsBinaryMatrixFile(bin_path);
  ASSERT_TRUE(is_bin.ok());
  EXPECT_TRUE(*is_bin);

  const std::string text_path = TempPath("store_sniff.tsv");
  {
    std::FILE* f = std::fopen(text_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("gene\ta\tb\ng1\t1\t2\n", f);
    std::fclose(f);
  }
  auto is_text = IsBinaryMatrixFile(text_path);
  ASSERT_TRUE(is_text.ok());
  EXPECT_FALSE(*is_text);

  // A missing file is an error, not "false".
  EXPECT_FALSE(IsBinaryMatrixFile(TempPath("does_not_exist.rgx")).ok());
  std::remove(bin_path.c_str());
  std::remove(text_path.c_str());
}

TEST(MatrixStoreTest, ExpressionMatrixCopyRebindsBasePointer) {
  const ExpressionMatrix a = MakeMatrix(4, 3);
  ExpressionMatrix b = a;  // copy: b must point at its own payload
  EXPECT_NE(b.row_data(0), a.row_data(0));
  ExpectSameContents(a, b);
  b(0, 0) = -1.0;
  EXPECT_EQ(a(0, 0), 0.25) << "copy must not alias the source payload";

  ExpressionMatrix c = std::move(b);  // move: c adopts, reads stay valid
  EXPECT_EQ(c(0, 0), -1.0);
  EXPECT_EQ(c(3, 2), a(3, 2));

  ExpressionMatrix d(1, 1);
  d = c;  // copy-assign over a different shape
  ExpectSameContents(c, d);
  EXPECT_NE(d.row_data(0), c.row_data(0));
}

TEST(MatrixStoreTest, MappedMatrixMoveKeepsPayloadValid) {
  const ExpressionMatrix m = MakeMatrix(5, 6);
  const std::string path = TempPath("store_move.rgx");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  auto opened = MappedMatrix::Open(path);
  ASSERT_TRUE(opened.ok());
  MappedMatrix a = *std::move(opened);
  const double first = a(0, 0);
  MappedMatrix b = std::move(a);
  EXPECT_EQ(b(0, 0), first);
  ExpectSameContents(m, b);
  MappedMatrix c;
  c = std::move(b);
  ExpectSameContents(m, c);
  std::remove(path.c_str());
}

TEST(MatrixStoreTest, PolymorphicAccessThroughBaseReference) {
  const ExpressionMatrix m = MakeMatrix(3, 4);
  const MatrixStore& store = m;
  EXPECT_EQ(store.num_genes(), 3);
  EXPECT_EQ(store(2, 3), m(2, 3));
  EXPECT_EQ(store.FindGene("gene_1"), 1);
  EXPECT_EQ(store.FindCondition("cond_2"), 2);
  EXPECT_EQ(store.Row(1), m.Row(1));
  const auto [lo, hi] = store.RowRange(0);
  EXPECT_EQ(lo, 0.25);
  EXPECT_EQ(hi, 3.25);
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
