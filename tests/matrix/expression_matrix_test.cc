#include "matrix/expression_matrix.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace regcluster {
namespace matrix {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(ExpressionMatrixTest, DefaultIsEmpty) {
  ExpressionMatrix m;
  EXPECT_EQ(m.num_genes(), 0);
  EXPECT_EQ(m.num_conditions(), 0);
}

TEST(ExpressionMatrixTest, FillConstructor) {
  ExpressionMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.num_genes(), 2);
  EXPECT_EQ(m.num_conditions(), 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
  }
}

TEST(ExpressionMatrixTest, DefaultNames) {
  ExpressionMatrix m(2, 3);
  EXPECT_EQ(m.gene_name(0), "g0");
  EXPECT_EQ(m.gene_name(1), "g1");
  EXPECT_EQ(m.condition_name(2), "c2");
}

TEST(ExpressionMatrixTest, FromRows) {
  auto m = ExpressionMatrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_genes(), 3);
  EXPECT_EQ(m->num_conditions(), 2);
  EXPECT_DOUBLE_EQ((*m)(2, 1), 6);
}

TEST(ExpressionMatrixTest, FromRowsRejectsRagged) {
  EXPECT_FALSE(ExpressionMatrix::FromRows({{1, 2}, {3}}).ok());
}

TEST(ExpressionMatrixTest, FromRowsEmpty) {
  auto m = ExpressionMatrix::FromRows({});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_genes(), 0);
}

TEST(ExpressionMatrixTest, WriteThenRead) {
  ExpressionMatrix m(2, 2);
  m(0, 1) = 42.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(ExpressionMatrixTest, RowCopy) {
  auto m = *ExpressionMatrix::FromRows({{1, 2, 3}});
  EXPECT_EQ(m.Row(0), (std::vector<double>{1, 2, 3}));
}

TEST(ExpressionMatrixTest, RowOnConditionsRespectsOrder) {
  auto m = *ExpressionMatrix::FromRows({{10, 20, 30, 40}});
  EXPECT_EQ(m.RowOnConditions(0, {3, 0, 2}), (std::vector<double>{40, 10, 30}));
}

TEST(ExpressionMatrixTest, SetNamesValidatesSize) {
  ExpressionMatrix m(2, 2);
  EXPECT_TRUE(m.SetGeneNames({"a", "b"}).ok());
  EXPECT_FALSE(m.SetGeneNames({"a"}).ok());
  EXPECT_TRUE(m.SetConditionNames({"x", "y"}).ok());
  EXPECT_FALSE(m.SetConditionNames({"x", "y", "z"}).ok());
  EXPECT_EQ(m.gene_name(1), "b");
}

TEST(ExpressionMatrixTest, FindByName) {
  ExpressionMatrix m(2, 2);
  ASSERT_TRUE(m.SetGeneNames({"YAL001C", "YAL002W"}).ok());
  EXPECT_EQ(m.FindGene("YAL002W"), 1);
  EXPECT_EQ(m.FindGene("nope"), -1);
  EXPECT_EQ(m.FindCondition("c0"), 0);
  EXPECT_EQ(m.FindCondition("zzz"), -1);
}

TEST(ExpressionMatrixTest, RowRange) {
  auto m = *ExpressionMatrix::FromRows({{3, -7, 12, 0}});
  const auto [lo, hi] = m.RowRange(0);
  EXPECT_DOUBLE_EQ(lo, -7);
  EXPECT_DOUBLE_EQ(hi, 12);
}

TEST(ExpressionMatrixTest, RowRangeIgnoresNaN) {
  auto m = *ExpressionMatrix::FromRows({{kNaN, 2, 8, kNaN}});
  const auto [lo, hi] = m.RowRange(0);
  EXPECT_DOUBLE_EQ(lo, 2);
  EXPECT_DOUBLE_EQ(hi, 8);
}

TEST(ExpressionMatrixTest, RowRangeAllNaN) {
  auto m = *ExpressionMatrix::FromRows({{kNaN, kNaN}});
  const auto [lo, hi] = m.RowRange(0);
  EXPECT_DOUBLE_EQ(lo, 0);
  EXPECT_DOUBLE_EQ(hi, 0);
}

TEST(ExpressionMatrixTest, HasMissingValues) {
  auto clean = *ExpressionMatrix::FromRows({{1, 2}});
  EXPECT_FALSE(clean.HasMissingValues());
  auto dirty = *ExpressionMatrix::FromRows({{1, kNaN}});
  EXPECT_TRUE(dirty.HasMissingValues());
}

TEST(ExpressionMatrixTest, SubmatrixValuesAndLabels) {
  auto m = *ExpressionMatrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  ASSERT_TRUE(m.SetGeneNames({"a", "b", "c"}).ok());
  ASSERT_TRUE(m.SetConditionNames({"x", "y", "z"}).ok());
  ExpressionMatrix s = m.Submatrix({2, 0}, {1, 2});
  EXPECT_EQ(s.num_genes(), 2);
  EXPECT_EQ(s.num_conditions(), 2);
  EXPECT_DOUBLE_EQ(s(0, 0), 8);
  EXPECT_DOUBLE_EQ(s(0, 1), 9);
  EXPECT_DOUBLE_EQ(s(1, 0), 2);
  EXPECT_EQ(s.gene_name(0), "c");
  EXPECT_EQ(s.condition_name(1), "z");
}

TEST(ExpressionMatrixTest, RowDataIsContiguous) {
  auto m = *ExpressionMatrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const double* p = m.row_data(1);
  EXPECT_DOUBLE_EQ(p[0], 4);
  EXPECT_DOUBLE_EQ(p[2], 6);
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
