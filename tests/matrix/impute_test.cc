// Tests for the advanced preprocessing: KNN imputation and quantile
// normalization (row-mean imputation is covered in transforms_test.cc).

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "matrix/transforms.h"
#include "util/prng.h"

namespace regcluster {
namespace matrix {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(ImputeKnnTest, CompleteMatrixUnchanged) {
  auto m = *ExpressionMatrix::FromRows({{1, 2}, {3, 4}});
  auto out = ImputeKnn(m, 3);
  ASSERT_TRUE(out.ok());
  for (int g = 0; g < 2; ++g) {
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ((*out)(g, c), m(g, c));
  }
}

TEST(ImputeKnnTest, UsesNearestNeighborValue) {
  // Gene 0 is identical to gene 1 except for the missing cell; gene 2 is
  // far away.  k=1 must copy gene 1's value.
  auto m = *ExpressionMatrix::FromRows({
      {1, 2, kNaN, 4},
      {1, 2, 3, 4},
      {100, 200, 300, 400},
  });
  auto out = ImputeKnn(m, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)(0, 2), 3.0);
}

TEST(ImputeKnnTest, WeightsCloserNeighborsMore) {
  auto m = *ExpressionMatrix::FromRows({
      {0, 0, kNaN},
      {0.1, 0.1, 10},   // close
      {5, 5, 20},       // far
  });
  auto out = ImputeKnn(m, 2);
  ASSERT_TRUE(out.ok());
  const double v = (*out)(0, 2);
  EXPECT_GT(v, 10.0);
  EXPECT_LT(v, 15.0);  // pulled toward the close neighbour's 10
}

TEST(ImputeKnnTest, FallsBackToRowMeanWhenNoNeighborObserves) {
  auto m = *ExpressionMatrix::FromRows({
      {2, 4, kNaN},
      {1, 1, kNaN},
  });
  auto out = ImputeKnn(m, 5);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)(0, 2), 3.0);  // mean of {2, 4}
  EXPECT_DOUBLE_EQ((*out)(1, 2), 1.0);
}

TEST(ImputeKnnTest, ResultIsComplete) {
  util::Prng prng(12);
  ExpressionMatrix m(30, 10);
  for (int g = 0; g < 30; ++g) {
    for (int c = 0; c < 10; ++c) {
      m(g, c) = prng.Bernoulli(0.15) ? kNaN : prng.Uniform(0, 10);
    }
  }
  auto out = ImputeKnn(m, 4);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->HasMissingValues());
  // Observed cells are untouched.
  for (int g = 0; g < 30; ++g) {
    for (int c = 0; c < 10; ++c) {
      if (!std::isnan(m(g, c))) {
        EXPECT_DOUBLE_EQ((*out)(g, c), m(g, c));
      }
    }
  }
}

TEST(ImputeKnnTest, BetterThanRowMeanOnStructuredData) {
  // Rows are affine copies of a common pattern; KNN exploits that, row-mean
  // cannot.
  util::Prng prng(9);
  const std::vector<double> base{0, 3, 1, 7, 2, 9, 4, 6};
  ExpressionMatrix truth(20, 8);
  for (int g = 0; g < 20; ++g) {
    const double a = prng.Uniform(0.5, 2.0);
    const double b = prng.Uniform(-3, 3);
    for (int c = 0; c < 8; ++c) {
      truth(g, c) = a * base[static_cast<size_t>(c)] + b;
    }
  }
  ExpressionMatrix holey = truth;
  // Punch one hole per even row.
  for (int g = 0; g < 20; g += 2) holey(g, g % 8) = kNaN;

  auto knn = ImputeKnn(holey, 3);
  ASSERT_TRUE(knn.ok());
  const ExpressionMatrix rowmean = ImputeRowMean(holey);
  double knn_err = 0, mean_err = 0;
  for (int g = 0; g < 20; g += 2) {
    knn_err += std::fabs((*knn)(g, g % 8) - truth(g, g % 8));
    mean_err += std::fabs(rowmean(g, g % 8) - truth(g, g % 8));
  }
  EXPECT_LT(knn_err, mean_err * 0.5);
}

TEST(ImputeKnnTest, RejectsBadK) {
  auto m = *ExpressionMatrix::FromRows({{1, 2}});
  EXPECT_FALSE(ImputeKnn(m, 0).ok());
}

TEST(QuantileNormalizeTest, ColumnsShareDistribution) {
  auto m = *ExpressionMatrix::FromRows({
      {5, 400},
      {2, 100},
      {3, 200},
      {4, 300},
  });
  auto out = QuantileNormalizeColumns(m);
  ASSERT_TRUE(out.ok());
  // Per-column sorted values must be identical across columns.
  std::vector<double> c0, c1;
  for (int g = 0; g < 4; ++g) {
    c0.push_back((*out)(g, 0));
    c1.push_back((*out)(g, 1));
  }
  std::sort(c0.begin(), c0.end());
  std::sort(c1.begin(), c1.end());
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c0[static_cast<size_t>(i)], c1[static_cast<size_t>(i)]);
  // Ranks preserved within each column.
  EXPECT_GT((*out)(0, 0), (*out)(3, 0));  // 5 was the max of column 0
  EXPECT_GT((*out)(0, 1), (*out)(3, 1));  // 400 was the max of column 1
}

TEST(QuantileNormalizeTest, TargetIsMeanOfSortedColumns) {
  auto m = *ExpressionMatrix::FromRows({
      {1, 10},
      {2, 20},
  });
  auto out = QuantileNormalizeColumns(m);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)(0, 0), 5.5);   // mean(1, 10)
  EXPECT_DOUBLE_EQ((*out)(1, 0), 11.0);  // mean(2, 20)
  EXPECT_DOUBLE_EQ((*out)(0, 1), 5.5);
  EXPECT_DOUBLE_EQ((*out)(1, 1), 11.0);
}

TEST(QuantileNormalizeTest, AlreadyIdenticalColumnsUnchanged) {
  auto m = *ExpressionMatrix::FromRows({{1, 1}, {7, 7}, {3, 3}});
  auto out = QuantileNormalizeColumns(m);
  ASSERT_TRUE(out.ok());
  for (int g = 0; g < 3; ++g) {
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ((*out)(g, c), m(g, c));
  }
}

TEST(QuantileNormalizeTest, RejectsMissingValues) {
  auto m = *ExpressionMatrix::FromRows({{1, kNaN}});
  EXPECT_FALSE(QuantileNormalizeColumns(m).ok());
}

TEST(QuantileNormalizeTest, EmptyMatrixOk) {
  ExpressionMatrix m;
  auto out = QuantileNormalizeColumns(m);
  EXPECT_TRUE(out.ok());
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
