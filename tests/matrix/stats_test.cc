#include "matrix/stats.h"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace regcluster {
namespace matrix {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(GeneStatsTest, Basic) {
  auto m = *ExpressionMatrix::FromRows({{1, 5, 3, kNaN}});
  const SeriesStats s = GeneStats(m, 0);
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.missing, 1);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.stddev, 2);
}

TEST(GeneStatsTest, AllMissing) {
  auto m = *ExpressionMatrix::FromRows({{kNaN, kNaN}});
  const SeriesStats s = GeneStats(m, 0);
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.missing, 2);
}

TEST(ConditionStatsTest, Basic) {
  auto m = *ExpressionMatrix::FromRows({{1, 9}, {3, 9}, {kNaN, 9}});
  const SeriesStats s = ConditionStats(m, 0);
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.missing, 1);
  EXPECT_DOUBLE_EQ(s.mean, 2);
}

TEST(SummarizeMatrixTest, CountsEverything) {
  auto m = *ExpressionMatrix::FromRows({
      {1, 2, 3},       // normal
      {5, 5, 5},       // constant
      {kNaN, 4, 8},    // missing
      {kNaN, kNaN, kNaN},  // all-missing (counts as constant too)
  });
  const MatrixStats s = Summarize(m);
  EXPECT_EQ(s.num_genes, 4);
  EXPECT_EQ(s.num_conditions, 3);
  EXPECT_EQ(s.missing_cells, 4);
  EXPECT_EQ(s.genes_with_missing, 2);
  EXPECT_EQ(s.constant_genes, 2);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 8);
  EXPECT_NEAR(s.mean, (1 + 2 + 3 + 15 + 12) / 8.0, 1e-12);
}

TEST(SummarizeMatrixTest, EmptyMatrix) {
  ExpressionMatrix m;
  const MatrixStats s = Summarize(m);
  EXPECT_EQ(s.num_genes, 0);
  EXPECT_DOUBLE_EQ(s.min, 0);
  EXPECT_DOUBLE_EQ(s.max, 0);
}

TEST(StatsReportTest, ContainsTheSections) {
  auto m = *ExpressionMatrix::FromRows({{1, 2, 3}, {4, 4, 4}});
  ASSERT_TRUE(m.SetGeneNames({"busy", "flat"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteStatsReport(m, out, 1).ok());
  const std::string text = out.str();
  EXPECT_NE(text.find("2 genes x 3 conditions"), std::string::npos);
  EXPECT_NE(text.find("per-condition:"), std::string::npos);
  EXPECT_NE(text.find("flattest 1 genes"), std::string::npos);
  EXPECT_NE(text.find("flat"), std::string::npos);  // the constant gene
  EXPECT_NE(text.find("constant (unminable) genes: 1"), std::string::npos);
}

TEST(StatsReportTest, WorstZeroSkipsSection) {
  auto m = *ExpressionMatrix::FromRows({{1, 2}});
  std::ostringstream out;
  ASSERT_TRUE(WriteStatsReport(m, out, 0).ok());
  EXPECT_EQ(out.str().find("flattest"), std::string::npos);
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
