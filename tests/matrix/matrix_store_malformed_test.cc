// Hardened binary-format error paths, mirroring the text reader's
// malformed-input suite (matrix_io_malformed_test.cc): every structural
// violation of the 64-byte header or the label/values sections must come
// back as a kCorruption Status naming the offending field -- never a crash,
// never a silently wrong matrix.  Both readers (MappedMatrix::Open and
// ReadBinaryMatrix) share the validation, so each corruption is checked
// through both.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gmock/gmock.h"
#include "gtest/gtest.h"
#include "matrix/expression_matrix.h"
#include "matrix/store.h"
#include "util/status.h"

namespace regcluster {
namespace matrix {
namespace {

using ::testing::AllOf;
using ::testing::HasSubstr;

// Header field offsets of the version-1 layout (see store.h).
constexpr size_t kOffVersion = 8;
constexpr size_t kOffEndian = 12;
constexpr size_t kOffRows = 16;
constexpr size_t kOffValuesOffset = 24;
constexpr size_t kOffNamesOffset = 32;
constexpr size_t kOffFileBytes = 48;

std::string TempPath(const std::string& name) {
  // Per-process: ctest runs each discovered test as its own filtered
  // process; concurrent instances (ctest -j) all build ValidFileBytes()
  // through the same seed filename and must not clobber each other.
  return ::testing::TempDir() + "/" +
         std::to_string(static_cast<long>(getpid())) + "_" + name;
}

/// Bytes of a small valid binary matrix file.
std::vector<char> ValidFileBytes() {
  ExpressionMatrix m(3, 4);
  for (int g = 0; g < 3; ++g) {
    for (int c = 0; c < 4; ++c) m(g, c) = g * 10.0 + c;
  }
  const std::string path = TempPath("store_malformed_seed.rgx");
  EXPECT_TRUE(WriteBinaryMatrix(m, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::remove(path.c_str());
  EXPECT_GT(bytes.size(), 64u);
  return bytes;
}

std::string WriteBytes(const std::vector<char>& bytes,
                       const std::string& name) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

void Put32(std::vector<char>* bytes, size_t off, uint32_t v) {
  std::memcpy(bytes->data() + off, &v, sizeof(v));
}

void Put64(std::vector<char>* bytes, size_t off, uint64_t v) {
  std::memcpy(bytes->data() + off, &v, sizeof(v));
}

uint64_t Get64(const std::vector<char>& bytes, size_t off) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

/// Expects both readers to reject the file with kCorruption carrying
/// `substr`.
void ExpectCorruption(const std::string& path, const std::string& substr) {
  auto mapped = MappedMatrix::Open(path);
  ASSERT_FALSE(mapped.ok()) << "MappedMatrix::Open accepted " << path;
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(mapped.status().message(), HasSubstr(substr));

  auto heap = ReadBinaryMatrix(path);
  ASSERT_FALSE(heap.ok()) << "ReadBinaryMatrix accepted " << path;
  EXPECT_EQ(heap.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(heap.status().message(), HasSubstr(substr));
}

TEST(MatrixStoreMalformedTest, ShortFileIsTruncatedHeader) {
  auto bytes = ValidFileBytes();
  bytes.resize(17);
  const std::string path = WriteBytes(bytes, "short.rgx");
  ExpectCorruption(path, "truncated header");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, EmptyFileIsTruncatedHeader) {
  const std::string path = WriteBytes({}, "empty.rgx");
  ExpectCorruption(path, "truncated header");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, BadMagicRejected) {
  auto bytes = ValidFileBytes();
  bytes[0] = 'X';
  const std::string path = WriteBytes(bytes, "badmagic.rgx");
  ExpectCorruption(path, "bad magic");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, UnsupportedVersionNamesBothVersions) {
  auto bytes = ValidFileBytes();
  Put32(&bytes, kOffVersion, 7);
  const std::string path = WriteBytes(bytes, "badversion.rgx");
  ExpectCorruption(path, "unsupported binary matrix version 7");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, OppositeEndianFileIsDistinctError) {
  auto bytes = ValidFileBytes();
  // The byte-swapped tag is what an opposite-endian writer would produce.
  Put32(&bytes, kOffEndian, 0x04030201u);
  const std::string path = WriteBytes(bytes, "endian.rgx");
  ExpectCorruption(path, "endianness mismatch");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, GarbageEndianTagRejected) {
  auto bytes = ValidFileBytes();
  Put32(&bytes, kOffEndian, 0xdeadbeefu);
  const std::string path = WriteBytes(bytes, "badendian.rgx");
  ExpectCorruption(path, "bad endianness tag");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, ImplausibleDimensionsRejected) {
  auto bytes = ValidFileBytes();
  Put32(&bytes, kOffRows, 0xfffffff0u);
  const std::string path = WriteBytes(bytes, "huge.rgx");
  ExpectCorruption(path, "implausible dimensions");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, TruncatedFileFailsSizeCheck) {
  auto bytes = ValidFileBytes();
  bytes.resize(bytes.size() - 8);  // still > header, payload cut short
  const std::string path = WriteBytes(bytes, "cut.rgx");
  ExpectCorruption(path, "file size mismatch");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, OverAppendedFileFailsSizeCheck) {
  auto bytes = ValidFileBytes();
  bytes.push_back('\0');
  const std::string path = WriteBytes(bytes, "overappend.rgx");
  ExpectCorruption(path, "file size mismatch");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, LabelSectionOutOfBoundsRejected) {
  auto bytes = ValidFileBytes();
  Put64(&bytes, kOffNamesOffset, bytes.size() + 1024);
  const std::string path = WriteBytes(bytes, "labelbounds.rgx");
  ExpectCorruption(path, "label section out of file bounds");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, MisalignedValuesOffsetRejected) {
  auto bytes = ValidFileBytes();
  const uint64_t values_offset = Get64(bytes, kOffValuesOffset);
  Put64(&bytes, kOffValuesOffset, values_offset + 3);
  const std::string path = WriteBytes(bytes, "misaligned.rgx");
  ExpectCorruption(path, "not 8-byte aligned");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, ValuesSectionPastEndRejected) {
  auto bytes = ValidFileBytes();
  const uint64_t values_offset = Get64(bytes, kOffValuesOffset);
  Put64(&bytes, kOffValuesOffset, values_offset + 4096);
  const std::string path = WriteBytes(bytes, "valuesbounds.rgx");
  ExpectCorruption(path, "truncated values section");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, LabelOverrunInsideSectionRejected) {
  // Corrupt the first gene-name length to claim more bytes than the label
  // section holds; the header itself stays consistent.
  auto bytes = ValidFileBytes();
  const uint64_t names_offset = Get64(bytes, kOffNamesOffset);
  Put32(&bytes, static_cast<size_t>(names_offset), 0x00ffffffu);
  const std::string path = WriteBytes(bytes, "labeloverrun.rgx");
  ExpectCorruption(path, "label section overrun");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, FileSizeFieldLyingAboutItselfRejected) {
  auto bytes = ValidFileBytes();
  Put64(&bytes, kOffFileBytes, Get64(bytes, kOffFileBytes) + 64);
  const std::string path = WriteBytes(bytes, "lyingsize.rgx");
  ExpectCorruption(path, "file size mismatch");
  std::remove(path.c_str());
}

TEST(MatrixStoreMalformedTest, MissingFileIsIoErrorNotCorruption) {
  auto mapped = MappedMatrix::Open(TempPath("nope.rgx"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kIoError);
  EXPECT_THAT(mapped.status().message(),
              AllOf(HasSubstr("cannot open"), HasSubstr("nope.rgx")));
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
