// Property sweep: random matrices round-trip bit-comparably through every
// supported text format combination.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "matrix/matrix_io.h"
#include "util/prng.h"

namespace regcluster {
namespace matrix {
namespace {

struct FormatParams {
  char delimiter;
  bool header;
  bool names;
};

class RoundTripSweep : public ::testing::TestWithParam<FormatParams> {};

TEST_P(RoundTripSweep, RandomMatricesSurvive) {
  const FormatParams& p = GetParam();
  TextFormat fmt;
  fmt.delimiter = p.delimiter;
  fmt.has_header = p.header;
  fmt.has_gene_names = p.names;

  util::Prng prng(1000 + static_cast<uint64_t>(p.delimiter) +
                  2 * p.header + 4 * p.names);
  for (int trial = 0; trial < 10; ++trial) {
    const int rows = static_cast<int>(prng.UniformInt(1, 12));
    const int cols = static_cast<int>(prng.UniformInt(1, 9));
    ExpressionMatrix m(rows, cols);
    for (int g = 0; g < rows; ++g) {
      for (int c = 0; c < cols; ++c) {
        if (prng.Bernoulli(0.1)) {
          m(g, c) = std::numeric_limits<double>::quiet_NaN();
        } else if (prng.Bernoulli(0.2)) {
          m(g, c) = prng.UniformInt(-5, 5);  // integers / zeros
        } else if (prng.Bernoulli(0.1)) {
          m(g, c) = prng.Uniform(-1, 1) * 1e-7;  // tiny magnitudes
        } else {
          m(g, c) = prng.Uniform(-1000, 1000);
        }
      }
    }

    std::ostringstream out;
    ASSERT_TRUE(WriteMatrix(m, out, fmt).ok());
    auto back = ReadMatrixFromString(out.str(), fmt);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back->num_genes(), rows);
    ASSERT_EQ(back->num_conditions(), cols);
    for (int g = 0; g < rows; ++g) {
      for (int c = 0; c < cols; ++c) {
        if (std::isnan(m(g, c))) {
          ASSERT_TRUE(std::isnan((*back)(g, c)));
        } else {
          // %.10g loses below ~1e-10 relative precision.
          ASSERT_NEAR((*back)(g, c), m(g, c),
                      std::fabs(m(g, c)) * 1e-9 + 1e-12);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, RoundTripSweep,
    ::testing::Values(FormatParams{'\t', true, true},
                      FormatParams{'\t', true, false},
                      FormatParams{'\t', false, true},
                      FormatParams{'\t', false, false},
                      FormatParams{',', true, true},
                      FormatParams{',', false, false},
                      FormatParams{';', true, true}));

}  // namespace
}  // namespace matrix
}  // namespace regcluster
