#include "matrix/transforms.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace regcluster {
namespace matrix {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(TransformsTest, LogTransformValues) {
  auto m = *ExpressionMatrix::FromRows({{1.0, std::exp(1.0), 10.0}});
  auto t = LogTransform(m);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR((*t)(0, 0), 0.0, 1e-12);
  EXPECT_NEAR((*t)(0, 1), 1.0, 1e-12);
  EXPECT_NEAR((*t)(0, 2), std::log(10.0), 1e-12);
}

TEST(TransformsTest, LogTransformRejectsNonPositive) {
  EXPECT_FALSE(LogTransform(*ExpressionMatrix::FromRows({{1.0, 0.0}})).ok());
  EXPECT_FALSE(LogTransform(*ExpressionMatrix::FromRows({{-3.0}})).ok());
}

TEST(TransformsTest, LogTransformSkipsNaN) {
  auto t = LogTransform(*ExpressionMatrix::FromRows({{kNaN, 2.0}}));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(std::isnan((*t)(0, 0)));
}

TEST(TransformsTest, ExpTransformInvertsLog) {
  auto m = *ExpressionMatrix::FromRows({{0.5, 2.0, -1.0}});
  auto e = ExpTransform(m);
  ASSERT_TRUE(e.ok());
  auto back = LogTransform(*e);
  ASSERT_TRUE(back.ok());
  for (int j = 0; j < 3; ++j) EXPECT_NEAR((*back)(0, j), m(0, j), 1e-12);
}

TEST(TransformsTest, ExpTransformOverflowRejected) {
  EXPECT_FALSE(ExpTransform(*ExpressionMatrix::FromRows({{1e10}})).ok());
}

TEST(TransformsTest, PaperEquation1_ScalingBecomesShifting) {
  // d_i = s1 * d_j  =>  log d_i = log d_j + log s1 (Eq. 1).
  auto m = *ExpressionMatrix::FromRows({{2, 4, 8}, {6, 12, 24}});  // s1 = 3
  auto t = LogTransform(m);
  ASSERT_TRUE(t.ok());
  const double shift0 = (*t)(1, 0) - (*t)(0, 0);
  for (int j = 1; j < 3; ++j) {
    EXPECT_NEAR((*t)(1, j) - (*t)(0, j), shift0, 1e-12);
  }
  EXPECT_NEAR(shift0, std::log(3.0), 1e-12);
}

TEST(TransformsTest, PaperEquation2_ShiftingBecomesScaling) {
  // d_i = d_j + s2  =>  e^{d_i} = e^{d_j} * e^{s2} (Eq. 2).
  auto m = *ExpressionMatrix::FromRows({{1, 2, 3}, {3, 4, 5}});  // s2 = 2
  auto e = ExpTransform(m);
  ASSERT_TRUE(e.ok());
  const double ratio0 = (*e)(1, 0) / (*e)(0, 0);
  for (int j = 1; j < 3; ++j) {
    EXPECT_NEAR((*e)(1, j) / (*e)(0, j), ratio0, 1e-12);
  }
  EXPECT_NEAR(ratio0, std::exp(2.0), 1e-12);
}

TEST(TransformsTest, ShiftAndScale) {
  auto m = *ExpressionMatrix::FromRows({{1, 2}});
  EXPECT_DOUBLE_EQ(Shift(m, 5.0)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(Scale(m, -2.0)(0, 0), -2.0);
}

TEST(TransformsTest, ZScoreRows) {
  auto m = *ExpressionMatrix::FromRows({{1, 2, 3}});
  ExpressionMatrix z = ZScoreRows(m);
  EXPECT_NEAR(z(0, 0) + z(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(z(0, 1), 0.0, 1e-12);
  EXPECT_LT(z(0, 0), 0.0);
}

TEST(TransformsTest, ZScoreConstantRowBecomesZero) {
  auto m = *ExpressionMatrix::FromRows({{4, 4, 4}});
  ExpressionMatrix z = ZScoreRows(m);
  for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(z(0, j), 0.0);
}

TEST(TransformsTest, ImputeRowMean) {
  auto m = *ExpressionMatrix::FromRows({{1, kNaN, 3}});
  ExpressionMatrix imp = ImputeRowMean(m);
  EXPECT_DOUBLE_EQ(imp(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(imp(0, 0), 1.0);
  EXPECT_FALSE(imp.HasMissingValues());
}

TEST(TransformsTest, ImputeAllNaNRowBecomesZero) {
  auto m = *ExpressionMatrix::FromRows({{kNaN, kNaN}});
  ExpressionMatrix imp = ImputeRowMean(m);
  EXPECT_DOUBLE_EQ(imp(0, 0), 0.0);
}

TEST(TransformsTest, CountMissing) {
  auto m = *ExpressionMatrix::FromRows({{kNaN, 1}, {kNaN, kNaN}});
  EXPECT_EQ(CountMissing(m), 3);
  EXPECT_EQ(CountMissing(ImputeRowMean(m)), 0);
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
