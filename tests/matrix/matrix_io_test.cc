#include "matrix/matrix_io.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

namespace regcluster {
namespace matrix {
namespace {

TEST(MatrixIoTest, ParseTsvWithHeaderAndNames) {
  const std::string text =
      "gene\tcold\theat\tacid\n"
      "g1\t1.5\t-2\t0\n"
      "g2\t3\t4\t5\n";
  auto m = ReadMatrixFromString(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->num_genes(), 2);
  EXPECT_EQ(m->num_conditions(), 3);
  EXPECT_EQ(m->gene_name(0), "g1");
  EXPECT_EQ(m->condition_name(1), "heat");
  EXPECT_DOUBLE_EQ((*m)(0, 1), -2.0);
}

TEST(MatrixIoTest, ParseCsv) {
  TextFormat fmt;
  fmt.delimiter = ',';
  auto m = ReadMatrixFromString("gene,a,b\nx,1,2\n", fmt);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 1), 2.0);
}

TEST(MatrixIoTest, ParseWithoutHeaderOrNames) {
  TextFormat fmt;
  fmt.has_header = false;
  fmt.has_gene_names = false;
  auto m = ReadMatrixFromString("1\t2\n3\t4\n", fmt);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_genes(), 2);
  EXPECT_EQ(m->num_conditions(), 2);
  EXPECT_EQ(m->gene_name(0), "g0");  // auto-generated
}

TEST(MatrixIoTest, MissingValuesBecomeNaN) {
  auto m = ReadMatrixFromString("gene\ta\tb\tc\ng\tNA\t\t1\n");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(std::isnan((*m)(0, 0)));
  EXPECT_TRUE(std::isnan((*m)(0, 1)));
  EXPECT_DOUBLE_EQ((*m)(0, 2), 1.0);
}

TEST(MatrixIoTest, SkipsCommentsAndBlankLines) {
  auto m = ReadMatrixFromString(
      "# yeast benchmark\n\ngene\ta\n# comment\ng1\t5\n\n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_genes(), 1);
  EXPECT_DOUBLE_EQ((*m)(0, 0), 5.0);
}

TEST(MatrixIoTest, HandlesCrlf) {
  auto m = ReadMatrixFromString("gene\ta\r\ng1\t5\r\n");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 0), 5.0);
}

TEST(MatrixIoTest, RejectsRaggedRows) {
  auto m = ReadMatrixFromString("gene\ta\tb\ng1\t1\t2\ng2\t3\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
}

TEST(MatrixIoTest, RejectsNonNumericField) {
  auto m = ReadMatrixFromString("gene\ta\ng1\tbogus\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
}

TEST(MatrixIoTest, RejectsHeaderWidthMismatch) {
  auto m = ReadMatrixFromString("gene\ta\tb\tc\ng1\t1\t2\n");
  EXPECT_FALSE(m.ok());
}

TEST(MatrixIoTest, ChurchLabStyleAnnotationsSkipped) {
  // The arep.med.harvard.edu distribution format: ORF, NAME, GWEIGHT
  // columns and an EWEIGHT row before the data.
  const std::string text =
      "ORF\tNAME\tGWEIGHT\tcdc15_10\tcdc15_30\tcdc15_50\n"
      "EWEIGHT\t\t\t1\t1\t1\n"
      "YAL001C\tTFC3\t1\t0.15\t-0.22\t0.07\n"
      "YAL002W\tVPS8\t1\t-0.4\t0.12\tNA\n";
  TextFormat fmt;
  fmt.skip_annotation_columns = 2;
  fmt.skip_leading_rows = 1;
  auto m = ReadMatrixFromString(text, fmt);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->num_genes(), 2);
  EXPECT_EQ(m->num_conditions(), 3);
  EXPECT_EQ(m->gene_name(0), "YAL001C");
  EXPECT_EQ(m->condition_name(0), "cdc15_10");
  EXPECT_DOUBLE_EQ((*m)(0, 1), -0.22);
  EXPECT_TRUE(std::isnan((*m)(1, 2)));
}

TEST(MatrixIoTest, SkipCountsValidated) {
  TextFormat fmt;
  fmt.skip_annotation_columns = -1;
  EXPECT_FALSE(ReadMatrixFromString("gene\ta\ng\t1\n", fmt).ok());
  fmt = TextFormat();
  fmt.skip_annotation_columns = 5;  // wider than the rows
  EXPECT_FALSE(ReadMatrixFromString("gene\ta\ng\t1\n", fmt).ok());
}

TEST(MatrixIoTest, RoundTripThroughStream) {
  auto m = ExpressionMatrix::FromRows({{1.25, -3}, {0, 42}});
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->SetGeneNames({"alpha", "beta"}).ok());
  ASSERT_TRUE(m->SetConditionNames({"t0", "t1"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteMatrix(*m, out).ok());
  auto back = ReadMatrixFromString(out.str());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_genes(), 2);
  EXPECT_EQ(back->gene_name(1), "beta");
  EXPECT_EQ(back->condition_name(0), "t0");
  EXPECT_DOUBLE_EQ((*back)(0, 0), 1.25);
  EXPECT_DOUBLE_EQ((*back)(1, 1), 42.0);
}

TEST(MatrixIoTest, RoundTripPreservesNaN) {
  ExpressionMatrix m(1, 2);
  m(0, 1) = std::numeric_limits<double>::quiet_NaN();
  std::ostringstream out;
  ASSERT_TRUE(WriteMatrix(m, out).ok());
  EXPECT_NE(out.str().find("NA"), std::string::npos);
  auto back = ReadMatrixFromString(out.str());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::isnan((*back)(0, 1)));
}

TEST(MatrixIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/regcluster_io_test.tsv";
  auto m = ExpressionMatrix::FromRows({{7, 8, 9}});
  ASSERT_TRUE(SaveMatrix(*m, path).ok());
  auto back = LoadMatrix(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back)(0, 2), 9.0);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, LoadMissingFileFails) {
  auto m = LoadMatrix("/nonexistent/path/to/matrix.tsv");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
