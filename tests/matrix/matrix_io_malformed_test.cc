// Hardened matrix_io error paths: every parse failure over a corpus of
// broken TSVs must come back as a Status (never a crash or a silently
// truncated matrix) whose message pinpoints the problem with 1-based
// line/column coordinates.

#include <string>

#include "gmock/gmock.h"
#include "gtest/gtest.h"
#include "matrix/matrix_io.h"
#include "util/status.h"

namespace regcluster {
namespace matrix {
namespace {

using ::testing::AllOf;
using ::testing::HasSubstr;

TEST(MatrixIoMalformedTest, RaggedRowReportsLineAndWidths) {
  auto m = ReadMatrixFromString("gene\ta\tb\ng1\t1\t2\ng2\t3\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(),
              AllOf(HasSubstr("line 3"), HasSubstr("expected 3 fields"),
                    HasSubstr("got 2")));
}

TEST(MatrixIoMalformedTest, RaggedRowTooWideAlsoRejected) {
  auto m = ReadMatrixFromString("gene\ta\ng1\t1\ng2\t2\t3\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(), HasSubstr("line 3"));
}

TEST(MatrixIoMalformedTest, NonNumericFieldReportsOneBasedColumn) {
  // "bogus" sits on line 2 and is the 2nd field of its line (after the gene
  // label), so the report must say line 2, column 2.
  auto m = ReadMatrixFromString("gene\ta\tb\ng1\t1\tbogus\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(),
              AllOf(HasSubstr("line 2"), HasSubstr("column 3")));
}

TEST(MatrixIoMalformedTest, NonNumericFirstDataColumn) {
  TextFormat fmt;
  fmt.has_header = false;
  fmt.has_gene_names = false;
  auto m = ReadMatrixFromString("1\t2\nx\t4\n", fmt);
  ASSERT_FALSE(m.ok());
  EXPECT_THAT(m.status().message(),
              AllOf(HasSubstr("line 2"), HasSubstr("column 1")));
}

TEST(MatrixIoMalformedTest, CommentAndBlankLinesDoNotShiftLineNumbers) {
  // The bad value lives on physical line 5; blank/comment lines before it
  // must still be counted.
  auto m = ReadMatrixFromString("gene\ta\n\n# note\ng1\t1\ng2\tNaNarama\n");
  ASSERT_FALSE(m.ok());
  EXPECT_THAT(m.status().message(),
              AllOf(HasSubstr("line 5"), HasSubstr("column 2")));
}

TEST(MatrixIoMalformedTest, DuplicateGeneLabelReportsBothLines) {
  auto m = ReadMatrixFromString("gene\ta\ng1\t1\ng2\t2\ng1\t3\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(),
              AllOf(HasSubstr("line 4"), HasSubstr("duplicate gene label"),
                    HasSubstr("\"g1\""), HasSubstr("line 2")));
}

TEST(MatrixIoMalformedTest, DuplicateLabelsAllowedWithoutGeneNameColumn) {
  // Without a gene-name column there are no labels to collide.
  TextFormat fmt;
  fmt.has_header = false;
  fmt.has_gene_names = false;
  auto m = ReadMatrixFromString("1\t2\n1\t2\n", fmt);
  ASSERT_TRUE(m.ok()) << m.status().message();
  EXPECT_EQ(m->num_genes(), 2);
}

TEST(MatrixIoMalformedTest, EmptyInputIsCorruptionNotCrash) {
  auto m = ReadMatrixFromString("");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(), HasSubstr("no data rows"));
}

TEST(MatrixIoMalformedTest, HeaderOnlyInputIsCorruption) {
  auto m = ReadMatrixFromString("gene\ta\tb\n");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(), HasSubstr("no data rows"));
}

TEST(MatrixIoMalformedTest, CommentsOnlyInputIsCorruption) {
  auto m = ReadMatrixFromString("# a\n# b\n\n");
  ASSERT_FALSE(m.ok());
  EXPECT_THAT(m.status().message(), HasSubstr("no data rows"));
}

TEST(MatrixIoMalformedTest, HeaderNarrowerThanAnnotationColumns) {
  TextFormat fmt;
  fmt.skip_annotation_columns = 3;
  auto m = ReadMatrixFromString("gene\ta\ng1\tx\ty\tz\t1\n", fmt);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), util::StatusCode::kCorruption);
  EXPECT_THAT(m.status().message(), HasSubstr("line 1"));
}

TEST(MatrixIoMalformedTest, MissingValueTokensStillAccepted) {
  // NA / NaN / ? / empty are missing-value tokens, not parse failures; the
  // hardened paths must not over-reject them.
  auto m = ReadMatrixFromString("gene\ta\tb\tc\td\ng1\tNA\tNaN\t?\t\n");
  ASSERT_TRUE(m.ok()) << m.status().message();
  EXPECT_TRUE(m->HasMissingValues());
}

}  // namespace
}  // namespace matrix
}  // namespace regcluster
