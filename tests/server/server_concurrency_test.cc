// Concurrency battery for the mining service (run under TSan in CI):
//
//  * N client threads interleaving mines and sweeps over the same and
//    different matrices get responses byte-identical to a solo serial
//    Mine() / solo sweep of the same request, at any interleaving;
//  * the resource-cache hit/miss counters are a pure function of the
//    request order (builds happen inside the cache's critical section);
//  * eviction under load never invalidates a pinned handle: an in-flight
//    mine holding a SharedGammaModel keeps mining correctly after its
//    cache entry is evicted;
//  * admission control sheds with structured, retryable statuses
//    (shed_memory / shed_queue) instead of blocking forever or dying.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/threshold.h"
#include "io/checkpoint.h"
#include "io/json_export.h"
#include "matrix/expression_matrix.h"
#include "matrix/matrix_io.h"
#include "matrix/store.h"
#include "server/resource_cache.h"
#include "server/service.h"
#include "synth/generator.h"

namespace regcluster {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// Fixtures: two synthetic matrices saved as text, loaded back for the
// reference mines so the service (which loads from the same files) sees
// bit-identical cell values.

struct TestMatrix {
  std::string path;
  matrix::ExpressionMatrix data;  // loaded from `path`, not the generator
};

TestMatrix MakeMatrix(const std::string& name, int genes, int conditions,
                      uint64_t seed) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = genes;
  cfg.num_conditions = conditions;
  cfg.num_clusters = 4;
  cfg.avg_cluster_genes_fraction = 0.06;
  cfg.seed = seed;
  auto ds = synth::GenerateSynthetic(cfg);
  EXPECT_TRUE(ds.ok());
  TestMatrix m;
  // Per-process filename: ctest runs each discovered test as its own
  // filtered process, and concurrent instances (ctest -j) must not
  // overwrite each other's matrix between a process's LoadMatrix and its
  // service's read of the same path.
  m.path = ::testing::TempDir() + std::to_string(static_cast<long>(getpid())) +
           "_" + name;
  EXPECT_TRUE(matrix::SaveMatrix(ds->data, m.path).ok());
  auto loaded = matrix::LoadMatrix(m.path);
  EXPECT_TRUE(loaded.ok());
  m.data = *std::move(loaded);
  return m;
}

const TestMatrix& MatrixA() {
  static const TestMatrix* m =
      new TestMatrix(MakeMatrix("conc_a.tsv", 150, 14, 515));
  return *m;
}

const TestMatrix& MatrixB() {
  static const TestMatrix* m =
      new TestMatrix(MakeMatrix("conc_b.tsv", 120, 12, 916));
  return *m;
}

// One mine request variant.  Numeric fields are kept as the literal strings
// embedded in the JSON body, so the reference options parse the exact same
// doubles the service does.
struct Variant {
  const TestMatrix* matrix;
  int ming;
  int minc;
  const char* gamma;
  const char* epsilon;
};

std::string MineBodyJson(const Variant& v) {
  std::ostringstream body;
  body << "{\"matrix\":\"" << v.matrix->path << "\",\"ming\":" << v.ming
       << ",\"minc\":" << v.minc << ",\"gamma\":" << v.gamma
       << ",\"epsilon\":" << v.epsilon
       << ",\"collect_stats\":true,\"deterministic_output\":true}";
  return body.str();
}

core::MinerOptions VariantOptions(const Variant& v) {
  core::MinerOptions opts;
  opts.min_genes = v.ming;
  opts.min_conditions = v.minc;
  opts.gamma = std::stod(v.gamma);
  opts.epsilon = std::stod(v.epsilon);
  opts.collect_stats = true;
  return opts;
}

// The contract's reference: one solo, serial Mine() of the variant,
// rendered exactly like the service renders responses.
std::string SoloMineBody(const Variant& v) {
  core::MinerOptions opts = VariantOptions(v);
  opts.num_threads = 1;
  core::GammaSpec spec;
  spec.policy = opts.gamma_policy;
  spec.gamma = opts.gamma;
  opts.shared_model = core::SharedGammaModel::Build(
      v.matrix->data, spec, opts.min_conditions);
  core::RegClusterMiner miner(v.matrix->data, opts);
  auto clusters = miner.Mine();
  EXPECT_TRUE(clusters.ok()) << clusters.status().ToString();
  core::MinerStats stats = miner.stats();
  core::MineOutcome outcome = miner.outcome();
  io::ZeroVolatileMineFields(&stats, &outcome);
  std::ostringstream doc;
  EXPECT_TRUE(io::WriteClustersJson(*clusters, &v.matrix->data, &outcome,
                                    &stats, doc)
                  .ok());
  return doc.str();
}

// ---------------------------------------------------------------------------

TEST(ServerConcurrency, InterleavedMinesMatchSoloMineByteForByte) {
  const std::vector<Variant> variants = {
      {&MatrixA(), 5, 4, "0.1", "0.05"},
      {&MatrixA(), 6, 5, "0.15", "0.1"},
      {&MatrixB(), 5, 4, "0.1", "0.05"},
  };
  std::vector<std::string> expected;
  for (const Variant& v : variants) expected.push_back(SoloMineBody(v));

  MiningService::Options options;
  options.num_threads = 3;  // shared phase-A pool
  options.max_active = 3;
  options.max_queued = 64;
  MiningService service(options);

  constexpr int kThreads = 6;
  constexpr int kIterations = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t which = (t + i) % variants.size();
        const std::string body = MineBodyJson(variants[which]);
        // Odd threads go through the binary framing's dispatch, even
        // threads through HTTP; both must produce the same bytes.
        ServiceResponse r;
        if (t % 2 == 0) {
          r = service.HandleHttp("POST", "/mine", body);
        } else {
          r = service.HandleFrame("{\"op\":\"mine\"," + body.substr(1));
        }
        if (r.http_status != 200 || r.body != expected[which]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerConcurrency, InterleavedSweepsMatchSoloServiceSweep) {
  const std::string sweep_body =
      "{\"matrix\":\"" + MatrixA().path +
      "\",\"ming\":5,\"epsilon\":0.05,"
      "\"spec\":\"gamma=0.1;0.15,minc=4;5\","
      "\"collect_stats\":true,\"deterministic_output\":true}";

  // Reference: a fresh, serial, single-request service.
  std::string expected;
  {
    MiningService solo(MiningService::Options{});
    const ServiceResponse r = solo.HandleHttp("POST", "/sweep", sweep_body);
    ASSERT_EQ(r.http_status, 200) << r.body;
    expected = r.body;
  }
  ASSERT_NE(expected.find("\"runs_total\": 4"), std::string::npos)
      << expected.substr(0, 400);

  const Variant mine_variant{&MatrixA(), 5, 4, "0.1", "0.05"};
  const std::string mine_expected = SoloMineBody(mine_variant);
  const std::string mine_body = MineBodyJson(mine_variant);

  MiningService::Options options;
  options.num_threads = 2;
  options.max_active = 4;
  options.max_queued = 64;
  MiningService service(options);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 2; ++i) {
        if (t % 2 == 0) {
          const ServiceResponse r =
              service.HandleHttp("POST", "/sweep", sweep_body);
          if (r.http_status != 200 || r.body != expected) failures.fetch_add(1);
        } else {
          const ServiceResponse r =
              service.HandleHttp("POST", "/mine", mine_body);
          if (r.http_status != 200 || r.body != mine_expected) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerConcurrency, CacheCountersAreAPureFunctionOfRequestOrder) {
  MiningService service(MiningService::Options{});
  auto mine = [&](const Variant& v) {
    const ServiceResponse r =
        service.HandleHttp("POST", "/mine", MineBodyJson(v));
    ASSERT_EQ(r.http_status, 200) << r.body;
  };
  auto expect_stats = [&](int64_t matrix_hits, int64_t matrix_misses,
                          int64_t model_hits, int64_t model_misses,
                          int64_t evictions) {
    const ResourceCache::Stats s = service.cache_stats();
    EXPECT_EQ(s.matrix_hits, matrix_hits);
    EXPECT_EQ(s.matrix_misses, matrix_misses);
    EXPECT_EQ(s.model_hits, model_hits);
    EXPECT_EQ(s.model_misses, model_misses);
    EXPECT_EQ(s.evictions, evictions);
  };

  // Cold: both levels miss.
  mine({&MatrixA(), 5, 4, "0.1", "0.05"});
  expect_stats(0, 1, 0, 1, 0);
  // Identical repeat: both levels hit.
  mine({&MatrixA(), 5, 4, "0.1", "0.05"});
  expect_stats(1, 1, 1, 1, 0);
  // New gamma: matrix hits, model misses.
  mine({&MatrixA(), 5, 4, "0.15", "0.05"});
  expect_stats(2, 1, 1, 2, 0);
  // Same gamma, larger MinC than the ceiling: the entry is replaced --
  // a miss plus an eviction, never a silently-clamped wrong answer.
  mine({&MatrixA(), 5, 6, "0.1", "0.05"});
  expect_stats(3, 1, 1, 3, 1);
  // Smaller MinC under the upgraded ceiling: hit (clamping is exact).
  mine({&MatrixA(), 5, 4, "0.1", "0.05"});
  expect_stats(4, 1, 2, 3, 1);
  // Different matrix: cold again.
  mine({&MatrixB(), 5, 4, "0.1", "0.05"});
  expect_stats(4, 2, 2, 4, 1);

  // The hits counter the daemon exports is exactly their sum.
  const ServiceResponse metrics = service.HandleHttp("GET", "/metrics", "");
  EXPECT_NE(metrics.body.find("regcluster_server_cache_hits 6"),
            std::string::npos)
      << metrics.body;
}

TEST(ServerConcurrency, EvictionUnderLoadNeverInvalidatesPinnedHandles) {
  ResourceCache::Options copts;
  copts.byte_budget = 1;  // everything but the most recent entry evicts
  ResourceCache cache(copts);

  bool hit = false;
  auto handle = cache.GetMatrix(MatrixA().path, &hit);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_FALSE(hit);

  core::GammaSpec spec;
  spec.gamma = 0.1;
  auto model = cache.GetModel(*handle, spec, 4);
  ASSERT_TRUE(model.ok());

  // A thrasher loads the other matrix and its models in a loop, evicting
  // everything the pinned mine below depends on, repeatedly.
  std::atomic<bool> stop{false};
  std::thread thrasher([&] {
    while (!stop.load()) {
      auto h = cache.GetMatrix(MatrixB().path);
      ASSERT_TRUE(h.ok());
      core::GammaSpec s;
      s.gamma = 0.15;
      ASSERT_TRUE(cache.GetModel(*h, s, 5).ok());
    }
  });

  // The pinned handles keep mining correctly while their cache entries
  // come and go under them.
  core::MinerOptions opts;
  opts.min_genes = 5;
  opts.min_conditions = 4;
  opts.gamma = 0.1;
  opts.epsilon = 0.05;
  const auto reference =
      core::RegClusterMiner(MatrixA().data, opts).Mine();
  ASSERT_TRUE(reference.ok());
  for (int i = 0; i < 10; ++i) {
    core::MinerOptions shared = opts;
    shared.shared_model = *model;
    auto mined = core::RegClusterMiner(*(*handle)->store, shared).Mine();
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    ASSERT_EQ(mined->size(), reference->size());
  }
  stop.store(true);
  thrasher.join();

  // The pinned entries were in fact evicted: re-asking misses.
  hit = true;
  auto again = cache.GetMatrix(MatrixA().path, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(hit);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ServerConcurrency, MemoryShedIsStructuredAndRetryable) {
  MiningService::Options options;
  options.memory_budget_bytes = 1;  // anything resident is over budget
  options.retry_after_s = 7;
  MiningService service(options);

  // First request: nothing resident yet, admitted, mines fine.
  const Variant v{&MatrixA(), 5, 4, "0.1", "0.05"};
  const ServiceResponse first =
      service.HandleHttp("POST", "/mine", MineBodyJson(v));
  EXPECT_EQ(first.http_status, 200) << first.body;

  // Second request: the cache now holds the matrix + model, over budget.
  const ServiceResponse shed =
      service.HandleHttp("POST", "/mine", MineBodyJson(v));
  EXPECT_EQ(shed.http_status, 503);
  EXPECT_EQ(shed.status_name, "shed_memory");
  EXPECT_EQ(shed.retry_after_s, 7);
  EXPECT_NE(shed.body.find("\"status\":\"shed\""), std::string::npos);
  EXPECT_NE(shed.body.find("\"error_name\":\"shed_memory\""),
            std::string::npos);
  EXPECT_NE(shed.body.find("\"retry_after_s\":7"), std::string::npos);

  const ServiceResponse metrics = service.HandleHttp("GET", "/metrics", "");
  EXPECT_NE(metrics.body.find("regcluster_server_shed 1"), std::string::npos);
  // Health stays green: shedding is load management, not failure.
  EXPECT_EQ(service.HandleHttp("GET", "/healthz", "").http_status, 200);
}

TEST(ServerConcurrency, QueueShedWhenSaturated) {
  // The occupant parks inside the session hook, holding the only active
  // slot until the test releases it -- no timing assumptions.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  MiningService::Options options;
  options.max_active = 1;
  options.max_queued = 0;  // no waiting room: overflow sheds immediately
  options.session_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  MiningService service(options);

  const Variant v{&MatrixA(), 5, 4, "0.1", "0.05"};
  ServiceResponse occupant_response;
  std::thread occupant([&] {
    occupant_response = service.HandleHttp("POST", "/mine", MineBodyJson(v));
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // Metrics and health bypass admission: both answer while saturated.
  const ServiceResponse metrics = service.HandleHttp("GET", "/metrics", "");
  EXPECT_NE(metrics.body.find("regcluster_server_active 1"),
            std::string::npos);
  EXPECT_EQ(service.HandleHttp("GET", "/healthz", "").http_status, 200);

  const Variant other{&MatrixB(), 5, 4, "0.1", "0.05"};
  const ServiceResponse shed =
      service.HandleHttp("POST", "/mine", MineBodyJson(other));
  EXPECT_EQ(shed.http_status, 503);
  EXPECT_EQ(shed.status_name, "shed_queue");
  EXPECT_GT(shed.retry_after_s, 0);
  EXPECT_NE(shed.body.find("\"error_name\":\"shed_queue\""),
            std::string::npos);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  occupant.join();
  EXPECT_EQ(occupant_response.http_status, 200) << occupant_response.body;

  // The freed slot admits again: shedding was transient, the retry works.
  const ServiceResponse retry =
      service.HandleHttp("POST", "/mine", MineBodyJson(other));
  EXPECT_EQ(retry.http_status, 200) << retry.body;
}

// ---------------------------------------------------------------------------
// POST /append invalidation: exactly the touched (path, model) entries drop,
// unrelated entries keep hitting, and a warm mine after the append is
// byte-identical to a solo mine of the widened matrix.

std::string MineBodyForPath(const std::string& path, const char* gamma) {
  return "{\"matrix\":\"" + path + "\",\"ming\":5,\"minc\":4,\"gamma\":" +
         gamma +
         ",\"epsilon\":0.05,\"collect_stats\":true,"
         "\"deterministic_output\":true}";
}

// One new condition for `genes` genes: column value g * 0.25.
std::string AppendBodyForPath(const std::string& path, int genes,
                              const std::string& name) {
  std::ostringstream body;
  body << "{\"matrix\":\"" << path << "\",\"names\":[\"" << name
       << "\"],\"columns\":[[";
  for (int g = 0; g < genes; ++g) {
    if (g > 0) body << ",";
    body << (0.25 * g);
  }
  body << "]]}";
  return body.str();
}

// Solo, serial reference of a binary matrix file under the MineBodyForPath
// options, rendered like the service renders responses.
std::string SoloBinaryMineBody(const std::string& path, const char* gamma) {
  auto data = matrix::ReadBinaryMatrix(path);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  core::MinerOptions opts;
  opts.min_genes = 5;
  opts.min_conditions = 4;
  opts.gamma = std::stod(gamma);
  opts.epsilon = 0.05;
  opts.collect_stats = true;
  opts.num_threads = 1;
  core::GammaSpec spec;
  spec.policy = opts.gamma_policy;
  spec.gamma = opts.gamma;
  opts.shared_model =
      core::SharedGammaModel::Build(*data, spec, opts.min_conditions);
  core::RegClusterMiner miner(*data, opts);
  auto clusters = miner.Mine();
  EXPECT_TRUE(clusters.ok()) << clusters.status().ToString();
  core::MinerStats stats = miner.stats();
  core::MineOutcome outcome = miner.outcome();
  io::ZeroVolatileMineFields(&stats, &outcome);
  std::ostringstream doc;
  EXPECT_TRUE(
      io::WriteClustersJson(*clusters, &*data, &outcome, &stats, doc).ok());
  return doc.str();
}

TEST(ServerConcurrency, AppendInvalidatesExactlyTheTouchedEntries) {
  // Fresh binary copies: appends mutate the files, so the shared text
  // fixtures stay untouched.
  const std::string prefix =
      ::testing::TempDir() + std::to_string(static_cast<long>(getpid()));
  const std::string bin_a = prefix + "_append_a.rgx";
  const std::string bin_b = prefix + "_append_b.rgx";
  ASSERT_TRUE(matrix::WriteBinaryMatrix(MatrixA().data, bin_a).ok());
  ASSERT_TRUE(matrix::WriteBinaryMatrix(MatrixB().data, bin_b).ok());

  MiningService service(MiningService::Options{});
  auto mine = [&](const std::string& path, const char* gamma) {
    ServiceResponse r =
        service.HandleHttp("POST", "/mine", MineBodyForPath(path, gamma));
    EXPECT_EQ(r.http_status, 200) << r.body;
    return r.body;
  };
  auto expect_stats = [&](int64_t matrix_hits, int64_t matrix_misses,
                          int64_t model_hits, int64_t model_misses,
                          int64_t invalidations, const char* at) {
    const ResourceCache::Stats s = service.cache_stats();
    EXPECT_EQ(s.matrix_hits, matrix_hits) << at;
    EXPECT_EQ(s.matrix_misses, matrix_misses) << at;
    EXPECT_EQ(s.model_hits, model_hits) << at;
    EXPECT_EQ(s.model_misses, model_misses) << at;
    EXPECT_EQ(s.invalidations, invalidations) << at;
    EXPECT_EQ(s.evictions, 0) << at << ": invalidations are not evictions";
  };

  // Warm A with two gamma models and B with one.
  mine(bin_a, "0.1");
  mine(bin_a, "0.15");
  mine(bin_b, "0.1");
  expect_stats(1, 2, 0, 3, 0, "warm");

  // Append one condition to A: its path entry + BOTH its models drop --
  // and nothing else.
  const ServiceResponse append = service.HandleHttp(
      "POST", "/append",
      AppendBodyForPath(bin_a, MatrixA().data.num_genes(), "t_new"));
  ASSERT_EQ(append.http_status, 200) << append.body;
  EXPECT_EQ(append.body,
            "{\"status\":\"ok\",\"num_conditions\":" +
                std::to_string(MatrixA().data.num_conditions() + 1) +
                ",\"invalidated\":3}\n");
  expect_stats(1, 2, 0, 3, 3, "after append");

  // B's entries survived: a repeat is a pure double hit.
  mine(bin_b, "0.1");
  expect_stats(2, 2, 1, 3, 3, "B still warm");

  // A is cold again and reloads the WIDENED file; the response is
  // byte-identical to a solo mine of the widened matrix.
  const std::string remined = mine(bin_a, "0.1");
  expect_stats(2, 3, 1, 4, 3, "A cold after append");
  EXPECT_EQ(remined, SoloBinaryMineBody(bin_a, "0.1"));

  // And it re-warms normally.
  mine(bin_a, "0.1");
  expect_stats(3, 3, 2, 4, 3, "A warm again");

  // The binary-frame transport serves the same op: appending B through a
  // frame drops its path entry + single model.
  const ServiceResponse frame = service.HandleFrame(
      "{\"op\":\"append\"," +
      AppendBodyForPath(bin_b, MatrixB().data.num_genes(), "t_new").substr(1));
  ASSERT_EQ(frame.http_status, 200) << frame.body;
  EXPECT_NE(frame.body.find("\"invalidated\":2"), std::string::npos)
      << frame.body;
  expect_stats(3, 3, 2, 4, 5, "after frame append");

  // Appending a path nothing cached is fine: zero entries drop.
  const std::string bin_c = prefix + "_append_c.rgx";
  ASSERT_TRUE(matrix::WriteBinaryMatrix(MatrixB().data, bin_c).ok());
  const ServiceResponse cold = service.HandleHttp(
      "POST", "/append",
      AppendBodyForPath(bin_c, MatrixB().data.num_genes(), "t_new"));
  ASSERT_EQ(cold.http_status, 200) << cold.body;
  EXPECT_NE(cold.body.find("\"invalidated\":0"), std::string::npos)
      << cold.body;

  // Misuse: a text matrix cannot append in place.
  const ServiceResponse text = service.HandleHttp(
      "POST", "/append",
      AppendBodyForPath(MatrixA().path, MatrixA().data.num_genes(), "t_new"));
  EXPECT_EQ(text.http_status, 400);
  EXPECT_EQ(text.status_name, "append_error") << text.body;
  // Misuse: a column whose length is not the gene count.
  const ServiceResponse ragged = service.HandleHttp(
      "POST", "/append", AppendBodyForPath(bin_a, 3, "t_new"));
  EXPECT_NE(ragged.http_status, 200);
  EXPECT_EQ(ragged.status_name, "append_error") << ragged.body;
  // Misuse: unknown fields are rejected, not ignored.
  const ServiceResponse unknown = service.HandleHttp(
      "POST", "/append",
      "{\"matrix\":\"" + bin_a + "\",\"names\":[\"x\"],\"columns\":[[1]],"
      "\"gamma\":0.1}");
  EXPECT_EQ(unknown.http_status, 400);
  EXPECT_EQ(unknown.status_name, "bad_request") << unknown.body;
}

}  // namespace
}  // namespace server
}  // namespace regcluster
