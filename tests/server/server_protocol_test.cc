// Protocol fault battery for the mining daemon's wire layer and request
// dispatch: torn and truncated frames, oversized declared lengths,
// malformed JSON, unknown endpoints / ops, and mid-request disconnects.
// Every fault must map onto a *named* status -- the daemon never dies and
// never answers with an unlabeled failure.  Runs entirely over in-memory
// byte streams (the reason server/protocol.h takes a ByteStream).

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matrix/expression_matrix.h"
#include "matrix/matrix_io.h"
#include "server/json_reader.h"
#include "server/protocol.h"
#include "server/request.h"
#include "server/service.h"
#include "util/status.h"

namespace regcluster {
namespace server {
namespace {

using util::StatusCode;

// In-memory ByteStream.  `chunk` caps bytes per Read so the codecs' short-
// read loops are exercised; input exhaustion reads as EOF -- exactly what a
// peer disconnecting mid-request looks like to the daemon.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string input, size_t chunk = 3)
      : input_(std::move(input)), chunk_(chunk) {}

  int Read(char* buf, size_t n) override {
    if (fail_reads_) return -1;
    if (pos_ >= input_.size()) return 0;  // EOF == disconnect
    const size_t take = std::min({n, chunk_, input_.size() - pos_});
    std::memcpy(buf, input_.data() + pos_, take);
    pos_ += take;
    return static_cast<int>(take);
  }

  bool Write(const char* buf, size_t n) override {
    if (fail_writes_) return false;
    output_.append(buf, n);
    return true;
  }

  const std::string& output() const { return output_; }
  void set_fail_reads(bool v) { fail_reads_ = v; }
  void set_fail_writes(bool v) { fail_writes_ = v; }

 private:
  std::string input_;
  size_t pos_ = 0;
  size_t chunk_;
  std::string output_;
  bool fail_reads_ = false;
  bool fail_writes_ = false;
};

std::string FramePrefix(uint32_t length) {
  std::string p(4, '\0');
  p[0] = static_cast<char>((length >> 24) & 0xFF);
  p[1] = static_cast<char>((length >> 16) & 0xFF);
  p[2] = static_cast<char>((length >> 8) & 0xFF);
  p[3] = static_cast<char>(length & 0xFF);
  return p;
}

// ---------------------------------------------------------------------------
// Binary framing.

TEST(Frame, RoundTripsPayloadsThroughWriteAndRead) {
  MemoryStream out("");
  ASSERT_TRUE(WriteFrame(&out, "{\"op\":\"health\"}").ok());
  ASSERT_TRUE(WriteFrame(&out, "").ok());  // zero-length frame is legal
  ASSERT_TRUE(WriteFrame(&out, std::string(1000, 'x')).ok());

  MemoryStream in(out.output());
  auto first = ReadFrame(&in);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, "{\"op\":\"health\"}");
  auto second = ReadFrame(&in);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");
  auto third = ReadFrame(&in);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, std::string(1000, 'x'));
  // The stream now ends exactly on a frame boundary: clean EOF, not a fault.
  EXPECT_EQ(ReadFrame(&in).status().code(), StatusCode::kNotFound);
}

TEST(Frame, CleanEofBetweenFramesIsNotFound) {
  MemoryStream in("");
  const auto status = ReadFrame(&in).status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(Frame, DisconnectInsideLengthPrefixIsTorn) {
  for (size_t cut : {1u, 2u, 3u}) {
    MemoryStream in(FramePrefix(8).substr(0, cut));
    const auto status = ReadFrame(&in).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "cut=" << cut;
    EXPECT_NE(status.message().find("torn"), std::string::npos);
  }
}

TEST(Frame, DisconnectInsidePayloadIsTorn) {
  // Declares 10 payload bytes, delivers 4, then the peer goes away.
  MemoryStream in(FramePrefix(10) + "abcd");
  const auto status = ReadFrame(&in).status();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("torn"), std::string::npos);
}

TEST(Frame, OversizedDeclaredLengthRefusedBeforeReadingPayload) {
  MemoryStream in(FramePrefix(kMaxFrameBytes + 1));
  const auto status = ReadFrame(&in).status();
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  // 0xFFFFFFFF -- the classic garbage-length attack -- same refusal.
  MemoryStream worst(std::string(4, '\xFF'));
  EXPECT_EQ(ReadFrame(&worst).status().code(), StatusCode::kOutOfRange);
}

TEST(Frame, ExactCapIsAccepted) {
  MemoryStream out("");
  ASSERT_TRUE(WriteFrame(&out, std::string(kMaxFrameBytes, 'y')).ok());
  MemoryStream in(out.output(), /*chunk=*/1 << 16);
  auto payload = ReadFrame(&in);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->size(), kMaxFrameBytes);
}

TEST(Frame, ReadErrorIsIoError) {
  MemoryStream in(FramePrefix(4));
  in.set_fail_reads(true);
  EXPECT_EQ(ReadFrame(&in).status().code(), StatusCode::kIoError);
}

TEST(Frame, WriteRefusesOversizedPayloadAndReportsSinkErrors) {
  MemoryStream out("");
  EXPECT_EQ(WriteFrame(&out, std::string(kMaxFrameBytes + 1, 'z')).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(out.output().empty());  // refused before any bytes hit the wire
  out.set_fail_writes(true);
  EXPECT_EQ(WriteFrame(&out, "x").code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// HTTP front.  The daemon consumes the transport-sniff byte itself, so every
// ReadHttpRequest call gets the head minus its first byte plus that byte.

util::StatusOr<HttpRequest> ParseHttp(const std::string& wire,
                                      size_t chunk = 3) {
  MemoryStream in(wire.substr(1), chunk);
  return ReadHttpRequest(&in, wire[0]);
}

TEST(Http, ParsesRequestLineHeadersAndBody) {
  auto request = ParseHttp(
      "POST /mine?trace=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"a\":\"b\"}\r\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->target, "/mine?trace=1");
  EXPECT_EQ(request->body, "{\"a\":\"b\"}\r\n");
}

TEST(Http, MissingContentLengthMeansEmptyBody) {
  auto request = ParseHttp("GET /healthz HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_TRUE(request->body.empty());
}

TEST(Http, MalformedRequestLineIsCorruption) {
  for (const char* wire : {
           "GARBAGE\r\n\r\n",                 // no spaces at all
           "GET /x\r\n\r\n",                  // missing version
           "GET /x SPDY/3\r\n\r\n",           // not HTTP/1.x
           "GET /x HTTP/2\r\n\r\n",           // wrong major version
       }) {
    EXPECT_EQ(ParseHttp(wire).status().code(), StatusCode::kCorruption)
        << wire;
  }
}

TEST(Http, HeaderLineWithoutColonIsCorruption) {
  EXPECT_EQ(
      ParseHttp("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n").status().code(),
      StatusCode::kCorruption);
}

TEST(Http, MalformedContentLengthIsCorruption) {
  for (const char* bad : {"abc", "-1", "1x", " ", "99999999999999999999"}) {
    const std::string wire = std::string("POST /mine HTTP/1.1\r\n") +
                             "Content-Length: " + bad + "\r\n\r\n";
    EXPECT_EQ(ParseHttp(wire).status().code(), StatusCode::kCorruption)
        << bad;
  }
}

TEST(Http, ContentLengthOverCapIsOutOfRange) {
  const std::string wire =
      "POST /mine HTTP/1.1\r\nContent-Length: " +
      std::to_string(static_cast<int64_t>(kMaxFrameBytes) + 1) + "\r\n\r\n";
  EXPECT_EQ(ParseHttp(wire).status().code(), StatusCode::kOutOfRange);
}

TEST(Http, DisconnectMidHeadIsCorruption) {
  EXPECT_EQ(ParseHttp("POST /mine HTTP/1.1\r\nContent-").status().code(),
            StatusCode::kCorruption);
}

TEST(Http, DisconnectMidBodyIsCorruption) {
  const auto status = ParseHttp(
                          "POST /mine HTTP/1.1\r\n"
                          "Content-Length: 100\r\n\r\n"
                          "{\"matrix\"")
                          .status();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("closed"), std::string::npos);
}

TEST(Http, HeadOverCapIsOutOfRange) {
  std::string wire = "GET / HTTP/1.1\r\n";
  while (wire.size() <= kMaxHttpHeadBytes) wire += "X-Pad: aaaaaaaa\r\n";
  wire += "\r\n";
  EXPECT_EQ(ParseHttp(wire, /*chunk=*/512).status().code(),
            StatusCode::kOutOfRange);
}

TEST(Http, ResponseFormatting) {
  const std::string ok =
      FormatHttpResponse(200, "application/json", "{}\n", 0);
  EXPECT_EQ(ok.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(ok.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(ok.find("Retry-After"), std::string::npos);
  EXPECT_EQ(ok.substr(ok.size() - 3), "{}\n");

  const std::string shed = FormatHttpResponse(503, "application/json",
                                              "{\"status\":\"shed\"}", 7);
  EXPECT_EQ(shed.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_NE(shed.find("Retry-After: 7\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service dispatch: every malformed request maps onto a named status and a
// structured JSON error body; the service object survives all of them.

class ServiceDispatch : public ::testing::Test {
 protected:
  ServiceDispatch() : service_(MiningService::Options{}) {}
  MiningService service_;
};

void ExpectNamedError(const ServiceResponse& r, int http_status,
                      const std::string& name) {
  EXPECT_EQ(r.http_status, http_status);
  EXPECT_EQ(r.status_name, name);
  EXPECT_NE(r.body.find("\"error_name\":\"" + name + "\""), std::string::npos)
      << r.body;
}

TEST_F(ServiceDispatch, UnknownEndpointIs404) {
  ExpectNamedError(service_.HandleHttp("GET", "/nope", ""), 404,
                   "unknown_endpoint");
  ExpectNamedError(service_.HandleHttp("DELETE", "/mine", ""), 404,
                   "unknown_endpoint");
  // GET on a POST endpoint is an unknown (method, path) pair, not a mine.
  ExpectNamedError(service_.HandleHttp("GET", "/mine", ""), 404,
                   "unknown_endpoint");
}

TEST_F(ServiceDispatch, MalformedJsonNamesTheByteOffset) {
  const ServiceResponse r =
      service_.HandleHttp("POST", "/mine", "{\"matrix\": }");
  ExpectNamedError(r, 400, "bad_json");
  EXPECT_NE(r.body.find("at byte"), std::string::npos) << r.body;
  ExpectNamedError(service_.HandleHttp("POST", "/sweep", "not json at all"),
                   400, "bad_json");
  ExpectNamedError(service_.HandleFrame("{{{{"), 400, "bad_json");
}

TEST_F(ServiceDispatch, UnknownRequestFieldIsRejectedNotIgnored) {
  ExpectNamedError(
      service_.HandleHttp("POST", "/mine",
                          "{\"matrix\":\"m.tsv\",\"max_nodez\":10}"),
      400, "bad_request");
}

TEST_F(ServiceDispatch, MissingMatrixFieldIsBadRequest) {
  ExpectNamedError(service_.HandleHttp("POST", "/mine", "{\"ming\":5}"), 400,
                   "bad_request");
}

TEST_F(ServiceDispatch, SweepWithoutSpecIsBadRequest) {
  ExpectNamedError(
      service_.HandleHttp("POST", "/sweep", "{\"matrix\":\"m.tsv\"}"), 400,
      "bad_request");
}

TEST_F(ServiceDispatch, NonexistentMatrixIsMatrixError) {
  const ServiceResponse r = service_.HandleHttp(
      "POST", "/mine", "{\"matrix\":\"/definitely/not/here.tsv\"}");
  EXPECT_GE(r.http_status, 400);
  EXPECT_EQ(r.status_name, "matrix_error");
  EXPECT_NE(r.body.find("\"error_name\":\"matrix_error\""),
            std::string::npos);
}

TEST_F(ServiceDispatch, FrameWithoutOpIsBadRequest) {
  ExpectNamedError(service_.HandleFrame("{\"matrix\":\"m.tsv\"}"), 400,
                   "bad_request");
  ExpectNamedError(service_.HandleFrame("{\"op\":42}"), 400, "bad_request");
}

TEST_F(ServiceDispatch, UnknownOpIsNamed) {
  ExpectNamedError(service_.HandleFrame("{\"op\":\"mien\"}"), 400,
                   "unknown_op");
}

// ---------------------------------------------------------------------------
// Request-option validation against a real (tiny) matrix: a well-formed
// request carrying hostile options must be rejected with a named 400
// BEFORE any model is built or cached.  In particular an unbounded minc
// must never size a model allocation -- the remote-OOM the admission
// contract promises away -- and a garbage gamma must not burn a model
// build under the cache mutex only to be rejected by Prepare().

const std::string& TinyMatrixPath() {
  static const std::string* path = [] {
    std::vector<std::vector<double>> rows;
    for (int g = 0; g < 6; ++g) {
      std::vector<double> row;
      for (int c = 0; c < 5; ++c) {
        row.push_back(10.0 * g + c * (g % 2 == 0 ? 1.0 : -1.0));
      }
      rows.push_back(std::move(row));
    }
    auto m = matrix::ExpressionMatrix::FromRows(rows);
    EXPECT_TRUE(m.ok());
    auto* p = new std::string(
        ::testing::TempDir() + std::to_string(static_cast<long>(getpid())) +
        "_proto_tiny.tsv");
    EXPECT_TRUE(matrix::SaveMatrix(*m, *p).ok());
    return p;
  }();
  return *path;
}

std::string TinyMineBody(const std::string& option_fields) {
  return "{\"matrix\":\"" + TinyMatrixPath() + "\"" +
         (option_fields.empty() ? "" : "," + option_fields) + "}";
}

TEST_F(ServiceDispatch, OversizedMincIsRejectedBeforeAnyModelBuild) {
  // The tiny matrix has 5 conditions; every minc outside [2, 5] is a named
  // 400 -- answered from the validation screen, never from an O(minc)
  // eligibility-table allocation.
  for (const char* minc : {"2000000000", "6", "1", "0", "-7"}) {
    ExpectNamedError(service_.HandleHttp(
                         "POST", "/mine",
                         TinyMineBody(std::string("\"minc\":") + minc)),
                     400, "bad_request");
  }
  // The boundary itself still mines.
  EXPECT_EQ(
      service_.HandleHttp("POST", "/mine", TinyMineBody("\"minc\":5"))
          .http_status,
      200);
}

TEST_F(ServiceDispatch, InvalidGammaOrEpsilonIsRejectedBeforeModelBuild) {
  for (const char* fields : {
           "\"gamma\":-1",                               // negative
           "\"gamma\":1.5",                              // relative > 1
           "\"gamma\":2,\"gamma_policy\":\"range\"",     // explicit relative
           "\"epsilon\":-0.25",                          // negative epsilon
           "\"ming\":0",                                 // ming floor
       }) {
    ExpectNamedError(service_.HandleHttp("POST", "/mine",
                                         TinyMineBody(fields)),
                     400, "bad_request");
  }
  // An absolute-policy gamma > 1 is legal and must still mine.
  EXPECT_EQ(service_.HandleHttp(
                    "POST", "/mine",
                    TinyMineBody(
                        "\"gamma\":2.5,\"gamma_policy\":\"absolute\""))
                .http_status,
            200);
}

TEST_F(ServiceDispatch, SweepPointsWithHostileOptionsDoNotKillTheSweep) {
  // A sweep whose minc axis runs past the condition count: the valid
  // points mine, the impossible ones are recorded per-run, and nothing
  // allocates O(minc).
  const ServiceResponse r = service_.HandleHttp(
      "POST", "/sweep",
      TinyMineBody("\"spec\":\"minc=4:2000000000:1999999996\""));
  EXPECT_EQ(r.http_status, 200) << r.body;
  const ServiceResponse health = service_.HandleHttp("GET", "/healthz", "");
  EXPECT_EQ(health.http_status, 200);
}

TEST_F(ServiceDispatch, HealthAndMetricsStayUpAfterFaults) {
  // A storm of malformed requests must leave the service answering.
  for (int i = 0; i < 50; ++i) {
    service_.HandleHttp("POST", "/mine", "{bad");
    service_.HandleFrame("\x01\x02\x03");
    service_.HandleHttp("GET", "/wat", "");
  }
  const ServiceResponse health = service_.HandleHttp("GET", "/healthz", "");
  EXPECT_EQ(health.http_status, 200);
  EXPECT_EQ(health.body, "{\"status\":\"ok\"}\n");
  const ServiceResponse metrics = service_.HandleHttp("GET", "/metrics", "");
  EXPECT_EQ(metrics.http_status, 200);
  EXPECT_NE(metrics.body.find("regcluster_server_requests"),
            std::string::npos);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
}

TEST_F(ServiceDispatch, QueryStringsAreStrippedFromTargets) {
  EXPECT_EQ(service_.HandleHttp("GET", "/healthz?verbose=1", "").http_status,
            200);
  EXPECT_EQ(service_.HandleHttp("GET", "/metrics?format=prom", "").http_status,
            200);
}

// ---------------------------------------------------------------------------
// JSON reader edge cases that double as request-body faults.

TEST(JsonReader, DepthBombIsRefusedNotOverflowed) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += "[";
  EXPECT_FALSE(ParseJson(bomb).ok());
}

TEST(JsonReader, DuplicateKeysAreRejected) {
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}").ok());
}

TEST(JsonReader, TrailingGarbageIsRejected) {
  EXPECT_FALSE(ParseJson("{\"a\":1} extra").ok());
}

TEST(JsonReader, RequestFieldsWithWrongTypesAreInvalidArgument) {
  core::MinerOptions defaults;
  auto body = ParseJson("{\"matrix\":\"m\",\"ming\":\"five\"}");
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(ParseMineRequest(*body, defaults).status().code(),
            StatusCode::kInvalidArgument);
  auto frac = ParseJson("{\"matrix\":\"m\",\"minc\":2.5}");
  ASSERT_TRUE(frac.ok());
  EXPECT_EQ(ParseMineRequest(*frac, defaults).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace server
}  // namespace regcluster
