#include "synth/yeast_surrogate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/coherence.h"
#include "util/math_util.h"

namespace regcluster {
namespace synth {
namespace {

YeastSurrogateConfig SmallConfig() {
  YeastSurrogateConfig cfg;
  cfg.num_genes = 300;
  cfg.num_conditions = 17;
  cfg.num_modules = 6;
  cfg.avg_module_genes = 15;
  return cfg;
}

TEST(YeastSurrogateTest, DefaultShapeMatchesPaperDataset) {
  YeastSurrogateConfig cfg;  // defaults
  cfg.num_genes = 2884;
  cfg.num_conditions = 17;
  cfg.num_modules = 3;  // keep the test fast
  auto ds = MakeYeastSurrogate(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->data.num_genes(), 2884);
  EXPECT_EQ(ds->data.num_conditions(), 17);
}

TEST(YeastSurrogateTest, HasOrfStyleNames) {
  auto ds = MakeYeastSurrogate(SmallConfig());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->data.gene_name(0), "ORF0000");
  EXPECT_EQ(ds->data.condition_name(0), "cdc15_10");
}

TEST(YeastSurrogateTest, BackgroundIsPositiveAndBounded) {
  auto ds = MakeYeastSurrogate(SmallConfig());
  ASSERT_TRUE(ds.ok());
  // All implant cells included, values must stay finite; background cells in
  // [1, 600].
  int out_of_band = 0;
  for (int g = 0; g < ds->data.num_genes(); ++g) {
    for (int c = 0; c < ds->data.num_conditions(); ++c) {
      ASSERT_TRUE(std::isfinite(ds->data(g, c)));
      if (ds->data(g, c) < 1.0 || ds->data(g, c) > 600.0) ++out_of_band;
    }
  }
  // Only implant cells may leave the clip band.
  int implant_cells = 0;
  for (const auto& imp : ds->implants) {
    implant_cells += static_cast<int>(imp.Footprint().genes.size() *
                                      imp.chain.size());
  }
  EXPECT_LE(out_of_band, implant_cells);
}

TEST(YeastSurrogateTest, ModulesValidateUnderPaperParameters) {
  // The Section 5.2 run uses gamma = 0.05; the surrogate's modules carry
  // noise, so validate with the run's generous epsilon = 1.0.
  auto ds = MakeYeastSurrogate(SmallConfig());
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->implants.size(), 6u);
  for (const auto& imp : ds->implants) {
    std::string why;
    EXPECT_TRUE(core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.05,
                                         1.0, &why))
        << why;
  }
}

TEST(YeastSurrogateTest, MixedCorrelationSigns) {
  auto ds = MakeYeastSurrogate(SmallConfig());
  ASSERT_TRUE(ds.ok());
  for (const auto& imp : ds->implants) {
    EXPECT_FALSE(imp.p_genes.empty());
    EXPECT_FALSE(imp.n_genes.empty());
  }
}

TEST(YeastSurrogateTest, Deterministic) {
  auto a = MakeYeastSurrogate(SmallConfig());
  auto b = MakeYeastSurrogate(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int g = 0; g < a->data.num_genes(); ++g) {
    for (int c = 0; c < a->data.num_conditions(); ++c) {
      ASSERT_DOUBLE_EQ(a->data(g, c), b->data(g, c));
    }
  }
}

TEST(YeastSurrogateTest, CellCycleBackgroundIsSmooth) {
  YeastSurrogateConfig cfg = SmallConfig();
  cfg.background = YeastBackground::kCellCycle;
  cfg.num_modules = 0;  // pure background for this check
  auto ds = MakeYeastSurrogate(cfg);
  ASSERT_TRUE(ds.ok());
  // Temporal-structure proxy: mean lag-1 autocorrelation per gene.  The
  // sinusoidal background is strongly autocorrelated, the i.i.d. log-normal
  // is not.
  auto mean_lag1 = [](const matrix::ExpressionMatrix& m) {
    double total = 0.0;
    for (int g = 0; g < m.num_genes(); ++g) {
      std::vector<double> a, b;
      for (int c = 0; c + 1 < m.num_conditions(); ++c) {
        a.push_back(m(g, c));
        b.push_back(m(g, c + 1));
      }
      total += util::PearsonCorrelation(a, b);
    }
    return total / m.num_genes();
  };
  YeastSurrogateConfig iid = cfg;
  iid.background = YeastBackground::kLogNormal;
  auto ds_iid = MakeYeastSurrogate(iid);
  ASSERT_TRUE(ds_iid.ok());
  EXPECT_GT(mean_lag1(ds->data), 0.5);
  EXPECT_LT(std::fabs(mean_lag1(ds_iid->data)), 0.2);
}

TEST(YeastSurrogateTest, CellCycleModulesStillValidate) {
  YeastSurrogateConfig cfg = SmallConfig();
  cfg.background = YeastBackground::kCellCycle;
  auto ds = MakeYeastSurrogate(cfg);
  ASSERT_TRUE(ds.ok());
  for (const auto& imp : ds->implants) {
    std::string why;
    EXPECT_TRUE(core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.05,
                                         1.0, &why))
        << why;
  }
}

TEST(YeastSurrogateTest, RejectsBadConfig) {
  YeastSurrogateConfig cfg = SmallConfig();
  cfg.avg_module_conditions = 1;
  EXPECT_FALSE(MakeYeastSurrogate(cfg).ok());
  cfg = SmallConfig();
  cfg.num_genes = 0;
  EXPECT_FALSE(MakeYeastSurrogate(cfg).ok());
}

}  // namespace
}  // namespace synth
}  // namespace regcluster
