#include "synth/generator.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/coherence.h"

namespace regcluster {
namespace synth {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig cfg;
  cfg.num_genes = 200;
  cfg.num_conditions = 20;
  cfg.num_clusters = 5;
  cfg.avg_cluster_genes_fraction = 0.05;  // ~10 genes per cluster
  cfg.seed = 11;
  return cfg;
}

TEST(GeneratorTest, ShapeAndImplantCount) {
  auto ds = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->data.num_genes(), 200);
  EXPECT_EQ(ds->data.num_conditions(), 20);
  EXPECT_EQ(ds->implants.size(), 5u);
}

TEST(GeneratorTest, Deterministic) {
  auto a = GenerateSynthetic(SmallConfig());
  auto b = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int g = 0; g < a->data.num_genes(); ++g) {
    for (int c = 0; c < a->data.num_conditions(); ++c) {
      ASSERT_DOUBLE_EQ(a->data(g, c), b->data(g, c));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticConfig cfg = SmallConfig();
  auto a = GenerateSynthetic(cfg);
  cfg.seed = 12;
  auto b = GenerateSynthetic(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = false;
  for (int g = 0; g < a->data.num_genes() && !any_diff; ++g) {
    for (int c = 0; c < a->data.num_conditions(); ++c) {
      if (a->data(g, c) != b->data(g, c)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ImplantGeneSetsDisjoint) {
  auto ds = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(ds.ok());
  std::set<int> seen;
  for (const ImplantedCluster& imp : ds->implants) {
    for (int g : imp.Footprint().genes) {
      EXPECT_TRUE(seen.insert(g).second) << "gene " << g << " reused";
    }
  }
}

TEST(GeneratorTest, ImplantsHaveBothMemberKinds) {
  auto ds = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(ds.ok());
  for (const ImplantedCluster& imp : ds->implants) {
    EXPECT_FALSE(imp.p_genes.empty());
    EXPECT_FALSE(imp.n_genes.empty());  // negative_fraction = 0.3 default
  }
}

TEST(GeneratorTest, ImplantsValidateAsPerfectRegClusters) {
  // The paper's generator embeds clusters valid at epsilon=0, gamma=0.15.
  auto ds = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(ds.ok());
  for (const ImplantedCluster& imp : ds->implants) {
    std::string why;
    EXPECT_TRUE(core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.1,
                                         1e-9, &why))
        << why;
    // And just below the generator's guarantee threshold:
    EXPECT_TRUE(core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.149,
                                         1e-9, &why))
        << why;
  }
}

TEST(GeneratorTest, NoisyImplantsNeedLooserEpsilon) {
  SyntheticConfig cfg = SmallConfig();
  cfg.noise_fraction = 0.1;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  int strict_failures = 0;
  for (const ImplantedCluster& imp : ds->implants) {
    if (!core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.1, 1e-9)) {
      ++strict_failures;
    }
    // A generous epsilon absorbs the noise (regulation may still fail for
    // extreme draws, so only check coherence-dominated settings).
    EXPECT_TRUE(
        core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.05, 1.5));
  }
  EXPECT_GT(strict_failures, 0);  // noise must actually perturb coherence
}

TEST(GeneratorTest, BackgroundStaysInRangeOutsideImplants) {
  auto ds = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(ds.ok());
  std::set<std::pair<int, int>> implant_cells;
  for (const ImplantedCluster& imp : ds->implants) {
    for (int g : imp.Footprint().genes) {
      for (int c : imp.chain) implant_cells.insert({g, c});
    }
  }
  for (int g = 0; g < ds->data.num_genes(); ++g) {
    for (int c = 0; c < ds->data.num_conditions(); ++c) {
      if (implant_cells.count({g, c})) continue;
      EXPECT_GE(ds->data(g, c), 0.0);
      EXPECT_LE(ds->data(g, c), 10.0);
    }
  }
}

TEST(GeneratorTest, ChainLengthRespectsStepRatioCap) {
  // min_step_ratio = 0.15 allows at most floor(0.95/0.15) = 6 steps.
  SyntheticConfig cfg = SmallConfig();
  cfg.avg_cluster_conditions = 12;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  for (const ImplantedCluster& imp : ds->implants) {
    EXPECT_LE(imp.chain.size(), 7u);
  }
}

TEST(GeneratorTest, RejectsOverdemand) {
  SyntheticConfig cfg = SmallConfig();
  cfg.num_clusters = 100;
  cfg.avg_cluster_genes_fraction = 0.2;
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());
}

TEST(GeneratorTest, RejectsBadParameters) {
  {
    SyntheticConfig cfg = SmallConfig();
    cfg.num_genes = 0;
    EXPECT_FALSE(GenerateSynthetic(cfg).ok());
  }
  {
    SyntheticConfig cfg = SmallConfig();
    cfg.min_step_ratio = 0.0;
    EXPECT_FALSE(GenerateSynthetic(cfg).ok());
  }
  {
    SyntheticConfig cfg = SmallConfig();
    cfg.min_step_ratio = 0.7;
    EXPECT_FALSE(GenerateSynthetic(cfg).ok());
  }
  {
    SyntheticConfig cfg = SmallConfig();
    cfg.negative_fraction = 1.5;
    EXPECT_FALSE(GenerateSynthetic(cfg).ok());
  }
  {
    SyntheticConfig cfg = SmallConfig();
    cfg.background_lo = 5;
    cfg.background_hi = 5;
    EXPECT_FALSE(GenerateSynthetic(cfg).ok());
  }
}

TEST(GeneratorTest, GeneReuseProducesOverlappingImplants) {
  SyntheticConfig cfg = SmallConfig();
  cfg.num_conditions = 24;
  cfg.avg_cluster_conditions = 5;
  cfg.gene_reuse_fraction = 0.5;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  // Some gene must appear in more than one implant.
  std::map<int, int> gene_uses;
  for (const ImplantedCluster& imp : ds->implants) {
    for (int g : imp.Footprint().genes) ++gene_uses[g];
  }
  int reused = 0;
  for (const auto& [g, uses] : gene_uses) {
    (void)g;
    reused += uses > 1;
  }
  EXPECT_GT(reused, 0);

  // A reused gene's implants never share conditions.
  for (size_t i = 0; i < ds->implants.size(); ++i) {
    for (size_t j = i + 1; j < ds->implants.size(); ++j) {
      const auto fi = ds->implants[i].Footprint();
      const auto fj = ds->implants[j].Footprint();
      std::vector<int> shared_genes;
      std::set_intersection(fi.genes.begin(), fi.genes.end(),
                            fj.genes.begin(), fj.genes.end(),
                            std::back_inserter(shared_genes));
      if (shared_genes.empty()) continue;
      std::vector<int> shared_conds;
      std::set_intersection(fi.conditions.begin(), fi.conditions.end(),
                            fj.conditions.begin(), fj.conditions.end(),
                            std::back_inserter(shared_conds));
      EXPECT_TRUE(shared_conds.empty())
          << "implants " << i << ", " << j << " share genes and conditions";
    }
  }

  // EVERY implant must still validate -- reuse may not corrupt older ones.
  for (const ImplantedCluster& imp : ds->implants) {
    std::string why;
    EXPECT_TRUE(core::ValidateRegCluster(ds->data, imp.ToRegCluster(), 0.1,
                                         1e-9, &why))
        << why;
  }
}

TEST(GeneratorTest, GeneReuseRejectsBadFraction) {
  SyntheticConfig cfg = SmallConfig();
  cfg.gene_reuse_fraction = 1.5;
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());
}

TEST(GeneratorTest, ZeroClustersIsPureBackground) {
  SyntheticConfig cfg = SmallConfig();
  cfg.num_clusters = 0;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->implants.empty());
}

}  // namespace
}  // namespace synth
}  // namespace regcluster
