// Quickstart: mine reg-clusters from a small in-memory matrix.
//
// Builds the paper's running dataset (Table 1), mines with the worked
// example's parameters, and prints the single resulting cluster together
// with the fitted shifting-and-scaling relationships between its members.
//
//   $ ./quickstart
//
// See examples/yeast_workflow.cpp for the full file-based pipeline.

#include <cstdio>
#include <iostream>

#include "core/coherence.h"
#include "core/miner.h"
#include "io/cluster_io.h"
#include "matrix/expression_matrix.h"

using regcluster::core::MinerOptions;
using regcluster::core::RegClusterMiner;
using regcluster::matrix::ExpressionMatrix;

int main() {
  // 1. An expression matrix: 3 genes x 10 conditions (paper, Table 1).
  auto maybe = ExpressionMatrix::FromRows({
      {10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5},   // g1
      {20, 15, 15, 43.5, 30, 44, 45, 43, 35, 20},       // g2
      {6, -3.8, 8, 6.2, 2, 7.8, -4, 2, 0, 0},           // g3
  });
  if (!maybe.ok()) {
    std::fprintf(stderr, "%s\n", maybe.status().ToString().c_str());
    return 1;
  }
  ExpressionMatrix data = *std::move(maybe);

  // 2. Configure the miner: MinG genes, MinC conditions, regulation
  // threshold gamma (fraction of each gene's expression range) and
  // coherence threshold epsilon.
  MinerOptions options;
  options.min_genes = 3;
  options.min_conditions = 5;
  options.gamma = 0.15;
  options.epsilon = 0.1;

  // 3. Mine.
  RegClusterMiner miner(data, options);
  auto clusters = miner.Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("found %zu reg-cluster(s) in %.3f ms\n\n", clusters->size(),
              miner.stats().mine_seconds * 1e3);

  // 4. Inspect the output.
  (void)regcluster::io::WriteReport(*clusters, &data, std::cout);

  // 5. The defining property: every pair of member genes is related by
  // d_i = s1 * d_j + s2 on the cluster's conditions, with s1 < 0 between
  // p- and n-members (negative co-regulation).
  for (const auto& c : *clusters) {
    const auto genes = c.AllGenes();
    std::printf("\nfitted pairwise shifting-and-scaling factors:\n");
    for (size_t i = 0; i < genes.size(); ++i) {
      for (size_t j = i + 1; j < genes.size(); ++j) {
        double s1 = 0, s2 = 0;
        if (regcluster::core::FitPairShiftScale(data, genes[i], genes[j],
                                                c.chain, &s1, &s2)) {
          std::printf("  %s = %+.3f * %s %+.3f\n",
                      data.gene_name(genes[j]).c_str(), s1,
                      data.gene_name(genes[i]).c_str(), s2);
        }
      }
    }
  }
  return 0;
}
