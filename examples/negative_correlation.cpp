// Negative co-regulation discovery (the Section 1.1 "Negative Correlation"
// motivation).
//
// Genes in the same pathway can be anti-correlated: a repressor rises while
// its targets fall.  Pattern models limited to positive scaling (pCluster,
// TriCluster) cannot put the repressor and targets into one cluster; the
// reg-cluster model does, as n-members with negative scaling factors.
//
// This example synthesizes a small "pathway" -- an activator module, its
// induced targets and its repressed targets, all affine transforms of one
// latent activity signal over a condition subset -- and shows that one
// mined reg-cluster recovers the entire pathway with the correct member
// signs, while a pCluster baseline at any reasonable delta recovers none.

#include <cstdio>

#include "baselines/pcluster.h"
#include "core/coherence.h"
#include "core/miner.h"
#include "matrix/expression_matrix.h"
#include "util/prng.h"
#include "util/string_util.h"

using namespace regcluster;

int main() {
  const int kGenes = 60, kConds = 14;
  util::Prng prng(2026);
  matrix::ExpressionMatrix data(kGenes, kConds);
  for (int g = 0; g < kGenes; ++g) {
    for (int c = 0; c < kConds; ++c) data(g, c) = prng.Uniform(0, 10);
  }

  // The latent pathway activity over 6 of the 14 conditions.
  const std::vector<int> active_conds{11, 3, 7, 0, 9, 5};
  const std::vector<double> activity{0, 4, 9, 13, 18, 24};

  // Genes 0-5: induced targets (positive scaling).  Genes 6-9: repressed
  // targets (negative scaling).  Everything is d = s1 * activity + s2.
  std::vector<std::string> names(static_cast<size_t>(kGenes));
  for (int g = 0; g < kGenes; ++g) {
    names[static_cast<size_t>(g)] = util::StrFormat("gene%02d", g);
  }
  for (int g = 0; g < 10; ++g) {
    const bool repressed = g >= 6;
    const double s1 =
        (repressed ? -1.0 : 1.0) * prng.Uniform(0.6, 1.8);
    const double s2 = prng.Uniform(-4, 4) + (repressed ? 30.0 : 0.0);
    for (size_t i = 0; i < active_conds.size(); ++i) {
      data(g, active_conds[i]) = s1 * activity[i] + s2;
    }
    names[static_cast<size_t>(g)] =
        util::StrFormat("%s%02d", repressed ? "repressed" : "induced", g);
  }
  (void)data.SetGeneNames(names);

  std::printf("pathway: induced00..05 (+), repressed06..09 (-) over 6 of %d "
              "conditions\n\n",
              kConds);

  // --- reg-cluster ---------------------------------------------------------
  core::MinerOptions opts;
  opts.min_genes = 10;
  opts.min_conditions = 6;
  opts.gamma = 0.12;
  opts.epsilon = 0.05;
  opts.remove_dominated = true;
  core::RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("reg-cluster found %zu cluster(s)\n", clusters->size());
  for (const auto& c : *clusters) {
    std::printf("  chain:");
    for (int cond : c.chain) std::printf(" c%d", cond);
    std::printf("\n  p-members:");
    for (int g : c.p_genes) std::printf(" %s", data.gene_name(g).c_str());
    std::printf("\n  n-members:");
    for (int g : c.n_genes) std::printf(" %s", data.gene_name(g).c_str());
    std::printf("\n");

    // Show a fitted cross-sign relationship.
    if (!c.p_genes.empty() && !c.n_genes.empty()) {
      double s1 = 0, s2 = 0;
      if (core::FitPairShiftScale(data, c.p_genes[0], c.n_genes[0], c.chain,
                                  &s1, &s2)) {
        std::printf("  e.g. %s = %+.2f * %s %+.2f  (negative scaling)\n",
                    data.gene_name(c.n_genes[0]).c_str(), s1,
                    data.gene_name(c.p_genes[0]).c_str(), s2);
      }
    }
  }

  // --- pCluster baseline ---------------------------------------------------
  baselines::PClusterOptions po;
  po.delta = 1.0;
  po.min_genes = 10;
  po.min_conditions = 6;
  po.max_nodes = 200000;
  auto pfound = baselines::PClusterMiner(data, po).Mine();
  std::printf("\npCluster (delta=%.1f, same size thresholds) found %zu "
              "cluster(s) -- the pathway mixes scaling factors and signs, "
              "which pScore cannot express.\n",
              po.delta, pfound.ok() ? pfound->size() : 0);

  const bool recovered =
      clusters->size() >= 1 &&
      (*clusters)[0].num_genes() == 10;
  if (!recovered) {
    std::fprintf(stderr, "FAILED to recover the pathway as one cluster\n");
    return 1;
  }
  std::printf("\nOK: the full pathway (both signs) is one reg-cluster.\n");
  return 0;
}
