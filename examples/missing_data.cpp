// Handling missing values: the real-data on-ramp.
//
// Microarray matrices ship with NA cells; every miner in this library
// requires a complete matrix.  This example punches realistic holes into a
// synthetic dataset, repairs them with the two built-in imputation
// strategies (row mean vs KNN), and measures how much of the implanted
// cluster structure each strategy preserves end-to-end -- demonstrating why
// KNN imputation (Troyanskaya et al. 2001) is the default recommendation
// for expression data.

#include <cstdio>
#include <limits>

#include "core/bicluster.h"
#include "core/miner.h"
#include "eval/match.h"
#include "matrix/transforms.h"
#include "synth/generator.h"
#include "util/prng.h"

using namespace regcluster;

namespace {

double MineAndScore(const matrix::ExpressionMatrix& data,
                    const std::vector<core::Bicluster>& truth) {
  core::MinerOptions o;
  o.min_genes = 8;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.35;  // roomy: imputation error perturbs coherence
  o.remove_dominated = true;
  auto clusters = core::RegClusterMiner(data, o).Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<core::Bicluster> found;
  for (const auto& c : *clusters) found.push_back(core::ToBicluster(c));
  return eval::CellMatchScore(truth, found);
}

}  // namespace

int main() {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 400;
  cfg.num_conditions = 18;
  cfg.num_clusters = 5;
  cfg.avg_cluster_genes_fraction = 0.04;
  cfg.seed = 31;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::vector<core::Bicluster> truth;
  for (const auto& imp : ds->implants) truth.push_back(imp.Footprint());

  const double clean_recovery = MineAndScore(ds->data, truth);
  std::printf("recovery on the complete matrix:     %.3f\n", clean_recovery);

  std::printf("\n%10s | %12s %12s\n", "missing", "row-mean", "KNN (k=8)");
  for (double missing_rate : {0.02, 0.05, 0.10}) {
    matrix::ExpressionMatrix holey = ds->data;
    util::Prng prng(77);
    for (int g = 0; g < holey.num_genes(); ++g) {
      for (int c = 0; c < holey.num_conditions(); ++c) {
        if (prng.Bernoulli(missing_rate)) {
          holey(g, c) = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
    const matrix::ExpressionMatrix rowmean = matrix::ImputeRowMean(holey);
    auto knn = matrix::ImputeKnn(holey, 8);
    if (!knn.ok()) {
      std::fprintf(stderr, "%s\n", knn.status().ToString().c_str());
      return 1;
    }
    const double r_mean = MineAndScore(rowmean, truth);
    const double r_knn = MineAndScore(*knn, truth);
    std::printf("%9.0f%% | %12.3f %12.3f\n", 100 * missing_rate, r_mean,
                r_knn);
  }
  std::printf(
      "\nKNN exploits the co-regulation structure itself to reconstruct "
      "missing cells; its per-cell reconstruction error is several times "
      "lower than row means (see tests/matrix/impute_test.cc), which shows "
      "up here as consistently higher end-to-end recovery.\n");
  return 0;
}
