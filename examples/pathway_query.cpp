// Gene-centric analysis: "what co-regulation modules contain my gene?"
//
// The workflow a biologist actually runs after sequencing a candidate:
//   1. targeted mining -- reg-clusters constrained to contain the probe
//      gene (orders of magnitude less search than a full run),
//   2. a permutation test to separate statistically significant modules
//      from search artifacts,
//   3. the cluster index to list the probe's co-clustered partner genes
//      (its putative pathway).

#include <algorithm>
#include <cstdio>

#include "core/miner.h"
#include "eval/cluster_index.h"
#include "eval/significance.h"
#include "synth/generator.h"

using namespace regcluster;

int main() {
  // A 500-gene dataset with 6 hidden modules.
  synth::SyntheticConfig cfg;
  cfg.num_genes = 500;
  cfg.num_conditions = 20;
  cfg.num_clusters = 6;
  cfg.avg_cluster_genes_fraction = 0.03;
  cfg.gene_reuse_fraction = 0.3;  // genes may sit in several modules
  cfg.seed = 1234;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  // Probe: a gene the ground truth placed in at least one module.
  const int probe = ds->implants[2].p_genes[0];
  std::printf("probe gene: %s\n\n", ds->data.gene_name(probe).c_str());

  // 1. Targeted mining.
  core::MinerOptions opts;
  opts.min_genes = 8;
  opts.min_conditions = 5;
  opts.gamma = 0.1;
  opts.epsilon = 0.05;
  opts.remove_dominated = true;
  opts.required_genes = {probe};
  core::RegClusterMiner miner(ds->data, opts);
  auto clusters = miner.Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("targeted mining: %zu clusters containing the probe "
              "(%lld nodes searched)\n",
              clusters->size(),
              static_cast<long long>(miner.stats().nodes_expanded));

  // 2. Significance per cluster.
  eval::SignificanceOptions sig;
  sig.gamma_spec = {core::GammaPolicy::kRangeFraction, opts.gamma};
  sig.epsilon = opts.epsilon;
  int significant = 0;
  for (size_t i = 0; i < clusters->size(); ++i) {
    auto result = eval::PermutationSignificance(ds->data, (*clusters)[i], sig);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const bool ok = result->p_value < 1e-4;
    significant += ok;
    std::printf("  cluster %zu: %dx%d  null-rate=%.4f  p=%.2e %s\n", i,
                (*clusters)[i].num_genes(), (*clusters)[i].num_conditions(),
                result->null_full_rate, result->p_value,
                ok ? "SIGNIFICANT" : "(not significant)");
  }

  // 3. Pathway partners via the index.
  const eval::ClusterIndex index(*clusters, ds->data.num_genes(),
                                 ds->data.num_conditions());
  const auto partners = index.CoClusteredGenes(probe);
  std::printf("\nprobe co-clusters with %zu genes; membership degree %d\n",
              partners.size(), index.MembershipDegree(probe));

  // Cross-check against the ground truth module.
  int true_partners = 0;
  const auto truth = ds->implants[2].Footprint();
  for (int g : partners) {
    if (std::binary_search(truth.genes.begin(), truth.genes.end(), g)) {
      ++true_partners;
    }
  }
  std::printf("of the true module's %zu other members, %d were recovered as "
              "partners\n",
              truth.genes.size() - 1, true_partners);
  if (significant == 0 || true_partners == 0) {
    std::fprintf(stderr, "FAILED: expected significant modules containing "
                         "the probe\n");
    return 1;
  }
  return 0;
}
