// The Section 5.2 workflow end-to-end, the way a bioinformatician would run
// it on their own data:
//
//   1. obtain a yeast-scale expression matrix (here: the offline surrogate;
//      point --matrix at a TSV file to use real data),
//   2. impute missing values,
//   3. mine reg-clusters with MinG=20, MinC=6, gamma=0.05, epsilon=1.0,
//   4. write the cluster archive and a human-readable report,
//   5. score GO-term enrichment for each cluster.
//
// Usage:
//   ./yeast_workflow [--matrix=path.tsv] [--out=clusters.txt]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/miner.h"
#include "eval/annotation_gen.h"
#include "eval/go_enrichment.h"
#include "io/cluster_io.h"
#include "matrix/matrix_io.h"
#include "matrix/transforms.h"
#include "synth/yeast_surrogate.h"

namespace {

std::string FlagValue(int argc, char** argv, const char* name,
                      const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace regcluster;

  // --- 1. Load or synthesize the dataset. -------------------------------
  matrix::ExpressionMatrix data;
  std::vector<std::vector<int>> truth_modules;  // only for the surrogate
  const std::string matrix_path = FlagValue(argc, argv, "matrix", "");
  if (!matrix_path.empty()) {
    auto loaded = matrix::LoadMatrix(matrix_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", matrix_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = *std::move(loaded);
    std::printf("loaded %s: %d genes x %d conditions, %lld missing cells\n",
                matrix_path.c_str(), data.num_genes(), data.num_conditions(),
                static_cast<long long>(matrix::CountMissing(data)));
  } else {
    auto ds = synth::MakeYeastSurrogate();
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    data = std::move(ds->data);
    for (const auto& imp : ds->implants) {
      truth_modules.push_back(imp.Footprint().genes);
    }
    std::printf("no --matrix given; generated the yeast surrogate "
                "(%d x %d, %zu implanted modules)\n",
                data.num_genes(), data.num_conditions(),
                truth_modules.size());
  }

  // --- 2. Impute. --------------------------------------------------------
  if (data.HasMissingValues()) {
    data = matrix::ImputeRowMean(data);
    std::printf("imputed missing values with row means\n");
  }

  // --- 3. Mine. -----------------------------------------------------------
  core::MinerOptions opts;
  opts.min_genes = 20;
  opts.min_conditions = 6;
  opts.gamma = 0.05;
  opts.epsilon = 1.0;
  opts.remove_dominated = true;
  core::RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "mining: %s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu reg-clusters in %.2f s (RWave build %.2f s)\n",
              clusters->size(), miner.stats().mine_seconds,
              miner.stats().rwave_build_seconds);

  // --- 4. Archive + report. ----------------------------------------------
  const std::string out_path =
      FlagValue(argc, argv, "out", "yeast_clusters.txt");
  if (auto st = io::SaveClusters(*clusters, out_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("cluster archive written to %s\n", out_path.c_str());
  {
    std::ofstream report(out_path + ".report");
    (void)io::WriteReport(*clusters, &data, report);
    std::printf("human-readable report written to %s.report\n",
                out_path.c_str());
  }

  // --- 5. Enrichment. ------------------------------------------------------
  // With real data, load real annotations here instead; the synthetic
  // database mirrors the structure of SGD's (see eval/annotation_gen.h).
  const eval::GoAnnotationDb db =
      eval::GenerateAnnotations(data.num_genes(), truth_modules);
  int enriched = 0;
  for (const auto& c : *clusters) {
    auto results = eval::FindEnrichedTerms(db, c.AllGenes());
    if (results.ok() && !results->empty() &&
        (*results)[0].p_value < 1e-4) {
      ++enriched;
    }
  }
  std::printf("%d of %zu clusters carry a GO term enriched at p < 1e-4\n",
              enriched, clusters->size());
  return 0;
}
