// Tendency vs coherence: why ordering alone is not co-regulation.
//
// The tendency family (OPSM, OP-Cluster) groups genes that rank a condition
// set in the same order.  The reg-cluster paper's Section 3.3 example shows
// why that is too weak: genes with identical *order* but wildly
// disproportionate steps get clustered together, and a non-zero regulation
// threshold cannot be expressed at all.  This example builds a dataset
// where ordering and coherence disagree, runs OPSM, OP-Cluster and the
// reg-cluster miner, and compares what each model groups.

#include <algorithm>
#include <cstdio>

#include "baselines/opcluster.h"
#include "baselines/opsm.h"
#include "core/coherence.h"
#include "core/miner.h"
#include "util/prng.h"

using namespace regcluster;

int main() {
  // 40 genes x 12 conditions of noise.  Genes 0-7: a coherent
  // shifting-and-scaling module on conditions 0..5.  Genes 8-11: the SAME
  // ordering on those conditions but grotesquely different step geometry
  // (one huge jump), i.e. tendency-compatible, coherence-incompatible.
  util::Prng prng(99);
  matrix::ExpressionMatrix data(40, 12);
  for (int g = 0; g < 40; ++g) {
    for (int c = 0; c < 12; ++c) data(g, c) = prng.Uniform(0, 10);
  }
  const std::vector<double> base{0, 4, 8, 12, 16, 20};
  for (int g = 0; g < 8; ++g) {
    const double s1 = prng.Uniform(0.5, 2.0);
    const double s2 = prng.Uniform(-3, 3);
    for (int c = 0; c < 6; ++c) data(g, c) = s1 * base[static_cast<size_t>(c)] + s2;
  }
  for (int g = 8; g < 12; ++g) {
    // Same order, broken proportions: flat, flat, flat, then a cliff.
    const std::vector<double> cliff{0, 0.5, 1.0, 1.5, 2.0, 80.0};
    const double s2 = prng.Uniform(-3, 3);
    for (int c = 0; c < 6; ++c) data(g, c) = cliff[static_cast<size_t>(c)] + s2;
  }

  // --- tendency models group all 12 genes. -------------------------------
  baselines::OpsmOptions opsm_opts;
  opsm_opts.sequence_length = 6;
  opsm_opts.beam_width = 100;
  auto opsm = baselines::MineOpsm(data, opsm_opts);
  if (!opsm.ok() || opsm->empty()) {
    std::fprintf(stderr, "OPSM failed\n");
    return 1;
  }
  int opsm_module = 0, opsm_cliff = 0;
  for (int g : (*opsm)[0].genes) {
    opsm_module += g < 8;
    opsm_cliff += g >= 8 && g < 12;
  }
  std::printf("OPSM best model (%zu genes): %d coherent + %d cliff genes "
              "grouped together\n",
              (*opsm)[0].genes.size(), opsm_module, opsm_cliff);

  // --- reg-cluster separates them. ----------------------------------------
  core::MinerOptions o;
  o.min_genes = 4;
  o.min_conditions = 5;
  o.gamma = 0.1;
  o.epsilon = 0.1;
  o.remove_dominated = true;
  auto clusters = core::RegClusterMiner(data, o).Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  bool mixed = false;
  bool found_module = false;
  for (const auto& c : *clusters) {
    int module = 0, cliff = 0;
    for (int g : c.AllGenes()) {
      module += g < 8;
      cliff += g >= 8 && g < 12;
    }
    if (module > 0 && cliff > 0) mixed = true;
    if (module >= 6 && cliff == 0) found_module = true;
  }
  std::printf("reg-cluster: %zu clusters; coherent module recovered alone: "
              "%s; any module/cliff mixing: %s\n",
              clusters->size(), found_module ? "yes" : "NO",
              mixed ? "YES (bug!)" : "no");

  // The cliff genes pass the ordering test but fail coherence against the
  // module -- show the scores.
  const std::vector<int> chain{0, 1, 2, 3, 4, 5};
  const auto h_module = core::ChainCoherenceScores(data.row_data(0), chain);
  const auto h_cliff = core::ChainCoherenceScores(data.row_data(8), chain);
  std::printf("\ncoherence scores along c0..c5 (baseline c0,c1):\n  module "
              "gene:");
  for (double h : h_module) std::printf(" %6.2f", h);
  std::printf("\n  cliff gene: ");
  for (double h : h_cliff) std::printf(" %6.2f", h);
  std::printf("\nsame order, incompatible geometry -- only the coherence "
              "constraint (epsilon) can tell them apart.\n");

  if (opsm_cliff == 0 || mixed || !found_module) {
    std::fprintf(stderr, "FAILED: expected the tendency/coherence split\n");
    return 1;
  }
  return 0;
}
