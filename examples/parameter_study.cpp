// Parameter study: how gamma and epsilon shape the output.
//
// The two thresholds of the reg-cluster model play different roles:
//   * gamma (regulation)  -- filters out biologically meaningless "flat"
//     patterns whose expression changes are small relative to the gene's
//     range (the paper's Regulation Test motivation);
//   * epsilon (coherence) -- bounds how far members may deviate from a
//     perfect shifting-and-scaling relationship.
//
// This example mines one synthetic dataset under a grid of (gamma, epsilon)
// values and prints cluster counts plus recovery/relevance against the
// implanted ground truth, illustrating the precision/recall trade-off a
// user navigates when tuning the miner.

#include <cstdio>

#include "core/bicluster.h"
#include "core/miner.h"
#include "eval/match.h"
#include "synth/generator.h"

using namespace regcluster;

int main() {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 400;
  cfg.num_conditions = 20;
  cfg.num_clusters = 6;
  cfg.avg_cluster_genes_fraction = 0.03;
  cfg.noise_fraction = 0.05;  // mildly noisy implants
  cfg.seed = 77;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::vector<core::Bicluster> truth;
  for (const auto& imp : ds->implants) truth.push_back(imp.Footprint());

  std::printf("dataset: %d x %d with %zu noisy implants\n\n", cfg.num_genes,
              cfg.num_conditions, truth.size());
  std::printf("%8s %8s | %9s %10s %10s %12s\n", "gamma", "epsilon",
              "clusters", "recovery", "relevance", "runtime_ms");

  for (double gamma : {0.0, 0.05, 0.1, 0.2}) {
    for (double epsilon : {0.001, 0.05, 0.25, 1.0}) {
      core::MinerOptions o;
      o.min_genes = 8;
      o.min_conditions = 5;
      o.gamma = gamma;
      o.epsilon = epsilon;
      o.remove_dominated = true;
      o.max_nodes = 2000000;  // keep the gamma=0 corner bounded
      core::RegClusterMiner miner(ds->data, o);
      auto clusters = miner.Mine();
      if (!clusters.ok()) {
        std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
        return 1;
      }
      std::vector<core::Bicluster> found;
      for (const auto& c : *clusters) found.push_back(core::ToBicluster(c));
      const auto r = eval::ScoreAgainstTruth(found, truth);
      std::printf("%8.3f %8.3f | %9zu %10.3f %10.3f %12.1f\n", gamma, epsilon,
                  clusters->size(), r.cell_recovery, r.cell_relevance,
                  miner.stats().mine_seconds * 1e3);
    }
  }
  std::printf(
      "\nreading the grid: tiny epsilon misses noisy members (low recovery); "
      "huge epsilon admits spurious members (lower relevance); gamma well "
      "above the implants' step ratio destroys the chains entirely.\n");
  return 0;
}
